"""Cluster quickstart: two worker daemons, one ingress, admin over HTTP.

This example brings up the paper's actual deployment shape (Figure 1) as
real OS processes and drives it purely through the client SDK:

1. *Bring up the fleet* — a :class:`repro.cluster.supervisor.Supervisor`
   spawns two worker daemons (each hosting model containers behind the
   container RPC protocol, shared-memory rings negotiated automatically on
   this host) plus one ingress process (HTTP edge + Clipper whose replica
   sets attach to the workers).
2. *Deploy across workers* — the ordinary admin verb ``deploy`` with a
   *named* container factory; the ingress's placement hook spreads the
   replicas round-robin over the live workers in the shared registry.
3. *Serve, scale, canary, promote* — predictions and every admin verb run
   over plain HTTP against the ingress; placement stays transparent.
4. *Drain* — the supervisor SIGTERMs the ingress first, then the workers;
   every in-flight batch finishes before the processes exit.

Run with::

    PYTHONPATH=src python examples/cluster_quickstart.py
"""

from __future__ import annotations

import asyncio
import tempfile

from repro.client import AsyncAdminClient, AsyncClipperClient
from repro.cluster.supervisor import Supervisor

APP = "default-app"


async def drive(port: int) -> None:
    async with AsyncAdminClient("127.0.0.1", port) as admin:
        # Deploy v1 with two replicas.  "echo" names a factory every worker
        # resolves locally (a callable cannot cross a process boundary).
        await admin.deploy(APP, "digits", factory="echo", version=1, num_replicas=2)
        info = await admin.health(APP)
        print(f"serving: {info['serving']}  replicas: {info['replicas']}")

        async with AsyncClipperClient("127.0.0.1", port) as client:
            outputs = [
                (await client.predict(APP, [0.0, 1.0, 2.0])).output
                for _ in range(5)
            ]
        print(f"predictions from v1: {outputs}")

        # Scale out: the third replica lands on whichever worker is next in
        # the round-robin.
        await admin.scale(APP, "digits", 3)
        print("scaled digits to 3 replicas across the workers")

        # Stage v2, canary half the traffic to it, then promote.
        await admin.deploy(APP, "digits", factory="noop", version=2, activate=False)
        await admin.start_canary(APP, "digits", version=2, weight=0.5)
        print("canary: digits:2 at weight 0.5")
        await admin.promote(APP, "digits")
        info = await admin.health(APP)
        print(f"promoted: serving {info['serving']}")

        async with AsyncClipperClient("127.0.0.1", port) as client:
            outputs = [
                (await client.predict(APP, [0.0, 1.0, 2.0])).output
                for _ in range(5)
            ]
        print(f"predictions from v2: {outputs}")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-cluster-qs-") as cluster_dir:
        supervisor = Supervisor(cluster_dir=cluster_dir, num_workers=2, app_name=APP)
        try:
            port = supervisor.start()
            print(f"cluster up: 2 workers + ingress on 127.0.0.1:{port}")
            asyncio.run(drive(port))
        finally:
            supervisor.shutdown()
            print("cluster drained")


if __name__ == "__main__":
    main()
