"""Personalized speech recognition with per-user selection state (§5.3).

The paper's Figure 10 experiment: a speech service hosts one model per
dialect plus a dialect-oblivious model.  Each user's session maintains its
own selection-policy state, so after a handful of feedback interactions the
service routes a user's queries to the models that work best *for that
user* — without ever being told the user's dialect.

Run with::

    python examples/speech_personalization.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro import Clipper, ClipperConfig, Feedback, ModelDeployment, Query
from repro.containers import ClassifierContainer
from repro.datasets import load_timit_like
from repro.datasets.speech import utterances_to_fixed_features
from repro.evaluation.suites import dialect_model_suite


async def main() -> None:
    corpus = load_timit_like(n_speakers=48, utterances_per_speaker=10, random_state=7)
    models, global_name = dialect_model_suite(corpus, random_state=0)
    print(f"trained {len(models) - 1} dialect models plus '{global_name}'")

    clipper = Clipper(
        ClipperConfig(app_name="speech", latency_slo_ms=50.0, selection_policy="exp4")
    )
    for name, model in models.items():
        clipper.deploy_model(
            ModelDeployment(
                name=name,
                container_factory=lambda model=model: ClassifierContainer(model, framework="htk"),
            )
        )
    await clipper.start()

    per_round_errors: dict = {}
    speakers = corpus.test_speakers()
    for speaker in speakers:
        utterances = corpus.utterances_for_speaker(speaker)[:8]
        if not utterances:
            continue
        X, y = utterances_to_fixed_features(utterances)
        user_id = f"speaker-{speaker}"
        for step in range(X.shape[0]):
            prediction = await clipper.predict(
                Query(app_name="speech", input=X[step], user_id=user_id)
            )
            per_round_errors.setdefault(step, []).append(
                0.0 if prediction.output == y[step] else 1.0
            )
            await clipper.feedback(
                Feedback(app_name="speech", input=X[step], label=int(y[step]), user_id=user_id)
            )

    print("\nmean error by number of feedback interactions (Clipper selection policy):")
    for step in sorted(per_round_errors):
        errors = per_round_errors[step]
        print(f"  after {step} feedback updates: error {np.mean(errors):.3f} "
              f"({len(errors)} users)")

    example_user = f"speaker-{speakers[0]}"
    state = clipper.selection_manager.get_state(example_user)
    weights = clipper.selection_manager.policy.model_weights(state)
    top = sorted(weights.items(), key=lambda kv: -kv[1])[:3]
    print(f"\ntop models learned for {example_user}: "
          + ", ".join(f"{name} ({weight:.2f})" for name, weight in top))
    await clipper.stop()


if __name__ == "__main__":
    asyncio.run(main())
