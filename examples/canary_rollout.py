"""Weighted canary rollout with metrics-driven promotion.

Runs a real :class:`~repro.core.clipper.Clipper` behind the management
plane, then rolls a new model version out the way a production fleet would:
deploy v2 *staged*, start a canary at 10% of traffic, ramp it to 50%, and
let the :class:`~repro.routing.controller.CanaryController` promote it once
the per-arm metrics agree it is healthy.

Routing is deterministic: each user id hashes (seeded) onto one arm, so a
given user never flaps between versions mid-rollout, and the observed
traffic share tracks the configured weight.  While the canary is in flight
the routing layer attributes every query's latency and outcome to the arm
that served it — the per-arm p99 and error-rate tables printed after each
phase are exactly the evidence the controller promotes (or aborts) on.

Run with::

    PYTHONPATH=src python examples/canary_rollout.py
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.containers.noop import NoOpContainer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.types import Query
from repro.evaluation.reporting import format_table
from repro.management import ManagementFrontend

APP = "canary-demo"
MODEL = "clf"
NUM_USERS = 200
PHASE_SECONDS = 1.0


def make_deployment(version: int) -> ModelDeployment:
    return ModelDeployment(
        name=MODEL,
        container_factory=lambda: NoOpContainer(output=version),
        version=version,
        num_replicas=2,
    )


async def drive_phase(clipper: Clipper, rng: np.random.Generator, seconds: float):
    """Steady traffic from a rotating user population; returns (count, failures)."""
    count, failures = 0, 0
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        user = f"user-{rng.integers(NUM_USERS)}"
        x = rng.standard_normal(8)
        try:
            await clipper.predict(Query(app_name=APP, input=x, user_id=user))
            count += 1
        except Exception:
            failures += 1
        await asyncio.sleep(0.0005)
    return count, failures


def arm_table(clipper: Clipper, title: str) -> str:
    """Per-arm attribution from the routing layer's metric handles."""
    rows = []
    for key in sorted(set(clipper.routing.serving_keys())):
        arm = clipper.routing.arm_metrics(key)
        split = clipper.routing.split_for(MODEL)
        rows.append(
            {
                "arm": key,
                "weight": round(split.weight_of(key), 2) if split else "-",
                "requests": arm.requests.value,
                "errors": arm.errors.value,
                "error_rate": round(arm.error_rate(), 4),
                "p50_ms": round(arm.latency.p50(), 3),
                "p99_ms": round(arm.latency.p99(), 3),
            }
        )
    return format_table(rows, title=title)


async def main() -> None:
    clipper = Clipper(
        ClipperConfig(app_name=APP, selection_policy="single", latency_slo_ms=250.0)
    )
    clipper.deploy_model(make_deployment(version=1))
    mgmt = ManagementFrontend(
        health_kwargs=dict(probe_interval_s=0.05),
        canary_kwargs=dict(
            check_interval_s=0.05, min_requests=250, healthy_checks_to_promote=4
        ),
    )
    mgmt.register_application(clipper)
    await mgmt.start()
    rng = np.random.default_rng(0)

    print(f"v1 serving; baseline traffic from {NUM_USERS} users")
    await drive_phase(clipper, rng, PHASE_SECONDS)

    print("deploying v2 (staged) and starting a 10% canary")
    await mgmt.deploy_model(APP, make_deployment(version=2))
    split = await mgmt.start_canary(APP, MODEL, 2, weight=0.10)
    assigned = sum(split.arm_for(f"user-{u}") == "clf:2" for u in range(NUM_USERS))
    print(
        f"deterministic assignment: {assigned}/{NUM_USERS} users pinned to the "
        f"canary arm (configured weight 0.10)"
    )
    await drive_phase(clipper, rng, PHASE_SECONDS)
    print(arm_table(clipper, "Per-arm attribution at 10% canary weight"))

    print("ramping the canary to 50%")
    await mgmt.adjust_canary(APP, MODEL, weight=0.50)
    await drive_phase(clipper, rng, PHASE_SECONDS)
    print(arm_table(clipper, "Per-arm attribution at 50% canary weight"))

    print("waiting for the canary controller's verdict...")
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline and clipper.routing.canaries():
        _, failures = await drive_phase(clipper, rng, 0.1)
        if failures:
            print(f"  {failures} failed predictions")
    controller = mgmt.canary_controller(APP)
    for decision in controller.decisions:
        print(
            f"controller decision: {decision.action} '{decision.canary_key}' "
            f"— {decision.reason}"
        )

    info = mgmt.model_info(APP, MODEL)
    print(
        f"registry: active_version={info['active_version']} "
        f"previous_version={info['previous_version']} "
        + ", ".join(
            f"v{v}={r['state']}" for v, r in sorted(info["versions"].items())
        )
    )
    snapshot = clipper.metrics.snapshot()
    print(
        f"canary counters: checks={snapshot.counters.get('canary.checks', 0)} "
        f"auto_promotions={snapshot.counters.get('canary.auto_promotions', 0)} "
        f"auto_aborts={snapshot.counters.get('canary.auto_aborts', 0)}"
    )
    await mgmt.stop()


if __name__ == "__main__":
    asyncio.run(main())
