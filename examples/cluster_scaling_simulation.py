"""Cluster-scaling simulation (the Figure 6 experiment).

Runs the discrete-event simulation that stands in for the paper's four-node
GPU cluster and prints aggregate throughput, per-replica throughput and
latency as container replicas are added behind 10 Gbps and 1 Gbps networks —
showing near-linear scaling on the fast network and NIC saturation on the
slow one.

Run with::

    python examples/cluster_scaling_simulation.py
"""

from __future__ import annotations

from repro.evaluation.reporting import format_table
from repro.simulation.cluster import sweep_cluster_scaling


def main() -> None:
    results = sweep_cluster_scaling(
        replica_counts=(1, 2, 3, 4),
        link_speeds_gbps=(10.0, 1.0),
        duration_s=2.0,
        random_state=0,
    )
    rows = []
    for link_gbps, link_results in results.items():
        for result in link_results:
            rows.append(
                {
                    "link_gbps": link_gbps,
                    "replicas": result.num_replicas,
                    "aggregate_qps": round(result.aggregate_throughput_qps),
                    "mean_replica_qps": round(result.mean_replica_throughput_qps),
                    "mean_latency_ms": result.mean_latency_ms,
                    "p99_latency_ms": result.p99_latency_ms,
                    "nic_utilization": result.nic_utilization,
                }
            )
    print(format_table(rows, title="Scaling the model abstraction layer across a simulated GPU cluster"))

    fast = results[10.0]
    slow = results[1.0]
    print(f"\n10 Gbps speedup at 4 replicas: "
          f"{fast[3].aggregate_throughput_qps / fast[0].aggregate_throughput_qps:.2f}x "
          "(paper: 3.95x)")
    print(f"1 Gbps aggregate throughput plateaus at {round(slow[3].aggregate_throughput_qps)} qps "
          f"with NIC utilization {slow[3].nic_utilization:.2f} — the network is the bottleneck.")


if __name__ == "__main__":
    main()
