"""Object-recognition ensemble with confidence-gated predictions.

Reproduces the workflow behind the paper's Figure 7 at application level: a
CIFAR-like object-recognition service deploys five models of varying
quality, combines them with the Exp4 ensemble policy, and uses the
agreement-based confidence score to decide when to fall back to a sensible
default (the "robust predictions" pattern of §5.2.1).

Run with::

    python examples/image_classification_ensemble.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro import Clipper, ClipperConfig, Feedback, ModelDeployment, Query
from repro.containers import ClassifierContainer
from repro.datasets import load_cifar_like
from repro.evaluation.suites import heterogeneous_ensemble

#: Applications with a costly failure mode can decline to predict below this
#: agreement level and take a default action instead.
CONFIDENCE_THRESHOLD = 0.8
DEFAULT_ACTION = -1  # "show a generic result" sentinel


async def main() -> None:
    dataset = load_cifar_like(n_samples=2000, n_features=256, random_state=1)
    models = heterogeneous_ensemble(dataset, n_models=5, random_state=0)
    print("trained ensemble members:")
    for name, model in models.items():
        print(f"  {name}: test accuracy {model.score(dataset.X_test, dataset.y_test):.3f}")

    clipper = Clipper(
        ClipperConfig(
            app_name="object-recognition",
            latency_slo_ms=50.0,
            selection_policy="exp4",
            confidence_threshold=CONFIDENCE_THRESHOLD,
            default_output=DEFAULT_ACTION,
        )
    )
    for name, model in models.items():
        clipper.deploy_model(
            ModelDeployment(
                name=name,
                container_factory=lambda model=model: ClassifierContainer(model),
            )
        )
    await clipper.start()

    confident, declined, confident_correct = 0, 0, 0
    n_queries = 300
    for i in range(n_queries):
        idx = i % dataset.X_test.shape[0]
        x, truth = dataset.X_test[idx], int(dataset.y_test[idx])
        prediction = await clipper.predict(Query(app_name="object-recognition", input=x))
        if prediction.default_used:
            declined += 1
        else:
            confident += 1
            confident_correct += int(prediction.output == truth)
        await clipper.feedback(Feedback(app_name="object-recognition", input=x, label=truth))

    print(f"\nserved {n_queries} queries with confidence threshold {CONFIDENCE_THRESHOLD}")
    print(f"confident predictions: {confident} ({confident / n_queries:.1%}), "
          f"accuracy among them {confident_correct / max(confident, 1):.3f}")
    print(f"declined (default action used): {declined} ({declined / n_queries:.1%})")
    await clipper.stop()


if __name__ == "__main__":
    asyncio.run(main())
