"""Health-driven replica recovery on a live serving instance.

Runs a real :class:`~repro.core.clipper.Clipper` with three replicas of one
model behind the management plane, then kills one replica's container
mid-traffic — the in-process analogue of ``docker kill`` on a model
container.  The :class:`~repro.management.health.HealthMonitor` detects the
death (failed heartbeat probes plus the dispatcher's batch failures),
quarantines the replica out of dispatch, restarts it with a fresh container
from the deployment's factory, and re-attaches it to the live batching
queue — while the surviving replicas keep serving every query.

The demo prints per-phase latency (before the kill / while recovering /
after recovery), the health ledger of every replica, and the failure count,
showing that the kill is absorbed: zero failed predictions and a steady p99.

Run with::

    PYTHONPATH=src python examples/model_failure_recovery.py
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.containers.chaos import KillableContainer, TrackingFactory
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.metrics import summarize_latencies
from repro.core.types import Query
from repro.evaluation.reporting import format_table
from repro.management import ManagementFrontend

APP = "recovery-demo"
MODEL = "clf"
NUM_REPLICAS = 3
PHASE_SECONDS = 1.5
QUERY_DIM = 32


async def drive_phase(clipper: Clipper, rng: np.random.Generator, seconds: float):
    """Issue steady traffic for one phase; returns (latencies_ms, failures)."""
    latencies, failures = [], 0
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        x = rng.standard_normal(QUERY_DIM)
        start = time.perf_counter()
        try:
            await clipper.predict(Query(app_name=APP, input=x))
            latencies.append((time.perf_counter() - start) * 1000.0)
        except Exception:
            failures += 1
        await asyncio.sleep(0.001)
    return latencies, failures


async def main() -> None:
    factory = TrackingFactory(lambda: KillableContainer(output=1))
    clipper = Clipper(
        ClipperConfig(app_name=APP, selection_policy="single", latency_slo_ms=250.0)
    )
    clipper.deploy_model(
        ModelDeployment(name=MODEL, container_factory=factory, num_replicas=NUM_REPLICAS)
    )
    mgmt = ManagementFrontend(
        health_kwargs=dict(
            probe_interval_s=0.02, failure_threshold=2, restart_backoff_s=0.02
        )
    )
    mgmt.register_application(clipper)
    await mgmt.start()
    rng = np.random.default_rng(0)

    print(f"{NUM_REPLICAS} replicas serving; phase 1: healthy baseline")
    baseline, baseline_failures = await drive_phase(clipper, rng, PHASE_SECONDS)

    victim = factory.instances[0]
    victim.kill()
    print("killed one replica's container; phase 2: traffic during recovery")
    during, during_failures = await drive_phase(clipper, rng, PHASE_SECONDS)

    # Wait (briefly) until the monitor reports every replica healthy again.
    monitor = mgmt.health_monitor(APP)
    wait_deadline = time.monotonic() + 5.0
    while time.monotonic() < wait_deadline:
        statuses = monitor.status().values()
        if statuses and all(s.state == "healthy" for s in statuses):
            break
        await asyncio.sleep(0.02)

    print("phase 3: after recovery")
    after, after_failures = await drive_phase(clipper, rng, PHASE_SECONDS)

    rows = []
    for phase, latencies, failures in (
        ("healthy baseline", baseline, baseline_failures),
        ("during kill+recovery", during, during_failures),
        ("after recovery", after, after_failures),
    ):
        stats = summarize_latencies(latencies)
        rows.append(
            {
                "phase": phase,
                "queries": stats["count"],
                "p50_ms": round(stats["p50"], 3),
                "p99_ms": round(stats["p99"], 3),
                "failed": failures,
            }
        )
    print(format_table(rows, title="Prediction latency across the replica kill"))

    health_rows = [
        {
            "replica": name,
            "state": status.state,
            "probes": status.probes,
            "quarantines": status.quarantines,
            "restarts": status.restarts,
        }
        for name, status in sorted(monitor.status().items())
    ]
    print(format_table(health_rows, title="Health ledger (from the HealthMonitor)"))

    snapshot = clipper.metrics.snapshot()
    print(
        "containers built by the factory: "
        f"{len(factory.instances)} (= {NUM_REPLICAS} initial + restarts)\n"
        f"health counters: quarantines={snapshot.counters['health.quarantines']} "
        f"restarts={snapshot.counters['health.restarts']} "
        f"recoveries={snapshot.counters['health.recoveries']}"
    )
    total_failures = baseline_failures + during_failures + after_failures
    print(f"failed predictions across all phases: {total_failures}")
    await mgmt.stop()


if __name__ == "__main__":
    asyncio.run(main())
