"""Model-failure recovery with bandit selection policies (Figure 8).

Replays a 12K-query feedback stream against a five-model ensemble, degrades
the most accurate model a quarter of the way in, lets it recover halfway
through, and prints the cumulative error of every base model next to the
Exp3 (single-model) and Exp4 (ensemble) selection policies — showing how the
online policies route around the failure and recover when the model does.

Run with::

    python examples/model_failure_recovery.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import load_cifar_like
from repro.evaluation.online import model_failure_experiment
from repro.evaluation.reporting import format_table
from repro.evaluation.suites import ensemble_prediction_matrix, heterogeneous_ensemble

NUM_QUERIES = 12000
DEGRADE_START = 3000
DEGRADE_END = 6000


def main() -> None:
    dataset = load_cifar_like(n_samples=2000, n_features=256, random_state=1)
    models = heterogeneous_ensemble(dataset, n_models=5, random_state=0)
    predictions = ensemble_prediction_matrix(models, dataset.X_test)

    result = model_failure_experiment(
        predictions,
        dataset.y_test,
        num_queries=NUM_QUERIES,
        degrade_start=DEGRADE_START,
        degrade_end=DEGRADE_END,
        random_state=0,
    )

    checkpoints = [DEGRADE_START - 1, DEGRADE_END - 1, NUM_QUERIES - 1]
    rows = []
    for name, curve in sorted(result.cumulative_errors.items()):
        rows.append(
            {
                "series": name,
                "error@pre-failure": float(curve[checkpoints[0]]),
                "error@failure-end": float(curve[checkpoints[1]]),
                "error@final": float(curve[checkpoints[2]]),
            }
        )
    print(
        format_table(
            rows,
            title=(
                f"Cumulative error over {NUM_QUERIES} queries "
                f"(best model degraded during [{DEGRADE_START}, {DEGRADE_END}))"
            ),
        )
    )

    finals = result.final_errors()
    static_best = min(v for k, v in finals.items() if k.startswith("model-"))
    print(f"\nExp3 final error:  {finals['Exp3']:.3f}")
    print(f"Exp4 final error:  {finals['Exp4']:.3f}")
    print(f"best static model: {static_best:.3f} "
          "(and the statically-chosen pre-failure best ends far worse: "
          f"{finals[max(finals, key=lambda k: finals[k] if k.startswith('model-') else -1)]:.3f})")


if __name__ == "__main__":
    main()
