"""Adaptive batching demo: AIMD vs quantile regression vs no batching (§4.3).

Serves the same linear-SVM container under the three batching strategies the
paper compares in Figure 4 and prints the throughput / P99-latency trade-off
each achieves under a 20 ms SLO, plus the batch sizes the adaptive
controllers converged to.

Run with::

    python examples/adaptive_batching_demo.py
"""

from __future__ import annotations

from repro.containers import ClassifierContainer
from repro.core.config import BatchingConfig
from repro.datasets import load_mnist_like
from repro.evaluation.reporting import format_table
from repro.evaluation.serving import run_clipper_serving
from repro.mlkit import LinearSVM

SLO_MS = 20.0


def main() -> None:
    dataset = load_mnist_like(n_samples=1500, n_features=196, random_state=0)
    svm = LinearSVM(epochs=4, random_state=0).fit(dataset.X_train, dataset.y_train)
    inputs = [dataset.X_test[i] for i in range(64)]

    strategies = {
        "adaptive (AIMD)": BatchingConfig(policy="aimd", additive_increase=4),
        "quantile regression": BatchingConfig(policy="quantile", additive_increase=4),
        "no batching": BatchingConfig(policy="none"),
    }
    rows = []
    for label, batching in strategies.items():
        measurement = run_clipper_serving(
            container_factory=lambda: ClassifierContainer(svm, framework="sklearn"),
            inputs=inputs,
            label=label,
            num_queries=600,
            latency_slo_ms=SLO_MS,
            batching=batching,
            concurrency=64,
        )
        rows.append(measurement.as_row())

    print(format_table(rows, title=f"Batching strategies under a {SLO_MS:.0f} ms SLO"))
    baseline = next(row for row in rows if row["label"] == "no batching")
    best = max(rows, key=lambda row: row["throughput_qps"])
    speedup = best["throughput_qps"] / baseline["throughput_qps"]
    print(f"\nbest adaptive strategy ({best['label']}) delivers {speedup:.1f}x the "
          "throughput of the no-batching baseline")


if __name__ == "__main__":
    main()
