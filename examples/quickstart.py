"""Quickstart: deploy two models behind Clipper and serve predictions.

This example walks through the complete life-cycle from the paper's Figure 2:

1. *Train* two models (a linear SVM and a logistic regression) with the
   bundled ``repro.mlkit`` framework on an MNIST-like dataset.
2. *Deploy* each model in its own container behind the model abstraction
   layer (prediction cache + adaptive batching + RPC).
3. *Serve* queries through the Exp4 ensemble selection policy with a 20 ms
   latency SLO.
4. *Send feedback* so the selection layer learns which model to trust.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro import Clipper, ClipperConfig, Feedback, ModelDeployment, Query
from repro.containers import ClassifierContainer
from repro.core.config import BatchingConfig
from repro.datasets import load_mnist_like
from repro.mlkit import LinearSVM, LogisticRegression


async def main() -> None:
    # 1. Train two models on the MNIST-like dataset.
    dataset = load_mnist_like(n_samples=2000, n_features=196, random_state=0)
    svm = LinearSVM(epochs=5, random_state=0).fit(dataset.X_train, dataset.y_train)
    logreg = LogisticRegression(epochs=5, random_state=1).fit(dataset.X_train, dataset.y_train)
    print(f"offline accuracy: svm={svm.score(dataset.X_test, dataset.y_test):.3f} "
          f"logreg={logreg.score(dataset.X_test, dataset.y_test):.3f}")

    # 2. Deploy both models behind Clipper with a 20 ms SLO.
    clipper = Clipper(
        ClipperConfig(app_name="digits", latency_slo_ms=20.0, selection_policy="exp4")
    )
    clipper.deploy_model(
        ModelDeployment(
            name="linear-svm",
            container_factory=lambda: ClassifierContainer(svm, framework="sklearn"),
            batching=BatchingConfig(policy="aimd"),
        )
    )
    clipper.deploy_model(
        ModelDeployment(
            name="logreg",
            container_factory=lambda: ClassifierContainer(logreg, framework="sklearn"),
        )
    )
    await clipper.start()

    # 3. Serve queries and 4. send feedback.
    correct = 0
    n_queries = 200
    for i in range(n_queries):
        x = dataset.X_test[i % dataset.X_test.shape[0]]
        truth = int(dataset.y_test[i % dataset.y_test.shape[0]])
        prediction = await clipper.predict(Query(app_name="digits", input=x))
        correct += int(prediction.output == truth)
        await clipper.feedback(Feedback(app_name="digits", input=x, label=truth))

    snapshot = clipper.metrics.snapshot()
    latency = snapshot.histograms["predict.latency_ms"]
    print(f"served {n_queries} queries, online accuracy {correct / n_queries:.3f}")
    print(f"latency mean={latency['mean']:.2f} ms  p99={latency['p99']:.2f} ms")
    print(f"prediction-cache hit rate: {clipper.cache.stats.hit_rate:.2f}")
    weights = clipper.selection_manager.policy.model_weights(
        clipper.selection_manager.get_state(None)
    )
    print("learned ensemble weights:", {k: round(v, 3) for k, v in weights.items()})

    await clipper.stop()


if __name__ == "__main__":
    asyncio.run(main())
