"""Quickstart: deploy two models behind Clipper and serve them over REST.

This example walks through the complete life-cycle from the paper's Figure 2
— with the real HTTP boundary in the middle.  The *server side* trains and
deploys models and binds the REST API; the *client side* is an ordinary
application that imports **only the client SDK** (``repro.client``) and
talks to Clipper exactly the way the paper's applications do: two verbs,
``predict`` and ``update``, over HTTP.

1. *Train* two models (a linear SVM and a logistic regression) with the
   bundled ``repro.mlkit`` framework on an MNIST-like dataset.
2. *Deploy* each model in its own container behind the model abstraction
   layer and bind the query + admin API to a loopback HTTP server.
3. *Serve* queries through the Exp4 ensemble selection policy with a 20 ms
   latency SLO — every query crossing request parsing, schema validation
   (the app declares 196-feature ``doubles`` input) and the JSON wire.
4. *Send feedback* over the same wire so the selection layer learns which
   model to trust, then read the server's metrics through the admin API.

Run with::

    PYTHONPATH=src python examples/quickstart.py
"""

from __future__ import annotations

import asyncio

# -- server-side imports: the serving engine ----------------------------------
from repro import Clipper, ClipperConfig, ManagementFrontend, ModelDeployment, QueryFrontend
from repro.api.http import create_server
from repro.containers import ClassifierContainer
from repro.core.config import BatchingConfig
from repro.datasets import load_mnist_like
from repro.mlkit import LinearSVM, LogisticRegression


def build_server():
    """Train, deploy, and wrap everything in an HTTP server (not yet started)."""
    dataset = load_mnist_like(n_samples=2000, n_features=196, random_state=0)
    svm = LinearSVM(epochs=5, random_state=0).fit(dataset.X_train, dataset.y_train)
    logreg = LogisticRegression(epochs=5, random_state=1).fit(
        dataset.X_train, dataset.y_train
    )
    print(
        f"offline accuracy: svm={svm.score(dataset.X_test, dataset.y_test):.3f} "
        f"logreg={logreg.score(dataset.X_test, dataset.y_test):.3f}"
    )

    clipper = Clipper(
        ClipperConfig(
            app_name="digits",
            latency_slo_ms=20.0,
            selection_policy="exp4",
            input_type="doubles",          # validated at the REST edge
            input_shape=(196,),
            output_type="ints",
            default_output=0,              # rendered on SLO misses
        )
    )
    clipper.deploy_model(
        ModelDeployment(
            name="linear-svm",
            container_factory=lambda: ClassifierContainer(svm, framework="sklearn"),
            batching=BatchingConfig(policy="aimd"),
        )
    )
    clipper.deploy_model(
        ModelDeployment(
            name="logreg",
            container_factory=lambda: ClassifierContainer(logreg, framework="sklearn"),
        )
    )

    query = QueryFrontend()
    query.register_application(clipper)
    # The server starts/stops the management frontend too, so health
    # monitoring and canary control run for as long as the API serves.
    admin = ManagementFrontend()
    admin.register_application(clipper)
    server = create_server(query=query, admin=admin)

    # Hand the client plain Python data — it has no numpy/dataset imports.
    samples = [
        (dataset.X_test[i].tolist(), int(dataset.y_test[i]))
        for i in range(dataset.X_test.shape[0])
    ]
    return server, samples


async def run_client(port: int, samples, n_queries: int = 200) -> None:
    """The application: drives Clipper purely through the client SDK.

    Note the imports — ``repro.client`` only.  This function could run
    unchanged in a separate process or on another machine.
    """
    from repro.client import AsyncAdminClient, AsyncClipperClient

    async with AsyncClipperClient("127.0.0.1", port) as client:
        apps = await client.applications()
        print(f"server hosts: {[app['app_name'] for app in apps]}")

        correct = 0
        for i in range(n_queries):
            x, truth = samples[i % len(samples)]
            prediction = await client.predict("digits", x)
            correct += int(prediction.output == truth)
            await client.update("digits", x, label=truth)
        print(f"served {n_queries} queries over HTTP, "
              f"online accuracy {correct / n_queries:.3f}")

    async with AsyncAdminClient("127.0.0.1", port) as admin:
        metrics = await admin.metrics("digits")
        latency = metrics["histograms"]["predict.latency_ms"]
        print(f"server-side latency mean={latency['mean']:.2f} ms  "
              f"p99={latency['p99']:.2f} ms")
        health = await admin.health("digits")
        print(f"serving models: {health['serving']}  started={health['started']}")


async def main() -> None:
    server, samples = build_server()
    await server.start()
    print(f"REST API listening on {server.address}")
    try:
        await run_client(server.port, samples)
    finally:
        await server.stop()
    assert not server.is_serving
    print("clean shutdown: listener closed, applications stopped")


if __name__ == "__main__":
    asyncio.run(main())
