"""Figure 8 — Exp3 and Exp4 behaviour under model failure.

Replays a 20K-query stream with immediate feedback against the five-model
CIFAR-like ensemble; the best-performing model is severely degraded after 5K
queries and recovers after 10K.  Shape checks mirror the paper: both
adaptive policies converge near the best model before the failure, their
cumulative error stays well below the degraded model's, and by the end of
the run they achieve lower error than any static single-model choice made
before the failure.
"""

import numpy as np

from conftest import record_result
from repro.baselines.selection import ABTestingSelection
from repro.evaluation.online import model_failure_experiment
from repro.evaluation.reporting import format_table

NUM_QUERIES = 20000
DEGRADE_START = 5000
DEGRADE_END = 10000


def test_fig8_model_failure_recovery(benchmark, cifar_ensemble):
    _, predictions, y_true = cifar_ensemble

    def run():
        return model_failure_experiment(
            predictions,
            y_true,
            num_queries=NUM_QUERIES,
            degrade_start=DEGRADE_START,
            degrade_end=DEGRADE_END,
            random_state=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    checkpoints = {"5k": 4999, "10k": 9999, "20k": NUM_QUERIES - 1}
    rows = []
    for name in sorted(result.cumulative_errors):
        curve = result.cumulative_errors[name]
        rows.append(
            {
                "series": name,
                **{f"cum_error@{label}": float(curve[idx]) for label, idx in checkpoints.items()},
            }
        )
    record_result(
        "fig8_model_failure",
        format_table(rows, title="Figure 8: cumulative error under model failure"),
    )

    finals = result.final_errors()
    degraded_model = min(
        (name for name in finals if name.startswith("model-")),
        key=lambda name: result.cumulative_errors[name][DEGRADE_START - 1],
    )
    # The adaptive policies end far below the degraded model's cumulative error.
    assert finals["Exp3"] < finals[degraded_model]
    assert finals["Exp4"] < finals[degraded_model]
    # And close to (or better than) the best static alternative.
    best_static = min(v for k, v in finals.items() if k.startswith("model-"))
    assert finals["Exp4"] <= best_static + 0.05

    # Before the failure both policies converge toward the best model.
    pre_best = min(
        result.cumulative_errors[name][DEGRADE_START - 1]
        for name in finals
        if name.startswith("model-")
    )
    assert result.cumulative_errors["Exp4"][DEGRADE_START - 1] <= pre_best + 0.1


def test_fig8_ab_testing_baseline_cannot_recover(benchmark, cifar_ensemble):
    """Extension: classical A/B testing picks the pre-failure best and never adapts."""
    _, predictions, y_true = cifar_ensemble
    names = sorted(predictions)
    rng = np.random.default_rng(0)
    n_eval = y_true.shape[0]

    def run():
        ab = ABTestingSelection(names, min_samples_per_arm=200, random_state=0)
        errors = 0
        for t in range(6000):
            idx = int(rng.integers(0, n_eval))
            arm = ab.select()
            prediction = predictions[arm][idx]
            # After the experiment commits, degrade the chosen model severely.
            if ab.experiment_complete and t > 2000:
                prediction = (prediction + 1) % 10
            loss = 0.0 if prediction == y_true[idx] else 1.0
            errors += loss
            ab.observe(arm, loss)
        return errors / 6000

    ab_error = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "fig8_ab_testing_baseline",
        f"A/B testing baseline cumulative error with post-commit degradation: {ab_error:.3f}",
    )
    # The static A/B choice cannot react to the degradation, so its error is high.
    assert ab_error > 0.5
