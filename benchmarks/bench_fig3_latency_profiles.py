"""Figure 3 — model container latency profiles.

Measures batch-evaluation latency as a function of batch size for the six
model containers of the paper (no-op, linear SVM in two framework flavours,
random forest, kernel SVM, logistic regression), reports the P99 latency per
batch size, and derives the maximum batch size each container can execute
within the 20 ms SLO.  The headline paper result — the kernel SVM's maximum
batch size is orders of magnitude smaller than the linear SVM's — is
asserted as a shape check.
"""

import pytest

from conftest import SLO_MS, record_result
from repro.evaluation.profiles import max_batch_under_slo, measure_latency_profile
from repro.evaluation.reporting import format_table

#: Batch sizes swept for the cheap containers; the expensive kernel SVM uses
#: the smaller sweep, mirroring the paper's per-container x-axis ranges.
CHEAP_BATCH_SIZES = [1, 2, 4, 8, 16, 32, 64, 128, 256]
EXPENSIVE_BATCH_SIZES = [1, 2, 4, 8, 16, 32]


@pytest.fixture(scope="module")
def profiles(figure3_suite, mnist_serving_dataset):
    inputs = [mnist_serving_dataset.X_test[i] for i in range(64)]
    measured = {}
    for spec in figure3_suite:
        batch_sizes = (
            EXPENSIVE_BATCH_SIZES if "kernel" in spec.name else CHEAP_BATCH_SIZES
        )
        measured[spec.name] = measure_latency_profile(
            spec.factory(), inputs, batch_sizes, repeats=3, name=spec.name
        )
    return measured


def test_fig3_latency_profiles(benchmark, profiles):
    rows = []
    for name, profile in profiles.items():
        max_batch = max_batch_under_slo(profile, slo_ms=SLO_MS)
        rows.append(
            {
                "container": name,
                "p99_at_batch_1_us": profile.p99(1) * 1000.0,
                "p99_at_max_measured_us": profile.p99(profile.batch_sizes[-1]) * 1000.0,
                "max_batch_under_20ms_slo": max_batch,
            }
        )
    record_result(
        "fig3_latency_profiles",
        format_table(rows, title="Figure 3: container latency profiles (20 ms SLO)"),
    )

    by_name = {row["container"]: row for row in rows}
    linear_max = by_name["linear-svm-sklearn"]["max_batch_under_20ms_slo"]
    kernel_max = by_name["kernel-svm-sklearn"]["max_batch_under_20ms_slo"]
    noop_max = by_name["no-op"]["max_batch_under_20ms_slo"]
    # Paper: the linear SVM's SLO-feasible batch is ~241x the kernel SVM's.
    assert linear_max / max(kernel_max, 1) > 5
    assert noop_max >= linear_max

    # Benchmark target: summarising the measured profile (cheap, stable).
    benchmark(lambda: profiles["linear-svm-sklearn"].p99(1))


def test_fig3_latency_grows_with_batch_size(profiles):
    for name, profile in profiles.items():
        if name == "no-op":
            continue
        assert profile.mean(profile.batch_sizes[-1]) > profile.mean(1)
