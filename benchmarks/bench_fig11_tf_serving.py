"""Figure 11 — comparison with a TensorFlow-Serving-like system.

Serves three MLP stand-ins of increasing inference cost (the paper's MNIST /
CIFAR / ImageNet TensorFlow models) through three systems:

* the TF-Serving-like baseline (in-process, static hand-tuned batch sizes),
* Clipper with a "C++" model container (containerized RPC path whose
  serialization is native and therefore negligible, minimal per-batch
  overhead), and
* Clipper with a "Python" model container (the same path but paying Python
  serialization plus the Python API's per-batch and per-item overhead).

Shape checks mirror the paper: Clipper with the C++ container achieves
throughput comparable to TF-Serving (within ~20%), while the Python
container pays a modest additional penalty (the paper measures 15-18%).
"""

import pytest

from conftest import record_result
from repro.containers.adapters import ClassifierContainer
from repro.containers.overhead import LanguageOverheadContainer
from repro.core.config import BatchingConfig
from repro.datasets import load_cifar_like, load_imagenet_like, load_mnist_like
from repro.evaluation.reporting import format_table
from repro.evaluation.serving import run_clipper_serving, run_tfserving_baseline
from repro.mlkit.zoo import FIGURE11_MODELS, build_figure11_model

NUM_QUERIES = 400
CONCURRENCY = 64

DATASET_LOADERS = {
    "mnist": lambda: load_mnist_like(n_samples=1200, n_features=196, random_state=0),
    "cifar": lambda: load_cifar_like(n_samples=1200, n_features=256, random_state=1),
    "imagenet": lambda: load_imagenet_like(
        n_samples=1200, n_classes=20, n_features=512, random_state=2
    ),
}


@pytest.fixture(scope="module")
def fig11_rows():
    rows = []
    for workload, loader in DATASET_LOADERS.items():
        dataset = loader()
        model = build_figure11_model(workload, random_state=0)
        model.fit(dataset.X_train, dataset.y_train)
        inputs = [dataset.X_test[i] for i in range(96)]
        static_batch = int(FIGURE11_MODELS[workload]["static_batch_size"])

        tf_serving = run_tfserving_baseline(
            ClassifierContainer(model, framework="tensorflow"),
            inputs,
            label=f"{workload}/tf-serving",
            num_queries=NUM_QUERIES,
            batch_size=static_batch,
            concurrency=CONCURRENCY,
        )
        clipper_cpp = run_clipper_serving(
            container_factory=lambda model=model: LanguageOverheadContainer(
                ClassifierContainer(model, framework="tensorflow"),
                per_batch_overhead_ms=0.02,
                per_item_overhead_us=0.2,
                label="tf-c++",
            ),
            inputs=inputs,
            label=f"{workload}/clipper-tf-c++",
            num_queries=NUM_QUERIES,
            latency_slo_ms=100.0,
            batching=BatchingConfig(
                policy="aimd", additive_increase=16, initial_batch_size=32
            ),
            concurrency=CONCURRENCY,
            serialize_rpc=False,
        )
        clipper_python = run_clipper_serving(
            container_factory=lambda model=model: LanguageOverheadContainer(
                ClassifierContainer(model, framework="tensorflow"),
                per_batch_overhead_ms=0.3,
                per_item_overhead_us=8.0,
                label="tf-python",
            ),
            inputs=inputs,
            label=f"{workload}/clipper-tf-python",
            num_queries=NUM_QUERIES,
            latency_slo_ms=100.0,
            batching=BatchingConfig(
                policy="aimd", additive_increase=16, initial_batch_size=32
            ),
            concurrency=CONCURRENCY,
            serialize_rpc=True,
        )
        for measurement, system in (
            (tf_serving, "tf-serving"),
            (clipper_cpp, "clipper-tf-c++"),
            (clipper_python, "clipper-tf-python"),
        ):
            rows.append(
                {
                    "workload": workload,
                    "system": system,
                    "throughput_qps": measurement.throughput_qps,
                    "mean_latency_ms": measurement.mean_latency_ms,
                    "p99_latency_ms": measurement.p99_latency_ms,
                }
            )
    return rows


def test_fig11_tf_serving_comparison(benchmark, fig11_rows):
    record_result(
        "fig11_tf_serving",
        format_table(fig11_rows, title="Figure 11: Clipper vs TF-Serving-like baseline"),
    )

    def lookup(workload, system):
        for row in fig11_rows:
            if row["workload"] == workload and row["system"] == system:
                return row
        raise KeyError((workload, system))

    for workload in DATASET_LOADERS:
        tf = lookup(workload, "tf-serving")["throughput_qps"]
        cpp = lookup(workload, "clipper-tf-c++")["throughput_qps"]
        python = lookup(workload, "clipper-tf-python")["throughput_qps"]
        # Clipper's containerized path is comparable to the tightly-coupled
        # baseline (paper: near-identical; allow a generous 2x band for noise
        # on a shared CPU).
        assert cpp > 0.5 * tf
        # The Python container's overhead never buys it a large advantage over
        # the C++ container (the paper finds it 15-18% *slower*; a wide band
        # absorbs scheduling noise on a shared CPU).
        assert python <= cpp * 1.35

    # The cheapest model must not be slower than the most expensive one by
    # more than measurement noise (the paper's throughput falls monotonically
    # with model cost).
    assert (
        lookup("mnist", "tf-serving")["throughput_qps"]
        >= 0.7 * lookup("imagenet", "tf-serving")["throughput_qps"]
    )

    benchmark(lambda: len(fig11_rows))
