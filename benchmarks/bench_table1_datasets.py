"""Table 1 — the benchmark dataset inventory.

Regenerates the dataset table (name, type, size, input features, label
count) from the registry and verifies the synthetic stand-ins are generated
with the registered dimensionality.  The benchmarked operation is dataset
generation itself, which every other experiment depends on.
"""

from conftest import record_result
from repro.datasets import dataset_table, load_mnist_like
from repro.evaluation.reporting import format_table


def test_table1_dataset_registry(benchmark):
    rows = benchmark(dataset_table)
    assert len(rows) == 4
    record_result("table1_datasets", format_table(rows, title="Table 1: Datasets"))


def test_table1_generator_matches_registry(benchmark):
    dataset = benchmark.pedantic(
        lambda: load_mnist_like(n_samples=1000), rounds=1, iterations=1
    )
    assert dataset.n_features == 28 * 28
    assert dataset.n_classes == 10
