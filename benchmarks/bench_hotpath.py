"""Hot-path micro-benchmark: framework overhead of the serving engine.

Unlike the figure benchmarks (which reproduce the paper's evaluation), this
benchmark measures the reproduction's own serving hot path — cache-hit,
cache-miss (plain, serialized wide, and over the TCP / shared-memory replica
transports), ensemble, overload flash-crowd, REST-edge (``http_predict``
and its binary columnar twin ``http_predict_binary``), the cluster scaling
pair (``cluster_http_1worker`` / ``cluster_http_2workers``: worker daemons
as real child processes behind an ingress tier) and telemetry-overhead
scenarios through a full Clipper instance with no-op containers — so
perf-focused PRs have a number to move.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py -s -q

Set ``HOTPATH_QUICK=1`` to run 10× fewer queries (CI smoke mode).  The
standalone ``scripts/bench_hotpath.py`` drives the same scenarios and writes
``BENCH_hotpath.json``.
"""

from __future__ import annotations

import os

import asyncio

from conftest import record_result

from repro.evaluation.hotpath import BENCH_SLO_MS, run_all, run_telemetry_overhead

QUICK = os.environ.get("HOTPATH_QUICK", "") not in ("", "0")


def test_hotpath_scenarios():
    results = run_all(quick=QUICK)
    record_result(
        "hotpath_overhead",
        "\n".join(result.describe() for result in results),
    )

    by_name = {result.scenario: result for result in results}
    # Sanity floors, far below what any healthy build achieves — these catch
    # order-of-magnitude regressions (e.g. reintroducing a poll timer), not
    # run-to-run noise.
    assert by_name["cache_hit"].qps > 200.0
    assert by_name["cache_miss_wide"].qps > 50.0
    assert by_name["cache_miss_tcp"].qps > 50.0
    if "cache_miss_shm" in by_name:  # absent where shared memory is missing
        assert by_name["cache_miss_shm"].qps > 50.0
    assert by_name["ensemble"].qps > 100.0
    assert by_name["http_predict"].qps > 20.0
    assert by_name["http_predict_binary"].qps > 20.0
    assert by_name["cluster_http_1worker"].qps > 100.0
    # Two worker daemons must outscale one.  The acceptance ratio for the
    # recorded medians is 1.5x; the in-test floor is looser because quick
    # mode runs only ~200 queries and short cluster runs jitter.
    assert (
        by_name["cluster_http_2workers"].qps
        > 1.2 * by_name["cluster_http_1worker"].qps
    )
    # The overload flash crowd self-checks zero unanswered queries inside
    # run_overload (it raises otherwise); the floor here bounds the tail for
    # answered traffic — shed answers resolve instantly and admitted ones
    # must stay within the SLO even mid-burst.
    assert by_name["overload"].latency_ms["p99"] < BENCH_SLO_MS
    # Every scenario must comfortably meet the benchmark SLO at the median.
    for result in results:
        assert result.latency_ms["p50"] < BENCH_SLO_MS


def test_telemetry_overhead_within_budget():
    """Tracing at the default 1/256 sampling costs < 5% cache-hit throughput.

    The interleaved A/B rounds cancel most scheduler drift, but single runs
    still jitter by ~±5% on shared CI machines; the requirement holds if any
    of three attempts lands inside the budget (a real regression fails all
    three, far outside it).
    """
    num_queries = 400 if QUICK else 4000
    best = 0.0
    lines = []
    for attempt in range(3):
        on, off = asyncio.run(
            run_telemetry_overhead(num_queries=num_queries, rounds=4)
        )
        ratio = on.qps / off.qps
        best = max(best, ratio)
        lines.append(
            f"attempt {attempt}: on={on.qps:.0f} qps off={off.qps:.0f} qps "
            f"ratio={ratio:.4f}"
        )
        if best >= 0.95:
            break
    record_result("telemetry_overhead", "\n".join(lines))
    assert best >= 0.95, f"tracing overhead above 5%: best on/off ratio {best:.4f}"
