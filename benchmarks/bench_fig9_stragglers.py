"""Figure 9 — straggler mitigation for growing ensembles.

Sweeps the ensemble size and measures (a) query latency with and without
straggler mitigation, (b) the fraction of ensemble predictions missing at
the SLO deadline, and (c) prediction accuracy when combining only the
predictions that arrived.  Shape checks mirror the paper: blocking P99
latency blows far past the 20 ms objective as the ensemble grows while the
mitigated latency stays bounded at the SLO, most predictions still arrive in
time, and accuracy degrades only slightly relative to waiting for the full
ensemble.
"""

from conftest import SLO_MS, record_result
from repro.evaluation.online import straggler_experiment
from repro.evaluation.reporting import format_table
from repro.evaluation.suites import ensemble_prediction_matrix, heterogeneous_ensemble

ENSEMBLE_SIZES = (2, 4, 6, 8)


def test_fig9_straggler_mitigation(benchmark, cifar_eval_dataset):
    dataset = cifar_eval_dataset
    models = heterogeneous_ensemble(dataset, n_models=8, random_state=0)
    predictions = ensemble_prediction_matrix(models, dataset.X_test)

    def run():
        return [
            straggler_experiment(
                predictions,
                dataset.y_test,
                ensemble_size=size,
                slo_ms=SLO_MS,
                num_queries=1500,
                random_state=size,
            )
            for size in ENSEMBLE_SIZES
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [result.as_row() for result in results]
    record_result(
        "fig9_stragglers",
        format_table(rows, title="Figure 9: straggler mitigation vs blocking (20 ms SLO)"),
    )

    for result in results:
        # (a) Mitigated latency is bounded by the SLO; blocking latency is not.
        assert result.mitigated_p99_latency_ms <= SLO_MS + 1e-9
        assert result.blocking_p99_latency_ms > SLO_MS
        # (b) Most predictions still arrive by the deadline on average.
        assert result.mean_missing_fraction < 0.5
        # (c) Accuracy with the partial ensemble stays close to blocking accuracy.
        assert result.accuracy >= result.full_ensemble_accuracy - 0.05

    largest = results[-1]
    smallest = results[0]
    # Bigger ensembles suffer more from stragglers when blocking (paper 9a).
    assert largest.blocking_p99_latency_ms >= smallest.blocking_p99_latency_ms
