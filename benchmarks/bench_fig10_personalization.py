"""Figure 10 — personalized (contextual) model selection on the speech corpus.

Hosts one model per dialect plus a dialect-oblivious model, replays each
held-out speaker's utterances as an online session with feedback, and
compares three strategies: the user's reported dialect model ("static
dialect"), the global model ("no dialect"), and the Clipper per-user Exp4
selection policy.  Shape checks mirror the paper: dialect-specific models
beat the dialect-oblivious one, and after a few feedback interactions the
contextual selection policy matches or beats the static dialect choice.
"""

import numpy as np
import pytest

from conftest import record_result
from repro.datasets import load_timit_like
from repro.evaluation.online import personalization_experiment
from repro.evaluation.reporting import format_table
from repro.evaluation.suites import build_user_streams, dialect_model_suite
from repro.selection.exp4 import Exp4Policy

MAX_FEEDBACK = 8


@pytest.fixture(scope="module")
def speech_setup():
    corpus = load_timit_like(n_speakers=120, utterances_per_speaker=10, random_state=7)
    models, global_name = dialect_model_suite(corpus, random_state=0)
    streams, dialect_of_user = build_user_streams(corpus, models, max_steps=MAX_FEEDBACK + 1)
    dialect_model_name = {
        dialect: f"dialect-{dialect}" for dialect in range(corpus.n_dialects)
    }
    return streams, dialect_of_user, dialect_model_name, global_name


def test_fig10_personalized_selection(benchmark, speech_setup):
    streams, dialect_of_user, dialect_model_name, global_name = speech_setup

    def run():
        return personalization_experiment(
            streams,
            dialect_of_user,
            dialect_model_name=dialect_model_name,
            global_model_name=global_name,
            policy=Exp4Policy(eta=0.8),
            max_feedback=MAX_FEEDBACK,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "fig10_personalization",
        format_table(result.as_rows(), title="Figure 10: error vs feedback interactions"),
    )

    static = np.array(result.static_dialect_error)
    global_error = np.array(result.no_dialect_error)
    policy_error = np.array(result.clipper_policy_error)

    # Dialect-specific models out-perform the dialect-oblivious model overall.
    assert static.mean() < global_error.mean()
    # After a few feedback rounds the contextual policy is competitive with
    # (or better than) the static dialect model and beats the global model.
    late = slice(MAX_FEEDBACK // 2, None)
    assert policy_error[late].mean() <= global_error[late].mean() + 0.02
    assert policy_error[late].mean() <= static[late].mean() + 0.10
    # And the policy improves as feedback accumulates.
    assert policy_error[late].mean() <= policy_error[: MAX_FEEDBACK // 2].mean() + 0.02
