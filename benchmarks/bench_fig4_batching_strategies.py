"""Figure 4 — comparison of dynamic batching strategies.

Serves each of the Figure 3 model containers through the full Clipper stack
under three batching strategies — adaptive AIMD, quantile regression, and
the no-batching baseline — at a 20 ms SLO, reporting throughput and P99
latency.  The paper's shape: the two adaptive strategies perform nearly
identically and both deliver large throughput gains (up to ~26x for the
Scikit-Learn linear SVM) over no batching, while keeping P99 latency near
the SLO.
"""

import pytest

from conftest import SLO_MS, record_result
from repro.core.config import BatchingConfig
from repro.evaluation.reporting import format_table
from repro.evaluation.serving import run_clipper_serving

STRATEGIES = {
    "adaptive": BatchingConfig(policy="aimd", additive_increase=4),
    "quantile-regression": BatchingConfig(policy="quantile", additive_increase=4),
    "no-batching": BatchingConfig(policy="none"),
}

#: Containers served in this benchmark (kernel SVM uses fewer queries since
#: its no-batching baseline is very slow, as in the paper).
NUM_QUERIES = {
    "no-op": 600,
    "linear-svm-sklearn": 400,
    "linear-svm-pyspark": 400,
    "random-forest-sklearn": 400,
    "kernel-svm-sklearn": 120,
    "logistic-regression-sklearn": 400,
}


@pytest.fixture(scope="module")
def fig4_rows(figure3_suite, mnist_serving_dataset):
    inputs = [mnist_serving_dataset.X_test[i] for i in range(128)]
    rows = []
    for spec in figure3_suite:
        for strategy, batching in STRATEGIES.items():
            measurement = run_clipper_serving(
                container_factory=spec.factory,
                inputs=inputs,
                label=f"{spec.name}/{strategy}",
                num_queries=NUM_QUERIES[spec.name],
                latency_slo_ms=SLO_MS,
                batching=batching,
                concurrency=64,
            )
            rows.append(
                {
                    "container": spec.name,
                    "strategy": strategy,
                    "throughput_qps": measurement.throughput_qps,
                    "p99_latency_ms": measurement.p99_latency_ms,
                    "mean_batch_size": measurement.mean_batch_size,
                }
            )
    return rows


def test_fig4_batching_strategies(benchmark, fig4_rows):
    record_result(
        "fig4_batching_strategies",
        format_table(fig4_rows, title="Figure 4: dynamic batching strategies (20 ms SLO)"),
    )

    def lookup(container, strategy, field):
        for row in fig4_rows:
            if row["container"] == container and row["strategy"] == strategy:
                return row[field]
        raise KeyError((container, strategy))

    # Adaptive batching must substantially outperform no batching for the
    # BLAS-friendly sklearn linear SVM (paper: ~26x).
    sklearn_gain = lookup("linear-svm-sklearn", "adaptive", "throughput_qps") / lookup(
        "linear-svm-sklearn", "no-batching", "throughput_qps"
    )
    assert sklearn_gain > 2.0

    # The two adaptive strategies should be in the same ballpark (within 3x)
    # for every container — the paper finds them nearly identical.
    for container in NUM_QUERIES:
        aimd = lookup(container, "adaptive", "throughput_qps")
        quantile = lookup(container, "quantile-regression", "throughput_qps")
        assert 1 / 3 < aimd / quantile < 3

    benchmark(lambda: max(row["throughput_qps"] for row in fig4_rows))


def test_fig4_adaptive_batches_grow_beyond_one(fig4_rows):
    adaptive_batches = [
        row["mean_batch_size"]
        for row in fig4_rows
        if row["strategy"] == "adaptive" and row["container"] != "kernel-svm-sklearn"
    ]
    assert max(adaptive_batches) > 1.5
