"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation.
Trained model suites and datasets are session-scoped so that model training
is paid once, and every benchmark records the table it reproduces under
``benchmarks/results/`` so the numbers can be inspected (and are quoted in
``EXPERIMENTS.md``).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.datasets import load_cifar_like, load_mnist_like
from repro.evaluation.suites import (
    ensemble_prediction_matrix,
    figure3_container_suite,
    heterogeneous_ensemble,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Latency SLO used throughout the paper's micro-benchmarks.
SLO_MS = 20.0


def record_result(name: str, text: str) -> None:
    """Persist one benchmark's reproduced table under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    # Also echo to stdout so ``pytest -s`` shows the table inline.
    print(f"\n[{name}]\n{text}")


@pytest.fixture(scope="session")
def mnist_serving_dataset():
    """Reduced-dimension MNIST-like data used by the serving benchmarks."""
    return load_mnist_like(n_samples=1600, n_features=196, random_state=0)


@pytest.fixture(scope="session")
def cifar_eval_dataset():
    """CIFAR-like data used by the selection-layer benchmarks."""
    return load_cifar_like(n_samples=2000, n_features=256, random_state=1)


@pytest.fixture(scope="session")
def figure3_suite(mnist_serving_dataset):
    """The six Figure 3 containers trained on the MNIST-like dataset."""
    return figure3_container_suite(
        mnist_serving_dataset, random_state=0, kernel_support_vectors=600
    )


@pytest.fixture(scope="session")
def cifar_ensemble(cifar_eval_dataset):
    """The five-model heterogeneous ensemble used in Figures 7, 8 and 9."""
    models = heterogeneous_ensemble(cifar_eval_dataset, n_models=5, random_state=0)
    predictions = ensemble_prediction_matrix(models, cifar_eval_dataset.X_test)
    return models, predictions, cifar_eval_dataset.y_test
