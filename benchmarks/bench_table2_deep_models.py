"""Table 2 — the deep-learning model zoo used for the ImageNet ensemble.

Regenerates the model-zoo table and trains the five MLP stand-ins on the
ImageNet-like dataset, verifying the zoo spans a meaningful range of model
capacities (parameter counts) and that deeper members are at least as
accurate as the shallowest one — the property the Figure 7 ensemble relies
on.
"""

import pytest

from conftest import record_result
from repro.datasets import load_imagenet_like
from repro.datasets.registry import model_zoo_table
from repro.evaluation.reporting import format_table
from repro.mlkit.zoo import TABLE2_ZOO, build_zoo_model


@pytest.fixture(scope="module")
def imagenet_small():
    return load_imagenet_like(n_samples=1200, n_classes=20, n_features=256, random_state=2)


def test_table2_model_zoo(benchmark, imagenet_small):
    ds = imagenet_small
    rows = []

    def train_zoo():
        trained = {}
        for key in sorted(TABLE2_ZOO):
            model = build_zoo_model(key, random_state=0)
            model.fit(ds.X_train, ds.y_train)
            trained[key] = model
        return trained

    trained = benchmark.pedantic(train_zoo, rounds=1, iterations=1)

    registry_rows = {row["model"]: row for row in model_zoo_table()}
    for key in sorted(TABLE2_ZOO):
        entry = TABLE2_ZOO[key]
        model = trained[key]
        rows.append(
            {
                "framework": entry.framework,
                "model": entry.name,
                "paper_size": entry.paper_size,
                "repro_layers": model.n_layers_,
                "repro_parameters": model.n_parameters_,
                "top1_accuracy": model.score(ds.X_test, ds.y_test),
            }
        )
    record_result("table2_deep_models", format_table(rows, title="Table 2: deep model zoo"))

    assert len(registry_rows) == 5
    parameters = [row["repro_parameters"] for row in rows]
    assert max(parameters) > 2 * min(parameters)
    by_name = {row["model"]: row for row in rows}
    assert by_name["ResNet-152"]["top1_accuracy"] >= by_name["CaffeNet"]["top1_accuracy"] - 0.05
