"""Ablations of the design choices called out in DESIGN.md.

These go beyond the paper's figures and quantify the sensitivity of the main
mechanisms:

* AIMD backoff constant — the paper argues for a gentle 10% backoff rather
  than TCP-style halving; the ablation compares convergence and stability.
* Prediction-cache sizing and eviction policy (CLOCK vs LRU) on a skewed
  query popularity distribution.
* Straggler-mitigation deadline sweep — accuracy/latency trade-off as the
  SLO tightens.
* Exp3 vs epsilon-greedy vs UCB1 on a stationary selection workload.
"""

import numpy as np
import pytest

from conftest import record_result
from repro.batching.aimd import AIMDController
from repro.cache.prediction_cache import PredictionCache
from repro.core.types import ModelId
from repro.evaluation.online import straggler_experiment
from repro.evaluation.reporting import format_table
from repro.evaluation.suites import ensemble_prediction_matrix, heterogeneous_ensemble
from repro.selection.epsilon_greedy import EpsilonGreedyPolicy
from repro.selection.exp3 import Exp3Policy
from repro.selection.ucb import UCB1Policy


def test_ablation_aimd_backoff_constant(benchmark):
    """Gentle backoff (0.9) should track capacity with fewer oscillations."""

    def run():
        rows = []
        for backoff in (0.5, 0.75, 0.9):
            controller = AIMDController(
                slo_ms=20.0, initial_batch_size=1, additive_increase=2, backoff_fraction=backoff
            )
            sizes = []
            for _ in range(600):
                batch = controller.current_batch_size()
                latency = 0.1 * batch  # capacity: 200 queries per 20 ms
                controller.observe(batch, latency)
                sizes.append(batch)
            steady = np.array(sizes[200:])
            rows.append(
                {
                    "backoff_fraction": backoff,
                    "mean_batch": float(steady.mean()),
                    "batch_stddev": float(steady.std()),
                    "backoffs": controller.backoffs,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result("ablation_aimd_backoff", format_table(rows, title="Ablation: AIMD backoff"))
    by_backoff = {row["backoff_fraction"]: row for row in rows}
    # The gentle backoff sustains a larger average batch (higher throughput)
    # with lower variance than aggressive halving.
    assert by_backoff[0.9]["mean_batch"] > by_backoff[0.5]["mean_batch"]
    assert by_backoff[0.9]["batch_stddev"] < by_backoff[0.5]["batch_stddev"] * 1.5


def test_ablation_cache_size_and_eviction(benchmark):
    """Hit rate vs cache size under a Zipf-like popularity distribution."""
    rng = np.random.default_rng(0)
    n_items = 4096
    popularity = rng.zipf(1.3, size=60000) % n_items
    items = [np.array([float(i)]) for i in range(n_items)]

    def run():
        rows = []
        for capacity in (256, 1024, 4096):
            for eviction in ("clock", "lru"):
                cache = PredictionCache(capacity=capacity, eviction=eviction)
                for item_id in popularity:
                    x = items[int(item_id)]
                    if cache.fetch("m:1", x) is None:
                        cache.put("m:1", x, int(item_id))
                rows.append(
                    {
                        "capacity": capacity,
                        "eviction": eviction,
                        "hit_rate": cache.stats.hit_rate,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result("ablation_cache", format_table(rows, title="Ablation: prediction cache"))
    by_key = {(row["capacity"], row["eviction"]): row["hit_rate"] for row in rows}
    # Bigger caches hit more, and CLOCK approximates LRU closely (within 10 points).
    assert by_key[(4096, "clock")] > by_key[(256, "clock")]
    for capacity in (256, 1024, 4096):
        assert abs(by_key[(capacity, "clock")] - by_key[(capacity, "lru")]) < 0.1


def test_ablation_straggler_deadline_sweep(benchmark, cifar_eval_dataset):
    """Tighter SLOs trade more missing predictions for bounded latency."""
    models = heterogeneous_ensemble(cifar_eval_dataset, n_models=5, random_state=0)
    predictions = ensemble_prediction_matrix(models, cifar_eval_dataset.X_test)

    def run():
        rows = []
        for slo in (10.0, 20.0, 40.0, 80.0):
            result = straggler_experiment(
                predictions,
                cifar_eval_dataset.y_test,
                ensemble_size=5,
                slo_ms=slo,
                num_queries=1200,
                random_state=1,
            )
            rows.append(
                {
                    "slo_ms": slo,
                    "mitigated_p99_ms": result.mitigated_p99_latency_ms,
                    "missing_mean_pct": result.mean_missing_fraction * 100,
                    "accuracy": result.accuracy,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "ablation_straggler_deadline",
        format_table(rows, title="Ablation: straggler-mitigation deadline sweep"),
    )
    assert rows[0]["missing_mean_pct"] >= rows[-1]["missing_mean_pct"]
    assert rows[0]["accuracy"] <= rows[-1]["accuracy"] + 1e-9
    for row in rows:
        assert row["mitigated_p99_ms"] <= row["slo_ms"] + 1e-9


def test_ablation_bandit_policies(benchmark):
    """Exp3 vs epsilon-greedy vs UCB1 on a stationary two-model workload."""
    models = [ModelId("good"), ModelId("bad")]
    accuracies = {"good:1": 0.9, "bad:1": 0.55}

    def run():
        rows = []
        for label, policy in (
            ("exp3", Exp3Policy(eta=0.3, seed=0)),
            ("epsilon_greedy", EpsilonGreedyPolicy(epsilon=0.1, seed=0)),
            ("ucb1", UCB1Policy()),
        ):
            rng = np.random.default_rng(1)
            state = policy.init(models)
            errors = 0
            n = 3000
            for _ in range(n):
                arm = policy.select(state, None)[0]
                correct = rng.random() < accuracies[arm]
                errors += int(not correct)
                state = policy.observe(state, None, 1, {arm: 1 if correct else 0})
            rows.append({"policy": label, "mean_error": errors / n})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "ablation_bandit_policies",
        format_table(rows, title="Ablation: bandit policies on a stationary workload"),
    )
    # Every policy must do clearly better than always picking the bad model
    # (error 0.45) and approach the good model's error rate (0.10).
    for row in rows:
        assert row["mean_error"] < 0.3
