"""Figure 5 — throughput gain from delayed batching under moderate load.

Serves two containers with very different cost structures under an open-loop
moderate workload while sweeping the batch-wait timeout:

* a *Spark-like* linear SVM container (low fixed per-batch cost, higher
  per-item cost) — delaying dispatch buys nothing, and
* a *Scikit-Learn-like* linear SVM container (high fixed per-batch cost,
  cheap vectorised per-item cost) — delaying dispatch lets batches fill and
  substantially increases throughput.

The paper measures a ~3.3x throughput gain for the Scikit-Learn container at
a 2 ms batch delay and no gain for the Spark container.
"""

import pytest

from conftest import record_result
from repro.core.config import BatchingConfig
from repro.evaluation.reporting import format_table
from repro.evaluation.serving import run_clipper_serving
from repro.workloads.arrivals import PoissonArrivals

#: Batch-wait timeouts swept (ms); the paper sweeps 0-4 ms (in microseconds).
WAIT_TIMEOUTS_MS = [0.0, 1.0, 2.0, 4.0]
MODERATE_RATE_QPS = 700.0
NUM_QUERIES = 300


@pytest.fixture(scope="module")
def fig5_rows(figure3_suite, mnist_serving_dataset):
    inputs = [mnist_serving_dataset.X_test[i] for i in range(64)]
    specs = {
        spec.name: spec
        for spec in figure3_suite
        if spec.name in ("linear-svm-sklearn", "linear-svm-pyspark")
    }
    rows = []
    for name, spec in specs.items():
        for wait_ms in WAIT_TIMEOUTS_MS:
            measurement = run_clipper_serving(
                container_factory=spec.factory,
                inputs=inputs,
                label=f"{name}/wait={wait_ms}ms",
                num_queries=NUM_QUERIES,
                latency_slo_ms=40.0,
                batching=BatchingConfig(
                    policy="aimd", additive_increase=4, batch_wait_timeout_ms=wait_ms
                ),
                arrivals=PoissonArrivals(MODERATE_RATE_QPS, random_state=0),
            )
            rows.append(
                {
                    "container": name,
                    "batch_wait_ms": wait_ms,
                    "throughput_qps": measurement.throughput_qps,
                    "mean_latency_ms": measurement.mean_latency_ms,
                    "mean_batch_size": measurement.mean_batch_size,
                }
            )
    return rows


def test_fig5_delayed_batching(benchmark, fig5_rows):
    record_result(
        "fig5_delayed_batching",
        format_table(fig5_rows, title="Figure 5: delayed batching under moderate load"),
    )

    def batch_size(container, wait):
        for row in fig5_rows:
            if row["container"] == container and row["batch_wait_ms"] == wait:
                return row["mean_batch_size"]
        raise KeyError((container, wait))

    # Delaying dispatch must grow the sklearn-flavoured container's batches
    # (it has the high fixed per-batch cost that benefits from larger batches).
    assert batch_size("linear-svm-sklearn", 4.0) > batch_size("linear-svm-sklearn", 0.0)

    benchmark(lambda: len(fig5_rows))


def test_fig5_latency_stays_moderate(fig5_rows):
    # Under moderate (sub-saturation) load, added batch delay must not blow up
    # latency beyond the interactive budget the paper cites (10-20 ms).
    for row in fig5_rows:
        assert row["mean_latency_ms"] < 40.0
