"""Figure 6 — scaling the model abstraction layer across a GPU cluster.

Runs the discrete-event cluster simulation (the substitution for the paper's
four-node K20c GPU cluster) for 1-4 replicas behind 10 Gbps and 1 Gbps
networks.  Shape checks: near-linear aggregate-throughput scaling at
10 Gbps (paper: 19.5K -> 77K qps, 3.95x), network saturation and latency
growth at 1 Gbps.
"""

from conftest import record_result
from repro.evaluation.reporting import format_table
from repro.simulation.cluster import sweep_cluster_scaling

REPLICAS = (1, 2, 3, 4)
LINKS_GBPS = (10.0, 1.0)


def run_sweep():
    return sweep_cluster_scaling(
        replica_counts=REPLICAS,
        link_speeds_gbps=LINKS_GBPS,
        duration_s=1.0,
        random_state=0,
    )


def test_fig6_cluster_scaling(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for link_gbps in LINKS_GBPS:
        for result in results[link_gbps]:
            rows.append(
                {
                    "link_gbps": link_gbps,
                    "replicas": result.num_replicas,
                    "aggregate_qps": result.aggregate_throughput_qps,
                    "mean_replica_qps": result.mean_replica_throughput_qps,
                    "mean_latency_ms": result.mean_latency_ms,
                    "p99_latency_ms": result.p99_latency_ms,
                    "nic_utilization": result.nic_utilization,
                }
            )
    record_result(
        "fig6_cluster_scaling",
        format_table(rows, title="Figure 6: scaling across a (simulated) GPU cluster"),
    )

    fast = results[10.0]
    slow = results[1.0]
    # Near-linear scaling on the fast network (paper: 3.95x at 4 replicas).
    speedup = fast[3].aggregate_throughput_qps / fast[0].aggregate_throughput_qps
    assert speedup > 3.5
    # The 1 Gbps network saturates: aggregate throughput plateaus well below
    # the 10 Gbps configuration and the NIC is the bottleneck.
    assert slow[3].aggregate_throughput_qps < 0.6 * fast[3].aggregate_throughput_qps
    assert slow[3].nic_utilization > 0.95
    # Saturation shows up as queueing delay: latency grows with replicas.
    assert slow[3].p99_latency_ms > slow[0].p99_latency_ms


def test_fig6_single_replica_matches_calibration(benchmark):
    from repro.simulation.cluster import simulate_cluster_scaling

    result = benchmark.pedantic(
        lambda: simulate_cluster_scaling(1, 10.0, duration_s=1.0, random_state=0),
        rounds=1,
        iterations=1,
    )
    # Calibrated to the paper's single-node measurement of ~19.5K qps.
    assert abs(result.aggregate_throughput_qps - 19500) / 19500 < 0.15
