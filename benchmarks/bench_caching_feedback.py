"""§4.2 claim — prediction caching accelerates feedback processing.

The paper reports that with a four-model ensemble, enabling the prediction
cache increased feedback-processing throughput by ~1.6x (6K -> 11K
observations/s): joining feedback with cached predictions avoids
re-evaluating every model in the ensemble.  This benchmark replays the same
feedback stream through a Clipper instance with and without the prediction
cache and compares feedback throughput, and additionally benchmarks the raw
cache data structures.
"""

import time

import numpy as np
import pytest

from conftest import record_result
from repro.cache.clock import ClockCache
from repro.cache.lru import LRUCache
from repro.cache.prediction_cache import PredictionCache
from repro.containers.adapters import ClassifierContainer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.types import Feedback, Query
from repro.evaluation.reporting import format_table
from repro.evaluation.suites import heterogeneous_ensemble

N_FEEDBACK = 150


def _feedback_throughput(models, dataset, cache_size):
    """Predictions first (warming the cache when enabled), then timed feedback."""
    import asyncio

    async def run():
        clipper = Clipper(
            ClipperConfig(
                app_name="cache-bench",
                latency_slo_ms=100.0,
                selection_policy="exp4",
                cache_size=cache_size,
            )
        )
        for name, model in models.items():
            clipper.deploy_model(
                ModelDeployment(
                    name=name,
                    container_factory=lambda model=model: ClassifierContainer(model),
                )
            )
        await clipper.start()
        inputs = [dataset.X_test[i % dataset.X_test.shape[0]] for i in range(N_FEEDBACK)]
        labels = [int(dataset.y_test[i % dataset.y_test.shape[0]]) for i in range(N_FEEDBACK)]
        for x in inputs:
            await clipper.predict(Query(app_name="cache-bench", input=x))
        start = time.perf_counter()
        for x, label in zip(inputs, labels):
            await clipper.feedback(Feedback(app_name="cache-bench", input=x, label=label))
        elapsed = time.perf_counter() - start
        await clipper.stop()
        return N_FEEDBACK / elapsed, clipper.cache.stats.hit_rate

    loop = __import__("asyncio").new_event_loop()
    try:
        return loop.run_until_complete(run())
    finally:
        loop.close()


def test_caching_feedback_throughput(benchmark, cifar_eval_dataset):
    models = heterogeneous_ensemble(cifar_eval_dataset, n_models=4, random_state=0)

    def run():
        with_cache, hit_rate = _feedback_throughput(models, cifar_eval_dataset, cache_size=65536)
        without_cache, _ = _feedback_throughput(models, cifar_eval_dataset, cache_size=0)
        return with_cache, without_cache, hit_rate

    with_cache, without_cache, hit_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = with_cache / without_cache
    rows = [
        {"configuration": "prediction cache enabled", "feedback_per_s": with_cache},
        {"configuration": "prediction cache disabled", "feedback_per_s": without_cache},
        {"configuration": "speedup", "feedback_per_s": speedup},
    ]
    record_result(
        "caching_feedback_throughput",
        format_table(rows, title="§4.2: feedback-processing throughput (4-model ensemble)"),
    )
    # Paper: ~1.6x. Require a clear improvement.
    assert speedup > 1.2
    # Every feedback lookup after the warm-up predictions should hit, giving a
    # hit rate of exactly one half over the whole run (miss on predict, hit on
    # feedback).
    assert hit_rate >= 0.5


class TestRawCacheStructures:
    def test_clock_cache_throughput(self, benchmark):
        cache = ClockCache(capacity=4096)
        keys = [f"key-{i}" for i in range(8192)]

        def workload():
            for i, key in enumerate(keys):
                cache.put(key, i)
                cache.get(keys[i // 2])

        benchmark(workload)
        assert len(cache) <= 4096

    def test_lru_cache_throughput(self, benchmark):
        cache = LRUCache(capacity=4096)
        keys = [f"key-{i}" for i in range(8192)]

        def workload():
            for i, key in enumerate(keys):
                cache.put(key, i)
                cache.get(keys[i // 2])

        benchmark(workload)
        assert len(cache) <= 4096

    def test_prediction_cache_hashing_throughput(self, benchmark):
        cache = PredictionCache(capacity=4096)
        x = np.random.default_rng(0).normal(size=784)

        def workload():
            cache.put("model:1", x, 3)
            return cache.fetch("model:1", x)

        result = benchmark(workload)
        assert result == 3
