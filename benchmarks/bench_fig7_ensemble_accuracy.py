"""Figure 7 — ensemble prediction accuracy and agreement-based confidence.

Evaluates five-model ensembles on the CIFAR-like (top-1 error) and
ImageNet-like (top-5 error via a widened agreement criterion) stand-ins,
reporting the best single model's error, the ensemble's error, and the error
of the confident (4-agree / 5-agree) versus unsure query groups together
with the fraction of queries in each group.  Shape checks mirror the paper:
the ensemble is at least as accurate as the best single model, and the
confident group has much lower error than the unsure group.
"""

import numpy as np
import pytest

from conftest import record_result
from repro.datasets import load_imagenet_like
from repro.evaluation.online import ensemble_accuracy_experiment
from repro.evaluation.reporting import format_table
from repro.evaluation.suites import ensemble_prediction_matrix, heterogeneous_ensemble


@pytest.fixture(scope="module")
def imagenet_ensemble():
    dataset = load_imagenet_like(n_samples=1500, n_classes=20, n_features=256, random_state=2)
    models = heterogeneous_ensemble(dataset, n_models=5, random_state=3)
    predictions = ensemble_prediction_matrix(models, dataset.X_test)
    return predictions, dataset.y_test


def test_fig7_cifar_ensemble_accuracy(benchmark, cifar_ensemble):
    _, predictions, y_true = cifar_ensemble

    def run():
        return {
            threshold: ensemble_accuracy_experiment(
                predictions, y_true, agreement_threshold=threshold, dataset="cifar-like"
            )
            for threshold in (4, 5)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [results[threshold].as_row() for threshold in (4, 5)]
    record_result(
        "fig7_cifar_ensemble", format_table(rows, title="Figure 7 (CIFAR-like): top-1 error")
    )

    for threshold in (4, 5):
        result = results[threshold]
        assert result.ensemble_error <= result.single_model_error + 0.02
        assert result.confident_error < result.unsure_error
        assert 0.0 < result.confident_fraction < 1.0


def test_fig7_imagenet_ensemble_accuracy(benchmark, imagenet_ensemble):
    predictions, y_true = imagenet_ensemble

    def run():
        return ensemble_accuracy_experiment(
            predictions, y_true, agreement_threshold=4, dataset="imagenet-like"
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "fig7_imagenet_ensemble",
        format_table([result.as_row()], title="Figure 7 (ImageNet-like): top-1 error"),
    )
    assert result.confident_error < result.ensemble_error
    assert result.unsure_error > result.confident_error
