"""Tests for the discrete-event simulator and the cluster-scaling experiment."""

import pytest

from repro.simulation.cluster import simulate_cluster_scaling, sweep_cluster_scaling
from repro.simulation.events import EventSimulator
from repro.simulation.latency_models import LinearBatchLatencyModel
from repro.simulation.resources import FifoResource, Link


class TestEventSimulator:
    def test_events_run_in_time_order(self):
        sim = EventSimulator()
        order = []
        sim.schedule(5.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.schedule(3.0, lambda: order.append("middle"))
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_now_advances_with_events(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0]

    def test_run_until_horizon_stops_early(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending() == 1

    def test_callbacks_can_schedule_more_events(self):
        sim = EventSimulator()
        counter = {"n": 0}

        def recurring():
            counter["n"] += 1
            if counter["n"] < 5:
                sim.schedule(1.0, recurring)

        sim.schedule(1.0, recurring)
        sim.run()
        assert counter["n"] == 5
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        sim = EventSimulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(-1.0, lambda: None)

    def test_max_events_budget(self):
        sim = EventSimulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run(max_events=3)
        assert sim.pending() == 7


class TestResources:
    def test_fifo_resource_serialises_jobs(self):
        resource = FifoResource()
        first = resource.submit(arrival_time=0.0, service_time=2.0)
        second = resource.submit(arrival_time=0.5, service_time=1.0)
        assert first == 2.0
        assert second == 3.0  # waits for the first job
        assert resource.jobs_served == 2

    def test_idle_resource_starts_immediately(self):
        resource = FifoResource()
        resource.submit(0.0, 1.0)
        completion = resource.submit(5.0, 1.0)
        assert completion == 6.0

    def test_utilization(self):
        resource = FifoResource()
        resource.submit(0.0, 2.0)
        assert resource.utilization(4.0) == pytest.approx(0.5)

    def test_link_transfer_time_scales_with_bytes_and_bandwidth(self):
        fast = Link(bandwidth_gbps=10.0)
        slow = Link(bandwidth_gbps=1.0)
        payload = 1_000_000
        assert slow.transfer_time_s(payload) == pytest.approx(10 * fast.transfer_time_s(payload))

    def test_link_transmit_includes_latency(self):
        link = Link(bandwidth_gbps=1.0, latency_ms=1.0)
        done = link.transmit(0.0, 125_000)  # 1 ms of serialization at 1 Gbps
        assert done == pytest.approx(0.002, rel=1e-6)

    def test_link_validation(self):
        with pytest.raises(ValueError):
            Link(bandwidth_gbps=0)
        with pytest.raises(ValueError):
            Link(bandwidth_gbps=1).transfer_time_s(-5)


class TestLatencyModel:
    def test_mean_latency_linear_in_batch(self):
        model = LinearBatchLatencyModel(base_ms=2.0, per_item_ms=0.5)
        assert model.mean_latency_ms(10) == pytest.approx(7.0)

    def test_calibration_hits_target_throughput(self):
        model = LinearBatchLatencyModel.calibrated_for_throughput(
            target_qps=20000, batch_size=64, jitter_fraction=0.0
        )
        assert model.throughput_qps(64) == pytest.approx(20000, rel=1e-6)

    def test_jitter_stays_within_bounds(self):
        model = LinearBatchLatencyModel(base_ms=10.0, per_item_ms=0.0, jitter_fraction=0.1, random_state=0)
        samples = [model.sample_latency_ms(1) for _ in range(200)]
        assert all(9.0 <= s <= 11.0 for s in samples)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearBatchLatencyModel(base_ms=-1, per_item_ms=0)
        with pytest.raises(ValueError):
            LinearBatchLatencyModel(base_ms=1, per_item_ms=0, jitter_fraction=1.0)
        with pytest.raises(ValueError):
            LinearBatchLatencyModel(1, 1).mean_latency_ms(0)


class TestClusterScaling:
    def test_single_replica_matches_calibration(self):
        result = simulate_cluster_scaling(1, link_gbps=10.0, duration_s=0.5, random_state=0)
        assert result.aggregate_throughput_qps == pytest.approx(19500, rel=0.1)

    def test_near_linear_scaling_on_fast_network(self):
        one = simulate_cluster_scaling(1, 10.0, duration_s=0.5, random_state=0)
        four = simulate_cluster_scaling(4, 10.0, duration_s=0.5, random_state=0)
        speedup = four.aggregate_throughput_qps / one.aggregate_throughput_qps
        assert speedup > 3.5

    def test_slow_network_saturates(self):
        """The Figure 6 crossover: 1 Gbps plateaus well below linear scaling."""
        four_fast = simulate_cluster_scaling(4, 10.0, duration_s=0.5, random_state=0)
        four_slow = simulate_cluster_scaling(4, 1.0, duration_s=0.5, random_state=0)
        assert four_slow.aggregate_throughput_qps < 0.6 * four_fast.aggregate_throughput_qps
        assert four_slow.nic_utilization > 0.95

    def test_slow_network_increases_latency(self):
        fast = simulate_cluster_scaling(4, 10.0, duration_s=0.5, random_state=0)
        slow = simulate_cluster_scaling(4, 1.0, duration_s=0.5, random_state=0)
        assert slow.p99_latency_ms > fast.p99_latency_ms

    def test_sweep_shapes(self):
        results = sweep_cluster_scaling(replica_counts=(1, 2), link_speeds_gbps=(10.0, 1.0), duration_s=0.2)
        assert set(results) == {10.0, 1.0}
        assert [r.num_replicas for r in results[10.0]] == [1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_cluster_scaling(0, 10.0)
        with pytest.raises(ValueError):
            simulate_cluster_scaling(1, 10.0, duration_s=0)
        with pytest.raises(ValueError):
            simulate_cluster_scaling(1, 10.0, pipeline_depth=0)
