"""Tests for the per-replica batch dispatcher."""

import asyncio
import time

import numpy as np
import pytest

from helpers import run_async
from repro.batching.aimd import AIMDController
from repro.batching.controllers import FixedBatchSizeController
from repro.batching.dispatcher import ReplicaDispatcher
from repro.batching.queue import BatchingQueue, PendingQuery
from repro.containers.base import ModelContainer
from repro.containers.noop import NoOpContainer
from repro.containers.replica import ContainerReplica
from repro.core.exceptions import ContainerError, PredictionTimeoutError
from repro.core.types import ModelId


def build_dispatcher(container, controller=None, batch_wait_timeout_ms=0.0, drop_expired=True):
    replica = ContainerReplica(ModelId("model"), 0, container)
    queue = BatchingQueue()
    controller = controller or FixedBatchSizeController(batch_size=8)
    dispatcher = ReplicaDispatcher(
        replica,
        queue,
        controller,
        batch_wait_timeout_ms=batch_wait_timeout_ms,
        drop_expired=drop_expired,
    )
    return replica, queue, dispatcher


def make_item(value, deadline=None, query_id=None):
    loop = asyncio.get_event_loop()
    return PendingQuery(
        input=value, future=loop.create_future(), deadline=deadline, query_id=query_id
    )


class TestDispatchBatch:
    def test_resolves_futures_with_outputs(self):
        async def scenario():
            replica, queue, dispatcher = build_dispatcher(NoOpContainer(output=4))
            await replica.start()
            items = [make_item(np.zeros(1)) for _ in range(3)]
            await dispatcher.dispatch_batch(items)
            assert [item.future.result() for item in items] == [4, 4, 4]
            assert dispatcher.batch_history[0].batch_size == 3
            await replica.stop()

        run_async(scenario())

    def test_controller_observes_latency(self):
        async def scenario():
            controller = AIMDController(slo_ms=1000.0, initial_batch_size=1)
            replica, queue, dispatcher = build_dispatcher(NoOpContainer(), controller)
            await replica.start()
            await dispatcher.dispatch_batch([make_item(np.zeros(1))])
            assert controller.increases == 1
            await replica.stop()

        run_async(scenario())

    def test_container_error_fails_futures(self):
        class Exploding(ModelContainer):
            def predict_batch(self, inputs):
                raise RuntimeError("boom")

        async def scenario():
            replica, queue, dispatcher = build_dispatcher(Exploding())
            await replica.start()
            item = make_item(np.zeros(1))
            await dispatcher.dispatch_batch([item])
            with pytest.raises(ContainerError):
                item.future.result()
            await replica.stop()

        run_async(scenario())

    def test_expired_queries_are_dropped(self):
        async def scenario():
            replica, queue, dispatcher = build_dispatcher(NoOpContainer(output=1))
            await replica.start()
            expired = make_item(np.zeros(1), deadline=time.monotonic() - 1.0, query_id=7)
            live = make_item(np.zeros(1), deadline=time.monotonic() + 10.0)
            await dispatcher.dispatch_batch([expired, live])
            with pytest.raises(PredictionTimeoutError):
                expired.future.result()
            assert live.future.result() == 1
            await replica.stop()

        run_async(scenario())

    def test_expired_queries_kept_when_drop_disabled(self):
        async def scenario():
            replica, queue, dispatcher = build_dispatcher(
                NoOpContainer(output=1), drop_expired=False
            )
            await replica.start()
            expired = make_item(np.zeros(1), deadline=time.monotonic() - 1.0)
            await dispatcher.dispatch_batch([expired])
            assert expired.future.result() == 1
            await replica.stop()

        run_async(scenario())


class TestDispatchLoop:
    def test_background_loop_serves_queued_queries(self):
        async def scenario():
            replica, queue, dispatcher = build_dispatcher(NoOpContainer(output=2))
            await replica.start()
            dispatcher.start()
            items = [make_item(np.zeros(1)) for _ in range(20)]
            for item in items:
                await queue.put(item)
            results = await asyncio.gather(*[item.future for item in items])
            assert results == [2] * 20
            await dispatcher.stop()
            await replica.stop()

        run_async(scenario())

    def test_batches_respect_controller_size(self):
        async def scenario():
            controller = FixedBatchSizeController(batch_size=4)
            replica, queue, dispatcher = build_dispatcher(NoOpContainer(), controller)
            await replica.start()
            dispatcher.start()
            items = [make_item(np.zeros(1)) for _ in range(16)]
            for item in items:
                await queue.put(item)
            await asyncio.gather(*[item.future for item in items])
            await dispatcher.stop()
            await replica.stop()
            assert all(stats.batch_size <= 4 for stats in dispatcher.batch_history)
            assert sum(stats.batch_size for stats in dispatcher.batch_history) == 16

        run_async(scenario())

    def test_metrics_are_recorded(self):
        async def scenario():
            replica, queue, dispatcher = build_dispatcher(NoOpContainer())
            await replica.start()
            dispatcher.start()
            item = make_item(np.zeros(1))
            await queue.put(item)
            await item.future
            await dispatcher.stop()
            await replica.stop()
            snapshot = dispatcher.metrics.snapshot()
            assert "model.model:1.batch_latency_ms" in snapshot.histograms

        run_async(scenario())


class TestFailureRequeue:
    def test_failed_batch_requeues_within_retry_budget(self):
        class Exploding(ModelContainer):
            def predict_batch(self, inputs):
                raise RuntimeError("boom")

        async def scenario():
            replica = ContainerReplica(ModelId("model"), 0, Exploding())
            queue = BatchingQueue()
            dispatcher = ReplicaDispatcher(
                replica, queue, FixedBatchSizeController(batch_size=8), max_retries=2
            )
            await replica.start()
            item = make_item(np.zeros(1))
            await dispatcher.dispatch_batch([item])
            # First failure: the query went back onto the shared queue.
            assert not item.future.done()
            assert queue.qsize() == 1
            assert item.attempts == 1
            assert dispatcher.consecutive_failures == 1

            # Exhaust the retry budget: the failure surfaces.
            await dispatcher.dispatch_batch([queue._items.popleft()])
            await dispatcher.dispatch_batch([queue._items.popleft()])
            with pytest.raises(ContainerError):
                item.future.result()
            assert dispatcher.consecutive_failures == 3
            await replica.stop()

        run_async(scenario())

    def test_healthy_sibling_absorbs_requeued_queries(self):
        class Exploding(ModelContainer):
            def predict_batch(self, inputs):
                raise RuntimeError("boom")

        async def scenario():
            queue = BatchingQueue()
            sick = ContainerReplica(ModelId("model"), 0, Exploding())
            healthy = ContainerReplica(ModelId("model"), 1, NoOpContainer(output=6))
            sick_dispatcher = ReplicaDispatcher(
                sick, queue, FixedBatchSizeController(batch_size=8), max_retries=2
            )
            healthy_dispatcher = ReplicaDispatcher(
                healthy, queue, FixedBatchSizeController(batch_size=8)
            )
            await sick.start()
            await healthy.start()
            item = make_item(np.zeros(1))
            await sick_dispatcher.dispatch_batch([item])  # fails, requeues
            healthy_dispatcher.start()
            assert await asyncio.wait_for(item.future, timeout=2.0) == 6
            await healthy_dispatcher.stop()
            await sick.stop()
            await healthy.stop()

        run_async(scenario())

    def test_success_resets_consecutive_failures(self):
        async def scenario():
            replica, queue, dispatcher = build_dispatcher(NoOpContainer(output=1))
            dispatcher.consecutive_failures = 3
            await replica.start()
            await dispatcher.dispatch_batch([make_item(np.zeros(1))])
            assert dispatcher.consecutive_failures == 0
            await replica.stop()

        run_async(scenario())
