"""Tests for the RPC client / container server pair."""

import numpy as np
import pytest

from helpers import run_async
from repro.containers.base import FunctionContainer, ModelContainer
from repro.containers.noop import NoOpContainer
from repro.core.exceptions import RpcError
from repro.rpc.client import RpcClient
from repro.rpc.server import ContainerRpcServer
from repro.rpc.transport import InProcessTransport


def make_pair(container, timeout_s=5.0, use_executor=False):
    pair = InProcessTransport()
    server = ContainerRpcServer(container, pair.server_side, use_executor=use_executor)
    client = RpcClient(pair.client_side, timeout_s=timeout_s)
    return client, server


class TestPredictRoundTrip:
    def test_noop_batch(self):
        async def scenario():
            client, server = make_pair(NoOpContainer(output=9))
            server.start()
            response = await client.predict("noop:1", [np.ones(2), np.ones(2)])
            assert response.ok
            assert response.outputs == [9, 9]
            assert response.container_latency_ms >= 0.0
            await server.stop()
            await client.close()

        run_async(scenario())

    def test_function_container_echoes_sums(self):
        async def scenario():
            container = FunctionContainer(lambda xs: [float(np.sum(x)) for x in xs])
            client, server = make_pair(container)
            server.start()
            response = await client.predict("sum:1", [np.ones(3), np.full(2, 2.0)])
            assert response.outputs == [3.0, 4.0]
            await server.stop()

        run_async(scenario())

    def test_multiple_sequential_requests(self):
        async def scenario():
            client, server = make_pair(NoOpContainer(output=1))
            server.start()
            for _ in range(5):
                response = await client.predict("noop:1", [np.zeros(1)])
                assert response.ok
            assert server.requests_served == 5
            await server.stop()

        run_async(scenario())

    def test_empty_batch_rejected_client_side(self):
        async def scenario():
            client, server = make_pair(NoOpContainer())
            server.start()
            with pytest.raises(RpcError):
                await client.predict("noop:1", [])
            await server.stop()

        run_async(scenario())

    def test_executor_mode(self):
        async def scenario():
            client, server = make_pair(NoOpContainer(output=2), use_executor=True)
            server.start()
            response = await client.predict("noop:1", [np.zeros(1)] * 3)
            assert response.outputs == [2, 2, 2]
            await server.stop()

        run_async(scenario())


class TestErrorHandling:
    def test_container_exception_becomes_error_response(self):
        class FailingContainer(ModelContainer):
            def predict_batch(self, inputs):
                raise RuntimeError("model blew up")

        async def scenario():
            client, server = make_pair(FailingContainer())
            server.start()
            response = await client.predict("bad:1", [np.zeros(1)])
            assert not response.ok
            assert "model blew up" in response.error
            # The server keeps serving after a failure.
            response2 = await client.predict("bad:1", [np.zeros(1)])
            assert not response2.ok
            await server.stop()

        run_async(scenario())

    def test_wrong_output_count_raises_client_side(self):
        class BrokenContainer(ModelContainer):
            def predict_batch(self, inputs):
                return [0]  # wrong length for any batch > 1

        async def scenario():
            client, server = make_pair(BrokenContainer())
            server.start()
            with pytest.raises(RpcError):
                await client.predict("broken:1", [np.zeros(1), np.zeros(1)])
            await server.stop()

        run_async(scenario())


class TestHeartbeat:
    def test_heartbeat_when_alive(self):
        async def scenario():
            client, server = make_pair(NoOpContainer())
            server.start()
            assert await client.heartbeat() is True
            await server.stop()

        run_async(scenario())
