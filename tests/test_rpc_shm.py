"""Tests for the shared-memory ring transport and the replica transport lanes.

Everything here runs in-process (both ring endpoints on one event loop) but
exercises the full cross-process wire discipline: framed byte streams
through a real ``multiprocessing.shared_memory`` block, doorbell wakeups
over socketpairs, and frames larger than the ring streaming through in
chunks.  The module is marked ``shm`` and skips itself wholesale where
``multiprocessing.shared_memory`` is unavailable.
"""

import asyncio

import numpy as np
import pytest

from helpers import run_async
from repro.containers.noop import NoOpContainer
from repro.containers.replica import ContainerReplica, ReplicaSet
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.exceptions import ConfigurationError, ContainerError, RpcError
from repro.core.types import ModelId, Query
from repro.rpc.client import RpcClient
from repro.rpc.server import ContainerRpcServer
from repro.rpc.shm import HAS_SHARED_MEMORY, ShmRingPair

pytestmark = [
    pytest.mark.shm,
    pytest.mark.skipif(
        not HAS_SHARED_MEMORY,
        reason="multiprocessing.shared_memory unavailable on this platform",
    ),
]


class TestRingTransport:
    def test_round_trip_dict_with_ndarrays(self):
        async def scenario():
            pair = ShmRingPair()
            client, server = pair.endpoints()
            payload = {
                "request_id": 1,
                "inputs": [np.arange(6, dtype=np.float32)],
                "meta": {"k": "v"},
            }
            await client.send(payload)
            received = await server.recv()
            assert received["request_id"] == 1
            np.testing.assert_array_equal(
                received["inputs"][0], payload["inputs"][0]
            )
            assert received["inputs"][0].dtype == np.float32
            await client.close()
            await server.close()

        run_async(scenario())

    def test_many_frames_with_odd_sizes_wrap_around(self):
        async def scenario():
            # A deliberately tiny ring so frames wrap the circular buffer at
            # awkward offsets many times over.
            pair = ShmRingPair(capacity=256)
            client, server = pair.endpoints()

            async def produce():
                for i in range(50):
                    await client.send({"i": i, "pad": "x" * (i * 7 % 95)})

            async def consume():
                for i in range(50):
                    frame = await server.recv()
                    assert frame["i"] == i
                    assert frame["pad"] == "x" * (i * 7 % 95)

            await asyncio.gather(produce(), consume())
            await client.close()
            await server.close()

        run_async(scenario())

    def test_frame_larger_than_ring_streams_through(self):
        async def scenario():
            pair = ShmRingPair(capacity=1024)
            client, server = pair.endpoints()
            big = np.arange(8192, dtype=np.float64)  # 64 KiB >> 1 KiB ring

            async def produce():
                await client.send({"x": big})

            async def consume():
                return await server.recv()

            _, received = await asyncio.gather(produce(), consume())
            np.testing.assert_array_equal(received["x"], big)
            await client.close()
            await server.close()

        run_async(scenario())

    def test_recv_after_peer_close_raises(self):
        async def scenario():
            pair = ShmRingPair()
            client, server = pair.endpoints()
            await client.close()
            with pytest.raises(RpcError):
                await server.recv()
            await server.close()

        run_async(scenario())

    def test_pending_recv_wakes_on_close(self):
        async def scenario():
            pair = ShmRingPair()
            client, server = pair.endpoints()
            recv_task = asyncio.ensure_future(server.recv())
            await asyncio.sleep(0.01)  # let the recv park on the doorbell
            await client.close()
            with pytest.raises(RpcError):
                await asyncio.wait_for(recv_task, timeout=2.0)
            await server.close()

        run_async(scenario())

    def test_send_on_closed_transport_raises(self):
        async def scenario():
            pair = ShmRingPair()
            client, server = pair.endpoints()
            await client.close()
            with pytest.raises(RpcError):
                await client.send({"x": 1})
            await server.close()

        run_async(scenario())

    def test_tiny_capacity_rejected(self):
        with pytest.raises(RpcError):
            ShmRingPair(capacity=8)


class TestRpcOverSharedMemory:
    def make_pair(self, container, **kwargs):
        ring = ShmRingPair()
        server = ContainerRpcServer(container, ring.server_side)
        client = RpcClient(ring.client_side, **kwargs)
        return client, server

    def test_predict_batches(self):
        async def scenario():
            client, server = self.make_pair(NoOpContainer(output=4))
            server.start()
            response = await client.predict("noop:1", [np.zeros(3)] * 5)
            assert response.ok
            assert response.outputs == [4] * 5
            await server.stop()
            await client.close()

        run_async(scenario())

    def test_pipelined_concurrent_batches(self):
        async def scenario():
            client, server = self.make_pair(NoOpContainer(output=1))
            server.start()
            responses = await asyncio.gather(
                *(
                    client.predict("noop:1", [np.full(4, float(i))])
                    for i in range(20)
                )
            )
            assert all(r.ok for r in responses)
            assert server.requests_served == 20
            await server.stop()
            await client.close()

        run_async(scenario())

    def test_heartbeat_and_trace_propagation(self):
        async def scenario():
            client, server = self.make_pair(NoOpContainer())
            server.start()
            assert await client.heartbeat(timeout_s=2.0)
            response = await client.predict(
                "noop:1", [np.zeros(2)], trace=["trace-1"]
            )
            assert response.ok
            assert "trace-1" in tuple(response.trace)
            await server.stop()
            await client.close()

        run_async(scenario())


class TestReplicaTransportLanes:
    @pytest.mark.parametrize("transport", ["inprocess", "shm", "tcp"])
    def test_replica_round_trip_per_lane(self, transport):
        async def scenario():
            replica = ContainerReplica(
                ModelId("noop"), 0, NoOpContainer(output=2), transport=transport
            )
            await replica.start()
            response = await replica.predict_batch([np.zeros(2)] * 3)
            assert response.ok
            assert response.outputs == [2, 2, 2]
            await replica.stop()

        run_async(scenario())

    def test_unknown_transport_rejected(self):
        with pytest.raises(ContainerError):
            ContainerReplica(
                ModelId("noop"), 0, NoOpContainer(), transport="carrier-pigeon"
            )

    def test_replica_set_propagates_transport(self):
        async def scenario():
            replica_set = ReplicaSet(
                ModelId("noop"), NoOpContainer, num_replicas=2, transport="shm"
            )
            await replica_set.start()
            for replica in replica_set:
                response = await replica.predict_batch([np.zeros(1)])
                assert response.ok
            await replica_set.stop()

        run_async(scenario())

    def test_deployment_transport_validated(self):
        with pytest.raises(ConfigurationError):
            ModelDeployment(
                name="noop",
                container_factory=NoOpContainer,
                transport="smoke-signals",
            )

    def test_clipper_end_to_end_over_shm(self):
        async def scenario():
            clipper = Clipper(
                ClipperConfig(app_name="shm-app", selection_policy="single")
            )
            clipper.deploy_model(
                ModelDeployment(
                    name="noop",
                    container_factory=lambda: NoOpContainer(output=6),
                    serialize_rpc=True,
                    transport="shm",
                )
            )
            await clipper.start()
            try:
                rng = np.random.default_rng(0)
                for _ in range(10):
                    result = await clipper.predict(
                        Query(app_name="shm-app", input=rng.standard_normal(8))
                    )
                    assert result.output == 6
            finally:
                await clipper.stop()

        run_async(scenario())
