"""Overload control: admission, shed policies, circuit breakers, pressure
observability, and the 429 + ``Retry-After`` REST surface."""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, List, Sequence

import pytest

from helpers import run_async
from repro.api.http import create_server
from repro.client import AsyncClipperClient
from repro.client.client import RetryPolicy, ServiceOverloaded
from repro.containers.base import ModelContainer
from repro.containers.noop import NoOpContainer
from repro.core.clipper import Clipper
from repro.core.config import (
    BatchingConfig,
    CircuitBreakerConfig,
    ClipperConfig,
    ConfigurationError,
    ModelDeployment,
    OverloadConfig,
)
from repro.core.exceptions import OverloadError
from repro.core.frontend import QueryFrontend
from repro.core.types import Query
from repro.management.frontend import ManagementFrontend
from repro.observability.prometheus import render_prometheus
from repro.overload import AdmissionController, CircuitBreaker
from repro.overload.breaker import CLOSED, HALF_OPEN, OPEN


class FakeClock:
    """Deterministic monotonic clock for the unit tests."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# AdmissionController units
# ---------------------------------------------------------------------------


class TestAdmissionController:
    def test_token_bucket_drains_and_refills(self):
        clock = FakeClock()
        gate = AdmissionController(
            OverloadConfig(rate_limit_qps=10.0, burst=3), clock=clock
        )
        assert [gate.try_acquire() for _ in range(4)] == [True, True, True, False]
        clock.advance(0.1)  # one token refilled at 10 qps
        assert gate.try_acquire()
        assert not gate.try_acquire()

    def test_refill_caps_at_burst_capacity(self):
        clock = FakeClock()
        gate = AdmissionController(
            OverloadConfig(rate_limit_qps=100.0, burst=2), clock=clock
        )
        clock.advance(60.0)  # an hour's worth of tokens does not accumulate
        assert gate.try_acquire()
        assert gate.try_acquire()
        assert not gate.try_acquire()

    def test_concurrency_gate_blocks_and_releases(self):
        gate = AdmissionController(OverloadConfig(max_concurrency=2))
        assert gate.try_acquire()
        assert gate.try_acquire()
        assert not gate.try_acquire()
        gate.release()
        assert gate.try_acquire()
        assert gate.inflight == 2

    def test_saturated_is_non_consuming(self):
        clock = FakeClock()
        gate = AdmissionController(
            OverloadConfig(rate_limit_qps=10.0, burst=1), clock=clock
        )
        # Peeking any number of times never takes the token.
        for _ in range(5):
            assert not gate.saturated()
        assert gate.try_acquire()
        assert gate.saturated()

    def test_saturation_gauge_tracks_the_tighter_limit(self):
        clock = FakeClock()
        gate = AdmissionController(
            OverloadConfig(rate_limit_qps=10.0, burst=10, max_concurrency=4),
            clock=clock,
        )
        assert gate.saturation() == 0.0
        gate.try_acquire()  # 1/4 concurrency, 1/10 tokens
        assert gate.saturation() == pytest.approx(0.25)
        for _ in range(3):
            gate.try_acquire()
        assert gate.saturation() == 1.0

    def test_retry_after_reflects_token_starvation(self):
        clock = FakeClock()
        gate = AdmissionController(
            OverloadConfig(rate_limit_qps=2.0, burst=1, retry_after_s=9.0),
            clock=clock,
        )
        gate.try_acquire()
        # One token at 2/s is 0.5 s away.
        assert gate.retry_after_s() == pytest.approx(0.5)

    def test_retry_after_falls_back_to_configured_hint(self):
        gate = AdmissionController(
            OverloadConfig(max_concurrency=1, retry_after_s=2.5)
        )
        gate.try_acquire()
        assert gate.retry_after_s() == 2.5

    def test_force_acquire_and_state(self):
        gate = AdmissionController(OverloadConfig(rate_limit_qps=1.0, burst=1))
        gate.try_acquire()
        gate.force_acquire()
        state = gate.state()
        assert state["admitted"] == 2
        assert state["forced"] == 1
        assert state["inflight"] == 2
        assert state["shed_policy"] == "reject"


# ---------------------------------------------------------------------------
# CircuitBreaker units
# ---------------------------------------------------------------------------


def make_breaker(clock, on_transition=None, **overrides):
    defaults = dict(
        error_rate_threshold=0.5,
        window=4,
        min_samples=2,
        consecutive_timeouts=3,
        open_duration_s=1.0,
        half_open_probes=2,
    )
    defaults.update(overrides)
    return CircuitBreaker(
        CircuitBreakerConfig(**defaults), clock=clock, on_transition=on_transition
    )


class TestCircuitBreaker:
    def test_trips_on_error_rate(self):
        clock = FakeClock()
        transitions = []
        breaker = make_breaker(clock, lambda old, new: transitions.append((old, new)))
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # 1/3 failures is under the threshold
        breaker.record_failure()
        assert breaker.state == OPEN  # 2/4 >= 0.5 with >= min_samples
        assert transitions == [(CLOSED, OPEN)]
        assert not breaker.allow()

    def test_trips_on_consecutive_timeouts_before_error_rate(self):
        clock = FakeClock()
        # A huge window keeps the error-rate trigger silent; only the
        # consecutive-timeout counter can fire.
        breaker = make_breaker(
            clock, window=1000, min_samples=1000, consecutive_timeouts=3
        )
        breaker.record_failure(timeout=True)
        breaker.record_failure(timeout=True)
        assert breaker.state == CLOSED
        breaker.record_failure(timeout=True)
        assert breaker.state == OPEN

    def test_success_resets_consecutive_timeouts(self):
        clock = FakeClock()
        breaker = make_breaker(
            clock, window=1000, min_samples=1000, consecutive_timeouts=2
        )
        breaker.record_failure(timeout=True)
        breaker.record_success()
        breaker.record_failure(timeout=True)
        assert breaker.state == CLOSED

    def test_half_open_after_cooldown_and_probe_trickle(self):
        clock = FakeClock()
        breaker = make_breaker(clock, half_open_probes=2)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(1.5)  # past open_duration_s
        assert breaker.allow()  # reserves probe slot 1
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # reserves probe slot 2
        assert not breaker.allow()  # trickle: no third concurrent probe

    def test_all_probes_succeeding_closes(self):
        clock = FakeClock()
        transitions = []
        breaker = make_breaker(
            clock, lambda old, new: transitions.append((old, new)), half_open_probes=2
        )
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow() and breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN  # one probe is not enough
        breaker.record_success()
        assert breaker.state == CLOSED
        assert transitions == [(CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]

    def test_failed_probe_snaps_back_open(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()  # a fresh cool-down started
        clock.advance(1.5)
        assert breaker.allow()

    def test_abandon_returns_probe_slot(self):
        clock = FakeClock()
        breaker = make_breaker(clock, half_open_probes=1)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        assert not breaker.allow()  # the only probe slot is taken
        breaker.abandon()
        assert breaker.allow()  # and is reusable after abandon

    def test_describe(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        breaker.record_failure()
        described = breaker.describe()
        assert described["state"] == CLOSED
        assert described["error_rate"] == 1.0
        assert described["samples"] == 1


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


class TestOverloadConfigs:
    def test_shed_policy_validated(self):
        with pytest.raises(ConfigurationError):
            OverloadConfig(shed_policy="panic")

    def test_negative_limits_rejected(self):
        with pytest.raises(ConfigurationError):
            OverloadConfig(rate_limit_qps=-1.0)
        with pytest.raises(ConfigurationError):
            OverloadConfig(max_concurrency=-1)

    def test_breaker_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            CircuitBreakerConfig(error_rate_threshold=1.5)
        with pytest.raises(ConfigurationError):
            CircuitBreakerConfig(half_open_probes=0)


# ---------------------------------------------------------------------------
# End-to-end shed policies through the serving engine
# ---------------------------------------------------------------------------


class GateContainer(ModelContainer):
    """Blocks every batch on a shared event; records what it evaluated."""

    def __init__(self, gate: threading.Event) -> None:
        self.gate = gate
        self.seen: List[Any] = []

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        self.gate.wait(timeout=10.0)
        self.seen.extend(inputs)
        return [1 for _ in inputs]


class FailingContainer(ModelContainer):
    """Raises on every batch, counting how many reached it."""

    def __init__(self) -> None:
        self.calls = 0

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        self.calls += 1
        raise RuntimeError("model is sick")


def overloaded_clipper(shed_policy, default_output=None, burst=1, **config_kwargs):
    """One noop model behind a starved token bucket (no meaningful refill)."""
    clipper = Clipper(
        ClipperConfig(
            app_name="demo",
            selection_policy="single",
            latency_slo_ms=5000.0,
            default_output=default_output,
            overload=OverloadConfig(
                rate_limit_qps=0.001, burst=burst, shed_policy=shed_policy
            ),
            **config_kwargs,
        )
    )
    clipper.deploy_model(
        ModelDeployment(name="noop", container_factory=lambda: NoOpContainer(output=7))
    )
    return clipper


class TestShedPolicies:
    def test_reject_raises_overload_error_with_retry_hint(self):
        async def scenario():
            clipper = overloaded_clipper("reject")
            await clipper.start()
            try:
                first = await clipper.predict(Query(app_name="demo", input=[1.0]))
                assert first.output == 7
                with pytest.raises(OverloadError) as excinfo:
                    await clipper.predict(Query(app_name="demo", input=[2.0]))
                assert excinfo.value.http_status == 429
                assert excinfo.value.retry_after_s > 0
                assert excinfo.value.detail["retry_after_s"] > 0
                counters = clipper.metrics.snapshot().counters
                assert counters['overload.shed{policy="reject"}'] == 1
            finally:
                await clipper.stop()

        run_async(scenario())

    def test_cache_hits_bypass_admission_entirely(self):
        async def scenario():
            clipper = overloaded_clipper("reject")
            await clipper.start()
            try:
                await clipper.predict(Query(app_name="demo", input=[1.0]))
                # The bucket is empty, but repeats of the cached input never
                # consult the admission gate.
                for _ in range(10):
                    result = await clipper.predict(
                        Query(app_name="demo", input=[1.0])
                    )
                    assert result.from_cache
            finally:
                await clipper.stop()

        run_async(scenario())

    def test_degrade_answers_with_default_output(self):
        async def scenario():
            clipper = overloaded_clipper("degrade", default_output=0)
            await clipper.start()
            try:
                first = await clipper.predict(Query(app_name="demo", input=[1.0]))
                assert not first.default_used
                shed = await clipper.predict(Query(app_name="demo", input=[2.0]))
                assert shed.default_used
                assert shed.output == 0
                assert shed.models_missing == ("noop:1",)
                counters = clipper.metrics.snapshot().counters
                assert counters['overload.shed{policy="degrade"}'] == 1
            finally:
                await clipper.stop()

        run_async(scenario())

    def test_degrade_without_default_falls_back_to_reject(self):
        async def scenario():
            clipper = overloaded_clipper("degrade")  # no default output
            await clipper.start()
            try:
                await clipper.predict(Query(app_name="demo", input=[1.0]))
                with pytest.raises(OverloadError):
                    await clipper.predict(Query(app_name="demo", input=[2.0]))
            finally:
                await clipper.stop()

        run_async(scenario())

    def test_drop_oldest_evicts_queued_query_for_the_new_one(self):
        async def scenario():
            gate = threading.Event()
            container = GateContainer(gate)
            clipper = Clipper(
                ClipperConfig(
                    app_name="demo",
                    selection_policy="single",
                    latency_slo_ms=5000.0,
                    default_output=0,
                    overload=OverloadConfig(
                        rate_limit_qps=0.001, burst=2, shed_policy="drop-oldest"
                    ),
                )
            )
            clipper.deploy_model(
                ModelDeployment(
                    name="gated",
                    container_factory=lambda: container,
                    # Serial dispatch: while q1's batch blocks in the
                    # container, q2 stays *in the queue* where drop-oldest
                    # can find it (pipeline_window=2 would prefetch it).
                    batching=BatchingConfig(pipeline_window=1),
                )
            )
            await clipper.start()
            try:
                loop = asyncio.get_event_loop()
                # q1 is admitted and pulled into a batch that blocks on the
                # gate; q2 is admitted and waits in the queue.
                t1 = loop.create_task(
                    clipper.predict(Query(app_name="demo", input=[1.0]))
                )
                await asyncio.sleep(0.1)
                t2 = loop.create_task(
                    clipper.predict(Query(app_name="demo", input=[2.0]))
                )
                await asyncio.sleep(0.1)
                # q3 finds the bucket empty; drop-oldest evicts q2 from the
                # queue and force-admits q3 in its place.
                t3 = loop.create_task(
                    clipper.predict(Query(app_name="demo", input=[3.0]))
                )
                await asyncio.sleep(0.1)
                gate.set()
                r1, r2, r3 = await asyncio.gather(t1, t2, t3)
                assert r1.output == 1 and not r1.default_used
                assert r3.output == 1 and not r3.default_used
                # The victim renders like a straggler: default output.
                assert r2.default_used
                # q2's input never reached the container.
                assert [2.0] not in container.seen
                counters = clipper.metrics.snapshot().counters
                assert counters['overload.shed{policy="drop-oldest"}'] == 1
                assert clipper.overload_state()["admission"]["forced"] == 1
            finally:
                gate.set()
                await clipper.stop()

        run_async(scenario())


class TestCircuitBreakerEndToEnd:
    def test_breaker_trips_and_fast_fails_to_default(self):
        async def scenario():
            container = FailingContainer()
            clipper = Clipper(
                ClipperConfig(
                    app_name="demo",
                    selection_policy="single",
                    latency_slo_ms=1000.0,
                    default_output=0,
                    breaker=CircuitBreakerConfig(
                        error_rate_threshold=0.5,
                        window=4,
                        min_samples=2,
                        open_duration_s=60.0,
                    ),
                )
            )
            clipper.deploy_model(
                ModelDeployment(name="sick", container_factory=lambda: container)
            )
            await clipper.start()
            try:
                # Two failing queries accumulate the error window and trip
                # the breaker...
                for i in range(2):
                    result = await clipper.predict(
                        Query(app_name="demo", input=[float(i)])
                    )
                    assert result.default_used
                assert clipper.overload_state()["breakers"]["sick:1"]["state"] == "open"
                calls_at_trip = container.calls
                # ... after which queries fast-fail to the default without
                # ever touching the container.
                for i in range(5):
                    result = await clipper.predict(
                        Query(app_name="demo", input=[float(10 + i)])
                    )
                    assert result.default_used
                assert container.calls == calls_at_trip
                counters = clipper.metrics.snapshot().counters
                assert counters["overload.breaker_fastfail"] == 5
                assert counters['breaker.transitions{state="open"}'] == 1
            finally:
                await clipper.stop()

        run_async(scenario())

    def test_per_deployment_breaker_config_overrides_app_default(self):
        clipper = Clipper(
            ClipperConfig(
                app_name="demo",
                selection_policy="single",
                breaker=CircuitBreakerConfig(window=100),
            )
        )
        clipper.deploy_model(
            ModelDeployment(
                name="special",
                container_factory=NoOpContainer,
                circuit_breaker=CircuitBreakerConfig(window=7),
            )
        )
        clipper.deploy_model(
            ModelDeployment(name="plain", container_factory=NoOpContainer)
        )
        assert clipper._breakers["special:1"].config.window == 7
        assert clipper._breakers["plain:1"].config.window == 100

    def test_undeploy_drops_the_breaker(self):
        async def scenario():
            clipper = Clipper(
                ClipperConfig(
                    app_name="demo",
                    selection_policy="single",
                    breaker=CircuitBreakerConfig(),
                )
            )
            clipper.deploy_model(
                ModelDeployment(name="a", container_factory=NoOpContainer)
            )
            clipper.deploy_model(
                ModelDeployment(name="b", container_factory=NoOpContainer)
            )
            await clipper.start()
            try:
                assert set(clipper._breakers) == {"a:1", "b:1"}
                await clipper.undeploy_model("b:1")
                assert set(clipper._breakers) == {"a:1"}
            finally:
                await clipper.stop()

        run_async(scenario())


# ---------------------------------------------------------------------------
# Pressure observability
# ---------------------------------------------------------------------------


class TestPressureObservability:
    def test_shed_counters_and_gauges_in_prometheus_exposition(self):
        async def scenario():
            clipper = overloaded_clipper("reject")
            await clipper.start()
            try:
                await clipper.predict(Query(app_name="demo", input=[1.0]))
                with pytest.raises(OverloadError):
                    await clipper.predict(Query(app_name="demo", input=[2.0]))
            finally:
                await clipper.stop()
            return render_prometheus({"demo": clipper.metrics})

        text = run_async(scenario())
        assert 'clipper_overload_shed_total{app="demo",policy="reject"} 1' in text
        assert "clipper_overload_saturation" in text
        assert 'clipper_queue_saturation{app="demo",model="noop:1"}' in text
        assert 'clipper_queue_depth{app="demo",model="noop:1"}' in text

    def test_shed_and_breaker_flip_emit_trace_events(self):
        async def scenario():
            container = FailingContainer()
            clipper = Clipper(
                ClipperConfig(
                    app_name="demo",
                    selection_policy="single",
                    default_output=0,
                    overload=OverloadConfig(
                        rate_limit_qps=0.001, burst=2, shed_policy="reject"
                    ),
                    breaker=CircuitBreakerConfig(min_samples=2, window=4),
                )
            )
            clipper.deploy_model(
                ModelDeployment(name="sick", container_factory=lambda: container)
            )
            await clipper.start()
            try:
                await clipper.predict(Query(app_name="demo", input=[1.0]))
                await clipper.predict(Query(app_name="demo", input=[2.0]))
                with pytest.raises(OverloadError):
                    await clipper.predict(Query(app_name="demo", input=[3.0]))
            finally:
                await clipper.stop()
            registry = clipper.tracer.registry
            names = []
            for summary in registry.recent(component="overload", limit=50):
                record = registry.get(summary["trace_id"])
                if record is not None:
                    names.extend(span[0] for span in record.spans)
            return names

        names = run_async(scenario())
        assert "breaker.transition" in names
        assert "overload.shed" in names

    def test_management_describe_reports_overload_state(self):
        async def scenario():
            clipper = overloaded_clipper("reject")
            admin = ManagementFrontend(monitor_health=False, manage_canaries=False)
            admin.register_application(clipper)
            await clipper.start()
            try:
                described = admin.describe("demo")
            finally:
                await clipper.stop()
            return described

        described = run_async(scenario())
        overload = described["overload"]
        assert overload["admission"]["shed_policy"] == "reject"
        assert "noop:1" in overload["queues"]
        assert overload["queues"]["noop:1"]["max_depth"] == 0
        assert overload["breakers"] == {}

    def test_overload_state_without_admission_control(self):
        clipper = Clipper(ClipperConfig(app_name="demo", selection_policy="single"))
        clipper.deploy_model(
            ModelDeployment(name="noop", container_factory=NoOpContainer)
        )
        state = clipper.overload_state()
        assert state["admission"] is None
        assert state["breakers"] == {}
        assert state["queues"]["noop:1"]["saturation"] == 0.0


# ---------------------------------------------------------------------------
# The REST surface: 429 + Retry-After
# ---------------------------------------------------------------------------


class TestOverloadOverHttp:
    def test_shed_request_is_429_with_retry_after_header(self):
        async def scenario():
            clipper = overloaded_clipper("reject")
            frontend = QueryFrontend()
            frontend.register_application(clipper)
            server = create_server(query=frontend)
            async with server:
                no_retry = RetryPolicy(max_attempts=1)
                async with AsyncClipperClient(
                    "127.0.0.1", server.port, retry_policy=no_retry
                ) as client:
                    first = await client.predict("demo", [1.0])
                    assert first.output == 7
                    with pytest.raises(ServiceOverloaded) as excinfo:
                        await client.predict("demo", [2.0])
                    assert excinfo.value.status == 429
                    assert excinfo.value.detail["retry_after_s"] > 0

                # Raw exchange: the Retry-After header itself.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                body = b'{"input": [3.0]}'
                writer.write(
                    b"POST /api/v1/demo/predict HTTP/1.1\r\n"
                    b"Host: x\r\nContent-Type: application/json\r\n"
                    b"Content-Length: %d\r\nConnection: close\r\n\r\n%b"
                    % (len(body), body)
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                return raw

        raw = run_async(scenario())
        head = raw.split(b"\r\n\r\n", 1)[0].decode("latin-1")
        assert "HTTP/1.1 429 Too Many Requests" in head
        assert "Retry-After:" in head
        retry_after = next(
            line.split(":", 1)[1].strip()
            for line in head.split("\r\n")
            if line.lower().startswith("retry-after:")
        )
        assert int(retry_after) >= 1
