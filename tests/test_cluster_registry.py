"""Tests for the on-disk worker registry (repro.cluster.registry)."""

from __future__ import annotations

import os
import time

import pytest

from repro.cluster.registry import (
    WORKERS_SUBDIR,
    WorkerAnnouncement,
    WorkerRegistry,
)


def make_announcement(worker_id="w0", port=9000, **overrides):
    fields = dict(
        worker_id=worker_id,
        host="hostA",
        pid=1234,
        tcp_host="127.0.0.1",
        tcp_port=port,
        shm_supported=True,
    )
    fields.update(overrides)
    return WorkerAnnouncement(**fields)


class TestAnnouncementRecord:
    def test_round_trip(self):
        announcement = make_announcement(models=["m:1", "n:2"])
        restored = WorkerAnnouncement.from_record(announcement.to_record())
        assert restored == announcement

    def test_age_and_same_host(self):
        announcement = make_announcement(heartbeat_at=100.0)
        assert announcement.age_s(now=103.5) == pytest.approx(3.5)
        assert announcement.same_host_as("hostA")
        assert not announcement.same_host_as("hostB")


class TestRegistry:
    def test_announce_and_read_back(self, tmp_path):
        registry = WorkerRegistry(str(tmp_path))
        registry.announce(make_announcement("w0"))
        registry.announce(make_announcement("w1", port=9001))
        workers = registry.workers()
        assert sorted(workers) == ["w0", "w1"]
        assert workers["w1"].tcp_port == 9001
        # announce() stamped liveness and start times.
        assert workers["w0"].heartbeat_at > 0
        assert workers["w0"].started_at > 0
        assert registry.worker("w0").worker_id == "w0"
        assert registry.worker("missing") is None

    def test_heartbeat_refreshes_in_place(self, tmp_path):
        registry = WorkerRegistry(str(tmp_path))
        announcement = make_announcement("w0")
        registry.announce(announcement)
        first = registry.worker("w0").heartbeat_at
        time.sleep(0.01)
        registry.announce(announcement)
        assert registry.worker("w0").heartbeat_at > first
        assert len(registry.workers()) == 1

    def test_live_workers_ages_out_stale_records(self, tmp_path):
        registry = WorkerRegistry(str(tmp_path))
        registry.announce(make_announcement("fresh"))
        stale = make_announcement("stale", port=9001)
        registry.announce(stale)
        # Backdate the stale worker's heartbeat past any reasonable TTL.
        stale.heartbeat_at = time.time() - 60.0
        stale.started_at = stale.heartbeat_at
        path = os.path.join(str(tmp_path), WORKERS_SUBDIR, "stale.json")
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(stale.to_record(), handle)
        live = registry.live_workers(ttl_s=5.0)
        assert [w.worker_id for w in live] == ["fresh"]
        # Both still visible to the raw scan.
        assert sorted(registry.workers()) == ["fresh", "stale"]

    def test_withdraw_removes_the_record(self, tmp_path):
        registry = WorkerRegistry(str(tmp_path))
        registry.announce(make_announcement("w0"))
        registry.withdraw("w0")
        assert registry.workers() == {}
        registry.withdraw("w0")  # idempotent

    def test_unparseable_records_are_skipped(self, tmp_path):
        registry = WorkerRegistry(str(tmp_path))
        registry.announce(make_announcement("good"))
        junk = os.path.join(str(tmp_path), WORKERS_SUBDIR, "junk.json")
        with open(junk, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert sorted(registry.workers()) == ["good"]

    def test_invalid_worker_ids_rejected(self, tmp_path):
        registry = WorkerRegistry(str(tmp_path))
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                registry.announce(make_announcement(bad))

    def test_live_workers_sorted_by_id(self, tmp_path):
        registry = WorkerRegistry(str(tmp_path))
        for worker_id in ("b", "c", "a"):
            registry.announce(make_announcement(worker_id))
        assert [w.worker_id for w in registry.live_workers()] == ["a", "b", "c"]
