"""Crash-injection tier: kill -9 a serving Clipper, restart on the same WAL.

Opt-in (``pytest --chaos``): these tests spawn subprocesses, deliver
``SIGKILL`` at named fault points, and assert the post-restart invariants
the durability tier promises — routing table and canary state intact,
zero failed predictions after recovery.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.containers.chaos import FlakyContainer
from repro.containers.noop import NoOpContainer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.types import Query
from repro.management.frontend import ManagementFrontend
from repro.state.durable import DurableKeyValueStore

pytestmark = pytest.mark.chaos

HERE = os.path.dirname(os.path.abspath(__file__))
CHILD = os.path.join(HERE, "child_serving.py")
SRC = os.path.abspath(os.path.join(HERE, "..", "..", "src"))


def noop_factory():
    return NoOpContainer(output=1)


FACTORIES = {"noop": noop_factory}


def make_config():
    return ClipperConfig(
        app_name="app", latency_slo_ms=250.0, selection_policy="single"
    )


def spawn(mode, directory):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, CHILD, mode, str(directory)],
        stdout=subprocess.PIPE,
        text=True,
        bufsize=1,
        env=env,
    )


def read_until(proc, done, timeout=60.0):
    """Collect the child's stdout lines until ``done(lines)`` holds."""
    lines = []

    def pump():
        for raw in proc.stdout:
            lines.append(raw.strip())
            if done(lines):
                return

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    thread.join(timeout)
    assert done(lines), (
        f"child never reached the kill point (exit={proc.poll()}); "
        f"output so far: {lines}"
    )
    return lines


class TestKillNineMidRollout:
    def test_kill9_mid_canary_ramp_restores_routing_and_serves(self, tmp_path):
        """The acceptance scenario: SIGKILL mid-ramp, restart, zero failures."""
        proc = spawn("serve", tmp_path)
        try:
            lines = read_until(
                proc,
                lambda ls: sum(1 for l in ls if l.startswith("WEIGHT")) >= 2,
            )
        finally:
            if proc.poll() is None:
                os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        last_weight = float(
            [l for l in lines if l.startswith("WEIGHT")][-1].split()[1]
        )

        async def recover():
            store = DurableKeyValueStore(str(tmp_path), fsync="never")
            mgmt = ManagementFrontend(
                store=store, monitor_health=False, manage_canaries=True
            )
            clipper = Clipper(make_config())
            report = await mgmt.restore_application(clipper, factories=FACTORIES)
            await mgmt.start()
            failed = 0
            outputs = []
            try:
                for i in range(200):
                    try:
                        prediction = await clipper.predict(
                            Query(
                                app_name="app",
                                input=np.zeros(4),
                                user_id=f"user-{i % 64}",
                            )
                        )
                        outputs.append(prediction.output)
                    except Exception:
                        failed += 1
            finally:
                await mgmt.stop()
                store.close()
            return clipper, report, failed, outputs

        clipper, report, failed, outputs = asyncio.run(recover())
        assert report.complete
        assert report.versions_restored == 2
        assert report.routes_restored == 1
        assert report.canaries_resumed == 1
        routing = clipper.routing.describe()["m"]
        assert routing["stable"] == "m:1"
        assert routing["canary"] == "m:2"
        weight = dict((k, w) for k, w in routing["arms"])["m:2"]
        # The child printed WEIGHT only after the registry acknowledged the
        # step, so the WAL holds at least that weight — and at most one
        # further step the kill raced with.
        assert last_weight - 1e-9 <= weight <= min(last_weight + 0.1, 0.9) + 1e-9
        # Zero failed predictions after recovery.
        assert failed == 0
        assert len(outputs) == 200
        assert set(outputs) == {1}

    def test_kill9_at_canary_start_restores_initial_weight(self, tmp_path):
        """SIGKILL right after the canary begins, before any ramp step."""
        proc = spawn("serve", tmp_path)
        try:
            read_until(proc, lambda ls: "CANARY" in ls)
        finally:
            if proc.poll() is None:
                os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)

        async def recover():
            store = DurableKeyValueStore(str(tmp_path), fsync="never")
            mgmt = ManagementFrontend(
                store=store, monitor_health=False, manage_canaries=False
            )
            clipper = Clipper(make_config())
            report = await mgmt.restore_application(clipper, factories=FACTORIES)
            store.close()
            return clipper, report

        clipper, report = asyncio.run(recover())
        assert report.complete
        routing = clipper.routing.describe()["m"]
        assert routing["canary"] == "m:2"
        weight = dict((k, w) for k, w in routing["arms"])["m:2"]
        # At most the first ramp step (0.1 -> 0.2) raced with the kill.
        assert 0.1 - 1e-9 <= weight <= 0.2 + 1e-9


class TestTornFinalRecord:
    def test_crash_mid_append_drops_only_the_torn_record(self, tmp_path):
        proc = spawn("torn", tmp_path)
        assert proc.wait(timeout=60) == 1  # the child os._exits mid-append
        proc.stdout.close()

        store = DurableKeyValueStore(str(tmp_path), fsync="never")
        assert {k: store.get("ns", k) for k in store.keys("ns")} == {
            f"k{i}": i for i in range(5)
        }
        assert not store.contains("ns", "doomed")
        assert store.recovery.wal.truncated
        assert not store.recovery.clean
        # The repaired log accepts and persists new records.
        store.put("ns", "after", "ok")
        store.close()
        reopened = DurableKeyValueStore(str(tmp_path), fsync="never")
        assert reopened.get("ns", "after") == "ok"
        assert reopened.recovery.clean
        reopened.close()


class TestFaultyReplicaAfterRecovery:
    def test_flaky_replica_is_absorbed_after_recovery(self, tmp_path):
        """A replica that dies post-restart must not surface failures.

        After recovery one of the two restored replicas is a
        :class:`FlakyContainer` that dies mid-serving; batch retries mask
        the in-flight failures and the health monitor restarts it (the
        factory then yields a healthy instance).
        """
        calls = {"n": 0}

        def fleet_factory():
            calls["n"] += 1
            if calls["n"] == 1:
                return FlakyContainer(healthy_predictions=3, output=1)
            return NoOpContainer(output=1)

        factories = {"fleet": fleet_factory}

        async def lifecycle():
            store = DurableKeyValueStore(str(tmp_path), fsync="never")
            mgmt = ManagementFrontend(
                store=store, monitor_health=False, manage_canaries=False
            )
            clipper = Clipper(make_config())
            clipper.deploy_model(
                ModelDeployment(
                    "m",
                    fleet_factory,
                    factory_name="fleet",
                    num_replicas=2,
                    max_batch_retries=8,
                )
            )
            mgmt.register_application(clipper)
            await mgmt.start()
            await mgmt.stop()
            # kill -9: the durable store gets no clean shutdown.

        async def recover():
            calls["n"] = 0  # fresh process: replica 1 lands on a bad node
            store = DurableKeyValueStore(str(tmp_path), fsync="never")
            mgmt = ManagementFrontend(
                store=store,
                monitor_health=True,
                health_kwargs={
                    "probe_interval_s": 0.02,
                    "failure_threshold": 1,
                    "restart_backoff_s": 0.01,
                },
                manage_canaries=False,
            )
            clipper = Clipper(make_config())
            report = await mgmt.restore_application(clipper, factories=factories)
            await mgmt.start()
            failed = 0
            served = 0
            restarts = clipper.metrics.counter("health.restarts")

            async def one(index):
                nonlocal failed, served
                try:
                    prediction = await clipper.predict(
                        Query(
                            app_name="app",
                            input=np.zeros(4),
                            user_id=f"user-{index % 64}",
                        )
                    )
                    assert prediction.output == 1
                    served += 1
                except Exception:
                    failed += 1

            try:
                # Burst concurrent traffic (so both replicas serve) until the
                # flaky one has died and the monitor has replaced it.
                for round_index in range(200):
                    if restarts.value >= 1:
                        break
                    await asyncio.gather(
                        *(one(round_index * 16 + j) for j in range(16))
                    )
                    await asyncio.sleep(0.02)  # a monitor sweep between bursts
                # Post-restart traffic must be clean too.
                await asyncio.gather(*(one(j) for j in range(32)))
            finally:
                await mgmt.stop()
                store.close()
            return clipper, report, failed, served

        asyncio.run(lifecycle())
        clipper, report, failed, served = asyncio.run(recover())
        assert report.complete
        assert failed == 0
        assert served >= 48  # at least one burst plus the post-restart batch
        assert clipper.metrics.counter("health.restarts").value >= 1
