"""Subprocess child for the chaos tier: a Clipper that expects to die.

Launched by ``tests/chaos/test_crash_recovery.py`` with a mode and a WAL
directory.  The child prints one-line progress markers on stdout so the
parent test knows exactly which named fault point it has reached before
delivering ``SIGKILL`` (or before the child ``os._exit``s itself):

``serve <dir>``
    Open a durable store in ``<dir>``, deploy ``m:1``, register the
    application, deploy ``m:2`` and start a canary, then serve
    predictions forever while ramping the canary weight.  Prints
    ``CANARY`` once the rollout is in flight and ``WEIGHT <w>`` after
    every acknowledged ramp step.  Never exits on its own.

``torn <dir>``
    Commit a handful of records, then install a WAL fault hook that
    half-writes the next frame — the torn-final-record fault point — and
    die with ``os._exit`` so nothing gets a chance to clean up.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..", "src")
)

import asyncio  # noqa: E402

import numpy as np  # noqa: E402

from repro.containers.noop import NoOpContainer  # noqa: E402
from repro.core.clipper import Clipper  # noqa: E402
from repro.core.config import ClipperConfig, ModelDeployment  # noqa: E402
from repro.core.types import Query  # noqa: E402
from repro.management.frontend import ManagementFrontend  # noqa: E402
from repro.state.durable import DurableKeyValueStore  # noqa: E402


def noop_factory():
    return NoOpContainer(output=1)


async def serve(directory: str) -> None:
    store = DurableKeyValueStore(directory, fsync="never")
    mgmt = ManagementFrontend(
        store=store, monitor_health=False, manage_canaries=False
    )
    clipper = Clipper(
        ClipperConfig(
            app_name="app", latency_slo_ms=250.0, selection_policy="single"
        )
    )
    clipper.deploy_model(ModelDeployment("m", noop_factory, factory_name="noop"))
    mgmt.register_application(clipper)
    await mgmt.start()
    await mgmt.deploy_model(
        "app",
        ModelDeployment(
            "m", noop_factory, version=2, factory_name="noop", num_replicas=2
        ),
    )
    weight = 0.1
    await mgmt.start_canary("app", "m", 2, weight=weight)
    print("CANARY", flush=True)
    served = 0
    while True:
        served += 1
        await clipper.predict(
            Query(app_name="app", input=np.zeros(4), user_id=f"user-{served % 64}")
        )
        if served % 10 == 0 and weight < 0.89:
            weight = round(weight + 0.1, 2)
            await mgmt.adjust_canary("app", "m", weight)
            # Printed only after the registry acknowledged the new weight,
            # so the parent may assume the WAL holds at least this step.
            print(f"WEIGHT {weight:.2f}", flush=True)


def torn(directory: str) -> None:
    store = DurableKeyValueStore(directory, fsync="never")
    for i in range(5):
        store.put("ns", f"k{i}", i)
    # The next append writes only the first half of its frame: a torn
    # final record, exactly what a crash mid-write leaves behind.
    store.wal.fault_hook = lambda data: data[: len(data) // 2]
    store.put("ns", "doomed", "half-written")
    print("TORN", flush=True)
    os._exit(1)


def main() -> None:
    mode, directory = sys.argv[1], sys.argv[2]
    if mode == "serve":
        asyncio.run(serve(directory))
    elif mode == "torn":
        torn(directory)
    else:
        raise SystemExit(f"unknown chaos child mode: {mode}")


if __name__ == "__main__":
    main()
