"""Chaos tier: SIGKILL a worker daemon mid-traffic, zero failed predictions.

Two real worker daemon processes serve replicas of one model for an
in-process ingress-side Clipper.  Mid-traffic one worker is killed with
``kill -9`` — no drain, no goodbye.  The shared-memory lane's doorbell
hangup (or the tcp reset) fails the in-flight batch, batch retries mask the
failure, the health monitor quarantines the dead replica and re-places it on
the surviving worker, and the client-visible failure count must stay zero.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.cluster.ingress import make_replica_set_factory
from repro.cluster.registry import WorkerRegistry
from repro.cluster.remote import WorkerPlacer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.types import Query
from repro.management.frontend import ManagementFrontend

pytestmark = pytest.mark.chaos

HERE = os.path.dirname(os.path.abspath(__file__))
SRC = os.path.abspath(os.path.join(HERE, "..", "..", "src"))


def spawn_worker(cluster_dir, worker_id):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cluster.worker",
            "--cluster-dir",
            str(cluster_dir),
            "--worker-id",
            worker_id,
            "--ttl",
            "1.0",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestWorkerKillNine:
    def test_sigkill_worker_mid_traffic_zero_failed_predictions(self, tmp_path):
        workers = [spawn_worker(tmp_path, f"worker-{i}") for i in range(2)]
        try:
            registry = WorkerRegistry(str(tmp_path))
            deadline = time.monotonic() + 30.0
            while len(registry.live_workers(ttl_s=1.0)) < 2:
                assert time.monotonic() < deadline, "workers never became live"
                time.sleep(0.05)

            async def scenario():
                placer = WorkerPlacer(registry, ttl_s=1.0)
                clipper = Clipper(
                    ClipperConfig(
                        app_name="app",
                        latency_slo_ms=1000.0,
                        selection_policy="single",
                    )
                )
                clipper.set_replica_set_factory(make_replica_set_factory(placer))
                clipper.deploy_model(
                    ModelDeployment(
                        name="m",
                        container_factory=lambda: None,  # never called: remote
                        factory_name="echo",
                        num_replicas=2,
                        max_batch_retries=8,
                    )
                )
                mgmt = ManagementFrontend(
                    monitor_health=True,
                    health_kwargs={
                        "probe_interval_s": 0.05,
                        "failure_threshold": 1,
                        "restart_backoff_s": 0.02,
                    },
                    manage_canaries=False,
                )
                mgmt.register_application(clipper)
                await mgmt.start()

                failed = 0
                served = 0
                restarts = clipper.metrics.counter("health.restarts")

                async def one(index):
                    nonlocal failed, served
                    try:
                        prediction = await clipper.predict(
                            Query(
                                app_name="app",
                                input=np.zeros(4),
                                user_id=f"user-{index % 64}",
                            )
                        )
                        assert prediction.output == 1
                        served += 1
                    except Exception:
                        failed += 1

                killed = False
                try:
                    for round_index in range(400):
                        await asyncio.gather(
                            *(one(round_index * 8 + j) for j in range(8))
                        )
                        if round_index == 5:
                            # Mid-traffic: kill -9, no drain, no withdraw.
                            workers[1].kill()
                            killed = True
                        if killed and restarts.value >= 1 and round_index > 20:
                            break
                        await asyncio.sleep(0.01)
                    # Post-recovery traffic must be clean too.
                    await asyncio.gather(*(one(j) for j in range(32)))
                finally:
                    await mgmt.stop()
                return failed, served, restarts.value, clipper

            failed, served, restart_count, clipper = asyncio.run(scenario())
            assert failed == 0, f"{failed} failed predictions leaked to clients"
            assert served >= 80
            # The monitor replaced the dead replica ...
            assert restart_count >= 1
            # ... and recovery migrated it onto the surviving worker: every
            # replica of the model now lives on worker-0.
            record = clipper.model_records()[0]
            homes = {replica.worker.worker_id for replica in record.replica_set}
            assert homes == {"worker-0"}
            # The killed worker ages out of the registry (no heartbeat).
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                live = {w.worker_id for w in registry.live_workers(ttl_s=1.0)}
                if live == {"worker-0"}:
                    break
                time.sleep(0.1)
            assert live == {"worker-0"}
        finally:
            for proc in workers:
                if proc.poll() is None:
                    proc.send_signal(signal.SIGTERM)
            for proc in workers:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
