"""Tests for health-driven replica quarantine and recovery."""

import asyncio

import numpy as np

from helpers import run_async
from repro.containers.chaos import KillableContainer, TrackingFactory
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.types import Query
from repro.management.health import HealthMonitor
from repro.management.records import REPLICA_HEALTHY, REPLICA_QUARANTINED


def build_clipper(factory, num_replicas=2, **config_kwargs):
    clipper = Clipper(
        ClipperConfig(
            app_name="health-app",
            selection_policy="single",
            latency_slo_ms=500.0,
            **config_kwargs,
        )
    )
    clipper.deploy_model(
        ModelDeployment(name="m", container_factory=factory, num_replicas=num_replicas)
    )
    return clipper


def fast_monitor(clipper, **overrides):
    kwargs = dict(
        probe_interval_s=0.01,
        failure_threshold=2,
        probe_timeout_s=0.5,
        restart_backoff_s=0.01,
    )
    kwargs.update(overrides)
    return HealthMonitor(clipper, **kwargs)


async def wait_until(predicate, timeout_s=5.0, interval_s=0.01):
    deadline = asyncio.get_running_loop().time() + timeout_s
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval_s)
    return predicate()


class TestProbing:
    def test_healthy_replicas_stay_healthy(self):
        async def scenario():
            factory = TrackingFactory(lambda: KillableContainer(output=1))
            clipper = build_clipper(factory)
            await clipper.start()
            monitor = fast_monitor(clipper)
            await monitor.probe_once()
            await monitor.probe_once()
            statuses = monitor.status()
            assert len(statuses) == 2
            assert all(s.state == REPLICA_HEALTHY for s in statuses.values())
            assert all(s.probes == 2 for s in statuses.values())
            assert clipper.metrics.counter("health.quarantines").value == 0
            await clipper.stop()

        run_async(scenario())

    def test_killed_container_fails_probe(self):
        async def scenario():
            factory = TrackingFactory(lambda: KillableContainer(output=1))
            clipper = build_clipper(factory, num_replicas=1)
            await clipper.start()
            monitor = fast_monitor(clipper)
            factory.instances[0].kill()
            await monitor.probe_once()
            status = next(iter(monitor.status().values()))
            assert status.consecutive_failures == 1
            assert clipper.metrics.counter("health.probe_failures").value == 1
            await clipper.stop()

        run_async(scenario())

    def test_latency_ceiling_counts_as_failure(self):
        async def scenario():
            factory = TrackingFactory(lambda: KillableContainer(output=1))
            clipper = build_clipper(factory, num_replicas=1)
            await clipper.start()
            record = clipper.model_record("m")
            replica = record.replica_set.replicas[0]

            async def slow_check(timeout_s=None):
                await asyncio.sleep(0.02)
                return True

            replica.check_health = slow_check
            monitor = fast_monitor(clipper, latency_ceiling_ms=1.0, failure_threshold=99)
            await monitor.probe_once()
            status = next(iter(monitor.status().values()))
            assert status.failures == 1
            assert status.last_probe_latency_ms > 1.0
            await clipper.stop()

        run_async(scenario())

    def test_dispatcher_failures_are_a_passive_signal(self):
        async def scenario():
            factory = TrackingFactory(lambda: KillableContainer(output=1))
            clipper = build_clipper(factory)
            await clipper.start()
            monitor = fast_monitor(clipper)
            record = clipper.model_record("m")
            # Pretend the dispatcher watched its replica fail batch after batch.
            record.dispatchers[0].consecutive_failures = 5
            await monitor.probe_once()
            quarantined = monitor.replicas_in_state(REPLICA_QUARANTINED)
            assert len(quarantined) == 1
            await monitor.stop()  # cancels the pending recovery task
            await clipper.stop()

        run_async(scenario())


class TestRecovery:
    def test_kill_quarantine_restart_recover(self):
        async def scenario():
            factory = TrackingFactory(lambda: KillableContainer(output=7))
            clipper = build_clipper(factory, num_replicas=2)
            await clipper.start()
            monitor = fast_monitor(clipper)
            await monitor.start()

            victim = factory.instances[0]
            victim.kill()
            recovered = await wait_until(
                lambda: clipper.metrics.counter("health.recoveries").value >= 1
            )
            assert recovered
            statuses = monitor.status()
            assert all(s.state == REPLICA_HEALTHY for s in statuses.values())
            assert clipper.metrics.counter("health.quarantines").value >= 1
            assert clipper.metrics.counter("health.restarts").value >= 1
            # The factory built replacements beyond the initial two replicas.
            assert len(factory.instances) >= 3

            # The restarted replica serves traffic again.
            prediction = await clipper.predict(
                Query(app_name="health-app", input=np.zeros(2))
            )
            assert prediction.output == 7
            await monitor.stop()
            await clipper.stop()

        run_async(scenario())

    def test_persistently_sick_factory_backs_off_until_healthy(self):
        async def scenario():
            state = {"healthy": True}

            def make_container():
                container = KillableContainer(output=1)
                if not state["healthy"]:
                    container.kill()
                return container

            factory = TrackingFactory(make_container)
            clipper = build_clipper(factory, num_replicas=1)
            await clipper.start()
            monitor = fast_monitor(clipper, max_backoff_s=0.05)
            await monitor.start()

            # Kill the replica AND make every replacement stillborn.
            state["healthy"] = False
            factory.instances[0].kill()
            multiple_restarts = await wait_until(
                lambda: clipper.metrics.counter("health.restarts").value >= 2
            )
            assert multiple_restarts
            assert clipper.metrics.counter("health.recoveries").value == 0

            # Heal the factory: the next restart attempt recovers the replica.
            state["healthy"] = True
            recovered = await wait_until(
                lambda: clipper.metrics.counter("health.recoveries").value >= 1
            )
            assert recovered
            prediction = await clipper.predict(
                Query(app_name="health-app", input=np.zeros(2))
            )
            assert prediction.output == 1
            await monitor.stop()
            await clipper.stop()

        run_async(scenario())

    def test_traffic_survives_replica_kill_without_failures(self):
        async def scenario():
            factory = TrackingFactory(lambda: KillableContainer(output=3))
            clipper = build_clipper(factory, num_replicas=3)
            await clipper.start()
            monitor = fast_monitor(clipper)
            await monitor.start()

            failures = []
            results = []
            stop_flag = {"stop": False}

            async def load():
                i = 0
                while not stop_flag["stop"]:
                    i += 1
                    try:
                        prediction = await clipper.predict(
                            Query(app_name="health-app", input=np.array([float(i)]))
                        )
                        results.append(prediction.output)
                    except Exception as exc:
                        failures.append(exc)
                    await asyncio.sleep(0.001)

            load_task = asyncio.get_running_loop().create_task(load())
            await asyncio.sleep(0.05)
            factory.instances[1].kill()
            await wait_until(
                lambda: clipper.metrics.counter("health.recoveries").value >= 1
            )
            await asyncio.sleep(0.05)
            stop_flag["stop"] = True
            await load_task

            assert failures == []
            assert results and all(output == 3 for output in results)
            await monitor.stop()
            await clipper.stop()

        run_async(scenario())
