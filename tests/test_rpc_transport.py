"""Tests for the in-process and TCP RPC transports."""

import numpy as np
import pytest

from helpers import run_async
from repro.core.exceptions import RpcError
from repro.rpc.transport import InProcessTransport, TcpListener, TcpTransport


class TestInProcessTransport:
    def test_round_trip_both_directions(self):
        async def scenario():
            pair = InProcessTransport()
            client, server = pair.endpoints()
            await client.send({"type": 1, "request_id": 1, "x": [1, 2, 3]})
            received = await server.recv()
            assert received["x"] == [1, 2, 3]
            await server.send({"type": 2, "request_id": 1, "y": "ok"})
            reply = await client.recv()
            assert reply["y"] == "ok"

        run_async(scenario())

    def test_numpy_payload_round_trips_through_serializer(self):
        async def scenario():
            pair = InProcessTransport(serialize_messages=True)
            client, server = pair.endpoints()
            await client.send({"type": 1, "request_id": 0, "array": np.arange(5.0)})
            received = await server.recv()
            np.testing.assert_array_equal(received["array"], np.arange(5.0))

        run_async(scenario())

    def test_close_wakes_peer(self):
        async def scenario():
            pair = InProcessTransport()
            client, server = pair.endpoints()
            await client.close()
            with pytest.raises(RpcError):
                await server.recv()
            assert client.closed

        run_async(scenario())

    def test_send_after_close_raises(self):
        async def scenario():
            pair = InProcessTransport()
            client, _ = pair.endpoints()
            await client.close()
            with pytest.raises(RpcError):
                await client.send({"type": 1, "request_id": 0})

        run_async(scenario())

    def test_unserialized_mode_passes_objects(self):
        async def scenario():
            pair = InProcessTransport(serialize_messages=False)
            client, server = pair.endpoints()
            marker = object()
            await client.send({"type": 1, "request_id": 0, "obj": marker})
            received = await server.recv()
            assert received["obj"] is marker

        run_async(scenario())


class TestTcpTransport:
    def test_round_trip_over_real_sockets(self):
        async def scenario():
            listener = TcpListener()
            await listener.start()
            client = await TcpTransport.connect("127.0.0.1", listener.port)
            server = await listener.accept()
            await client.send({"type": 1, "request_id": 5, "array": np.ones(8)})
            received = await server.recv()
            assert received["request_id"] == 5
            np.testing.assert_array_equal(received["array"], np.ones(8))
            await server.send({"type": 2, "request_id": 5, "outputs": [1] * 8})
            reply = await client.recv()
            assert reply["outputs"] == [1] * 8
            await client.close()
            await server.close()
            await listener.close()

        run_async(scenario())

    def test_recv_after_peer_disconnect_raises(self):
        async def scenario():
            listener = TcpListener()
            await listener.start()
            client = await TcpTransport.connect("127.0.0.1", listener.port)
            server = await listener.accept()
            await client.close()
            with pytest.raises(RpcError):
                await server.recv()
            await server.close()
            await listener.close()

        run_async(scenario())

    def test_accept_before_start_raises(self):
        async def scenario():
            listener = TcpListener()
            with pytest.raises(RpcError):
                await listener.accept()

        run_async(scenario())
