"""Tests for RPC message types and wire framing."""

import numpy as np
import pytest

from repro.core.exceptions import SerializationError
from repro.rpc.protocol import (
    MessageType,
    RpcRequest,
    RpcResponse,
    decode_message,
    encode_message,
    message_type,
)


class TestRpcRequest:
    def test_payload_round_trip(self):
        request = RpcRequest(
            request_id=7,
            model_name="svm:1",
            inputs=[np.ones(3), np.zeros(3)],
            metadata={"priority": 1},
        )
        decoded = RpcRequest.from_payload(request.to_payload())
        assert decoded.request_id == 7
        assert decoded.model_name == "svm:1"
        assert len(decoded.inputs) == 2
        assert decoded.metadata == {"priority": 1}

    def test_payload_type_tag(self):
        request = RpcRequest(request_id=1, model_name="m", inputs=[1])
        assert message_type(request.to_payload()) == MessageType.PREDICT


class TestRpcResponse:
    def test_ok_response(self):
        response = RpcResponse(request_id=3, outputs=[1, 2, 3], container_latency_ms=1.5)
        assert response.ok
        decoded = RpcResponse.from_payload(response.to_payload())
        assert decoded.outputs == [1, 2, 3]
        assert decoded.container_latency_ms == pytest.approx(1.5)

    def test_error_response(self):
        response = RpcResponse(request_id=3, outputs=[], error="boom")
        assert not response.ok
        decoded = RpcResponse.from_payload(response.to_payload())
        assert decoded.error == "boom"


class TestFraming:
    def test_encode_decode_round_trip(self):
        payload = RpcRequest(request_id=1, model_name="m", inputs=[np.arange(4.0)]).to_payload()
        frame = encode_message(payload)
        decoded, rest = decode_message(frame)
        assert rest == b""
        assert decoded["model_name"] == "m"
        np.testing.assert_array_equal(decoded["inputs"][0], np.arange(4.0))

    def test_decode_returns_remaining_bytes(self):
        frame1 = encode_message({"type": int(MessageType.HEARTBEAT), "request_id": 1})
        frame2 = encode_message({"type": int(MessageType.HEARTBEAT), "request_id": 2})
        decoded, rest = decode_message(frame1 + frame2)
        assert decoded["request_id"] == 1
        decoded2, rest2 = decode_message(rest)
        assert decoded2["request_id"] == 2
        assert rest2 == b""

    def test_incomplete_header_raises(self):
        with pytest.raises(SerializationError):
            decode_message(b"\x01\x00")

    def test_incomplete_body_raises(self):
        frame = encode_message({"type": 3, "request_id": 1})
        with pytest.raises(SerializationError):
            decode_message(frame[:-1])

    def test_payload_must_be_an_envelope(self):
        from repro.rpc.serialization import serialize
        import struct

        body = serialize([1, 2, 3])
        frame = struct.pack("<I", len(body)) + body
        with pytest.raises(SerializationError):
            decode_message(frame)

    def test_message_type_of_invalid_payload(self):
        with pytest.raises(SerializationError):
            message_type({"type": 999})
