"""Tests for typed application schemas, the wire codec and the error model."""

import numpy as np
import pytest

from repro.api.errors import error_payload
from repro.api.schema import ApplicationSchema, check_output_value, json_safe
from repro.core.config import ClipperConfig
from repro.core.exceptions import (
    BadRequestError,
    ConfigurationError,
    DuplicateApplicationError,
    ManagementError,
    PredictionTimeoutError,
    UnknownApplicationError,
    ValidationError,
)


class TestInputValidation:
    def test_doubles_coerce_list_to_float64(self):
        schema = ApplicationSchema("app", input_type="doubles")
        out = schema.validate_input([1, 2.5, 3])
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.float64
        assert out.flags.c_contiguous

    def test_floats_coerce_to_float32(self):
        schema = ApplicationSchema("app", input_type="floats")
        assert schema.validate_input([1.0, 2.0]).dtype == np.float32

    def test_ints_accept_int_arrays_only(self):
        schema = ApplicationSchema("app", input_type="ints")
        assert schema.validate_input([1, 2, 3]).dtype == np.int64
        with pytest.raises(ValidationError):
            schema.validate_input([1.5, 2.5])

    def test_input_shape_enforced(self):
        schema = ApplicationSchema("app", input_type="doubles", input_shape=(3,))
        assert schema.validate_input([1.0, 2.0, 3.0]).shape == (3,)
        with pytest.raises(ValidationError) as excinfo:
            schema.validate_input([1.0, 2.0])
        assert excinfo.value.detail["expected_shape"] == [3]
        assert excinfo.value.detail["got_shape"] == [2]

    def test_numeric_types_reject_strings_and_ragged_input(self):
        schema = ApplicationSchema("app", input_type="doubles")
        with pytest.raises(ValidationError):
            schema.validate_input("hello")
        with pytest.raises(ValidationError):
            schema.validate_input([[1.0], [2.0, 3.0]])

    def test_bytes_and_strings(self):
        b = ApplicationSchema("app", input_type="bytes")
        assert b.validate_input(bytearray(b"xyz")) == b"xyz"
        with pytest.raises(ValidationError):
            b.validate_input("not bytes")
        s = ApplicationSchema("app", input_type="strings")
        assert s.validate_input("hi") == "hi"
        with pytest.raises(ValidationError):
            s.validate_input(b"hi")

    def test_untyped_schema_passes_through(self):
        schema = ApplicationSchema("app")
        value = {"anything": [1, 2]}
        assert schema.validate_input(value) is value


class TestWireCodec:
    def test_bytes_wire_decode_is_base64(self):
        schema = ApplicationSchema("app", input_type="bytes")
        assert schema.decode_wire_input("aGVsbG8=") == b"hello"
        with pytest.raises(ValidationError):
            schema.decode_wire_input("!!! not base64 !!!")
        with pytest.raises(ValidationError):
            schema.decode_wire_input([1, 2, 3])

    def test_numeric_wire_values_pass_through_to_validation(self):
        schema = ApplicationSchema("app", input_type="doubles")
        assert schema.decode_wire_input([1.0, 2.0]) == [1.0, 2.0]

    def test_json_safe_handles_numpy_bytes_and_nan(self):
        assert json_safe(np.float64(1.5)) == 1.5
        assert json_safe(np.array([1, 2])) == [1, 2]
        assert json_safe(b"\x00\x01") == "AAE="
        assert json_safe(float("nan")) == "nan"
        assert json_safe({"k": (np.int32(3),)}) == {"k": [3]}

    def test_schema_to_dict_is_json_friendly(self):
        schema = ApplicationSchema(
            "app",
            input_type="doubles",
            input_shape=(4,),
            output_type="ints",
            default_output=np.int64(0),
        )
        d = schema.to_dict()
        assert d["input_shape"] == [4]
        assert d["default_output"] == 0


class TestConfigContract:
    def test_config_derives_schema(self):
        config = ClipperConfig(
            app_name="digits",
            input_type="doubles",
            input_shape=(196,),
            output_type="ints",
            default_output=0,
        )
        schema = ApplicationSchema.from_config(config)
        assert schema.input_type == "doubles"
        assert schema.input_shape == (196,)
        assert schema.default_output == 0

    def test_unknown_input_type_rejected(self):
        with pytest.raises(ConfigurationError):
            ClipperConfig(input_type="tensors")

    def test_input_shape_requires_input_type(self):
        with pytest.raises(ConfigurationError):
            ClipperConfig(input_shape=(4,))
        with pytest.raises(ConfigurationError):
            ClipperConfig(input_type="strings", input_shape=(4,))
        with pytest.raises(ConfigurationError):
            ClipperConfig(input_type="doubles", input_shape=(0,))

    def test_default_output_validated_against_output_type(self):
        # A contradiction between the default and the declared output type
        # surfaces at construction, not at the first SLO miss.
        with pytest.raises(ConfigurationError):
            ClipperConfig(output_type="ints", default_output="zero")
        with pytest.raises(ConfigurationError):
            ClipperConfig(output_type="strings", default_output=0)
        with pytest.raises(ConfigurationError):
            ClipperConfig(output_type="ints", default_output=True)  # bool ≠ int
        ClipperConfig(output_type="ints", default_output=3)
        ClipperConfig(output_type="doubles", default_output=1)  # ints widen
        ClipperConfig(output_type="bytes", default_output=b"\x00")

    def test_check_output_value_unknown_type(self):
        with pytest.raises(ConfigurationError):
            check_output_value("tensors", 1)


class TestErrorModel:
    def test_every_edge_error_carries_code_and_status(self):
        assert UnknownApplicationError.http_status == 404
        assert DuplicateApplicationError.http_status == 409
        assert BadRequestError.http_status == 400
        assert ValidationError.http_status == 422
        assert PredictionTimeoutError.http_status == 504
        # The edge exceptions stay catchable as ManagementError.
        assert issubclass(UnknownApplicationError, ManagementError)

    def test_error_payload_structure(self):
        exc = ValidationError("bad shape", detail={"expected_shape": [4]})
        payload = error_payload(exc)
        assert payload == {
            "error": {
                "code": "invalid_input",
                "status": 422,
                "message": "bad shape",
                "detail": {"expected_shape": [4]},
            }
        }

    def test_non_library_errors_render_opaque(self):
        payload = error_payload(RuntimeError("secret traceback"))
        assert payload["error"]["code"] == "internal"
        assert "secret" not in payload["error"]["message"]
