"""Tests for the Exp4 ensemble selection policy."""

import numpy as np
import pytest

from repro.core.exceptions import SelectionPolicyError
from repro.core.types import ModelId
from repro.selection.exp4 import Exp4Policy

MODELS = [ModelId("a"), ModelId("b"), ModelId("c"), ModelId("d"), ModelId("e")]


class TestExp4Basics:
    def test_select_returns_all_models(self):
        policy = Exp4Policy()
        state = policy.init(MODELS)
        assert sorted(policy.select(state, None)) == sorted(str(m) for m in MODELS)

    def test_combine_majority_vote_with_uniform_weights(self):
        policy = Exp4Policy()
        state = policy.init(MODELS)
        predictions = {"a:1": 1, "b:1": 1, "c:1": 1, "d:1": 0, "e:1": 0}
        output, confidence = policy.combine(state, None, predictions)
        assert output == 1
        assert confidence == pytest.approx(3 / 5)

    def test_confidence_counts_missing_models(self):
        policy = Exp4Policy(count_missing_in_confidence=True)
        state = policy.init(MODELS)
        predictions = {"a:1": 1, "b:1": 1}  # three models missing (stragglers)
        output, confidence = policy.combine(state, None, predictions)
        assert output == 1
        assert confidence == pytest.approx(2 / 5)

    def test_confidence_over_available_when_configured(self):
        policy = Exp4Policy(count_missing_in_confidence=False)
        state = policy.init(MODELS)
        predictions = {"a:1": 1, "b:1": 1}
        _, confidence = policy.combine(state, None, predictions)
        assert confidence == pytest.approx(1.0)

    def test_combine_empty_raises(self):
        policy = Exp4Policy()
        state = policy.init(MODELS)
        with pytest.raises(SelectionPolicyError):
            policy.combine(state, None, {})

    def test_invalid_eta(self):
        with pytest.raises(SelectionPolicyError):
            Exp4Policy(eta=0)


class TestExp4Learning:
    def test_down_weights_consistently_wrong_model(self):
        policy = Exp4Policy(eta=0.3)
        state = policy.init(MODELS)
        for _ in range(100):
            predictions = {str(m): 1 for m in MODELS}
            predictions["e:1"] = 0  # model e is always wrong
            state = policy.observe(state, None, 1, predictions)
        assert state["weights"]["e:1"] < min(
            state["weights"][k] for k in state["weights"] if k != "e:1"
        )

    def test_weighted_vote_overrides_majority_after_learning(self):
        """Once weights diverge, a confident minority of good models wins."""
        policy = Exp4Policy(eta=0.5)
        state = policy.init(MODELS)
        # Models a and b are always right; c, d, e always wrong.
        for _ in range(200):
            predictions = {"a:1": 1, "b:1": 1, "c:1": 0, "d:1": 0, "e:1": 0}
            state = policy.observe(state, None, 1, predictions)
        output, confidence = policy.combine(
            state, None, {"a:1": 1, "b:1": 1, "c:1": 0, "d:1": 0, "e:1": 0}
        )
        assert output == 1
        assert confidence == pytest.approx(2 / 5)

    def test_ensemble_beats_best_single_model_on_decorrelated_errors(self):
        """The Exp4 motivation: combining decorrelated models reduces error."""
        rng = np.random.default_rng(0)
        policy = Exp4Policy(eta=0.2)
        state = policy.init(MODELS)
        n = 3000
        accuracy = 0.7
        ensemble_errors = 0
        single_errors = 0
        for _ in range(n):
            truth = int(rng.integers(0, 2))
            predictions = {
                str(m): truth if rng.random() < accuracy else 1 - truth for m in MODELS
            }
            output, _ = policy.combine(state, None, predictions)
            ensemble_errors += int(output != truth)
            single_errors += int(predictions["a:1"] != truth)
            state = policy.observe(state, None, truth, predictions)
        assert ensemble_errors < single_errors

    def test_missing_predictions_leave_weights_unchanged(self):
        policy = Exp4Policy(eta=0.5)
        state = policy.init(MODELS)
        before = dict(state["weights"])
        state = policy.observe(state, None, 1, {"a:1": 1})  # only one model answered
        ratio_before = before["b:1"] / before["c:1"]
        ratio_after = state["weights"]["b:1"] / state["weights"]["c:1"]
        assert ratio_after == pytest.approx(ratio_before)

    def test_model_weights_normalized_view(self):
        policy = Exp4Policy()
        state = policy.init(MODELS)
        weights = policy.model_weights(state)
        assert sum(weights.values()) == pytest.approx(1.0)
        assert all(w == pytest.approx(0.2) for w in weights.values())

    def test_weights_stay_finite_under_long_streams(self):
        policy = Exp4Policy(eta=1.0)
        state = policy.init(MODELS)
        for _ in range(2000):
            state = policy.observe(state, None, 1, {str(m): 0 for m in MODELS})
        assert all(np.isfinite(w) and w > 0 for w in state["weights"].values())
