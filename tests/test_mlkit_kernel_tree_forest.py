"""Tests for the kernel SVM, decision tree and random forest."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.mlkit import DecisionTreeClassifier, KernelSVM, RandomForestClassifier


@pytest.fixture(scope="module")
def nonlinear_dataset():
    """A dataset with a nonlinear decision boundary (XOR-like in 2-D)."""
    rng = np.random.default_rng(0)
    n = 600
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    X = X + rng.normal(0, 0.05, size=X.shape)
    return X[:450], y[:450], X[450:], y[450:]


@pytest.fixture(scope="module")
def blob_dataset():
    return make_classification(
        n_samples=400, n_features=12, n_classes=3, difficulty=0.4, random_state=3
    )


class TestKernelSVM:
    def test_solves_xor_problem(self, nonlinear_dataset):
        X_train, y_train, X_test, y_test = nonlinear_dataset
        model = KernelSVM(random_state=0).fit(X_train, y_train)
        accuracy = model.score(X_test, y_test)
        assert accuracy > 0.9

    def test_support_vector_cap_respected(self, blob_dataset):
        ds = blob_dataset
        model = KernelSVM(max_support_vectors=50, random_state=0).fit(ds.X_train, ds.y_train)
        assert model.n_support_ == 50

    def test_predict_proba_valid(self, blob_dataset):
        ds = blob_dataset
        model = KernelSVM(max_support_vectors=100, random_state=0).fit(ds.X_train, ds.y_train)
        proba = model.predict_proba(ds.X_test[:10])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_feature_mismatch_raises(self, blob_dataset):
        ds = blob_dataset
        model = KernelSVM(max_support_vectors=50, random_state=0).fit(ds.X_train, ds.y_train)
        with pytest.raises(ValueError):
            model.predict(np.zeros((1, 99)))

    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            KernelSVM(regularization=0)
        with pytest.raises(ValueError):
            KernelSVM(max_support_vectors=1)

    def test_inference_cost_scales_with_support_set(self, blob_dataset):
        """The property Figure 3 relies on: more support vectors => slower queries."""
        import time

        ds = blob_dataset
        small = KernelSVM(max_support_vectors=40, random_state=0).fit(ds.X_train, ds.y_train)
        large = KernelSVM(max_support_vectors=300, random_state=0).fit(ds.X_train, ds.y_train)
        X = np.repeat(ds.X_test, 20, axis=0)

        def timed(model):
            start = time.perf_counter()
            model.predict(X)
            return time.perf_counter() - start

        timed(small)  # warm up
        assert timed(large) > timed(small)


class TestDecisionTree:
    def test_solves_xor_problem(self, nonlinear_dataset):
        X_train, y_train, X_test, y_test = nonlinear_dataset
        model = DecisionTreeClassifier(max_depth=6, max_features=2, random_state=0).fit(
            X_train, y_train
        )
        assert model.score(X_test, y_test) > 0.85

    def test_depth_respects_limit(self, blob_dataset):
        ds = blob_dataset
        model = DecisionTreeClassifier(max_depth=3, random_state=0).fit(ds.X_train, ds.y_train)
        assert model.depth() <= 3

    def test_pure_leaf_short_circuits(self):
        X = np.array([[0.0], [0.1], [0.2], [0.9], [1.0], [1.1]])
        y = np.array([0, 0, 0, 1, 1, 1])
        model = DecisionTreeClassifier(max_depth=5, max_features=1, random_state=0).fit(X, y)
        np.testing.assert_array_equal(model.predict(X), y)

    def test_predict_proba_valid(self, blob_dataset):
        ds = blob_dataset
        model = DecisionTreeClassifier(random_state=0).fit(ds.X_train, ds.y_train)
        proba = model.predict_proba(ds.X_test)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)


class TestRandomForest:
    def test_beats_single_shallow_tree(self, nonlinear_dataset):
        X_train, y_train, X_test, y_test = nonlinear_dataset
        tree = DecisionTreeClassifier(max_depth=2, max_features=1, random_state=0).fit(
            X_train, y_train
        )
        forest = RandomForestClassifier(
            n_estimators=15, max_depth=6, max_features=2, random_state=0
        ).fit(X_train, y_train)
        assert forest.score(X_test, y_test) >= tree.score(X_test, y_test)

    def test_number_of_estimators(self, blob_dataset):
        ds = blob_dataset
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(
            ds.X_train, ds.y_train
        )
        assert len(forest.estimators_) == 5

    def test_probabilities_are_averages_in_valid_range(self, blob_dataset):
        ds = blob_dataset
        forest = RandomForestClassifier(n_estimators=4, random_state=0).fit(
            ds.X_train, ds.y_train
        )
        proba = forest.predict_proba(ds.X_test)
        assert np.all(proba >= 0) and np.all(proba <= 1)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_deterministic_given_seed(self, blob_dataset):
        ds = blob_dataset
        f1 = RandomForestClassifier(n_estimators=3, random_state=5).fit(ds.X_train, ds.y_train)
        f2 = RandomForestClassifier(n_estimators=3, random_state=5).fit(ds.X_train, ds.y_train)
        np.testing.assert_array_equal(f1.predict(ds.X_test), f2.predict(ds.X_test))

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)
