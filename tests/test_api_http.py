"""End-to-end tests of the REST edge: real sockets, server + client SDK.

Covers the frontend error paths over HTTP — unknown application (404),
duplicate registration (409), malformed body (400), input-type mismatch
(422), the SLO-miss default-output response shape, and the partial-start
rollback that must leave no listener bound — plus keep-alive reuse, content
negotiation, the sync client, and the admin verb set.
"""

import asyncio
import json

import numpy as np
import pytest

from helpers import run_async
from repro.api.http import HttpApiServer, create_server
from repro.api.routes import RouteTable
from repro.client import (
    AsyncAdminClient,
    AsyncClipperClient,
    ClipperClient,
    InvalidInput,
    MalformedRequest,
    ManagementConflict,
    RouteNotFound,
    UnknownApplication,
)
from repro.containers.noop import NoOpContainer
from repro.containers.overhead import SimulatedLatencyContainer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.exceptions import ClipperError, DuplicateApplicationError
from repro.core.frontend import QueryFrontend
from repro.management.frontend import ManagementFrontend


def make_app(name="demo", output=1, **config_kwargs):
    clipper = Clipper(
        ClipperConfig(app_name=name, selection_policy="single", **config_kwargs)
    )
    clipper.deploy_model(
        ModelDeployment(
            name="noop", container_factory=lambda: NoOpContainer(output=output)
        )
    )
    return clipper


def make_server(clipper, admin=None, factories=None):
    query = QueryFrontend()
    query.register_application(clipper)
    return create_server(query=query, admin=admin, factories=factories)


async def raw_request(port, data: bytes) -> bytes:
    """Push raw bytes at the server and return everything it answers."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(data)
    await writer.drain()
    response = await reader.read()
    writer.close()
    return response


class TestErrorPathsOverHttp:
    def test_unknown_application_is_404(self):
        async def scenario():
            server = make_server(make_app())
            async with server:
                async with AsyncClipperClient("127.0.0.1", server.port) as client:
                    with pytest.raises(UnknownApplication) as excinfo:
                        await client.predict("ghost", [0.0])
                    assert excinfo.value.status == 404
                    assert excinfo.value.code == "unknown_application"
                    assert excinfo.value.detail["registered"] == ["demo"]

        run_async(scenario())

    def test_duplicate_registration_is_conflict_on_both_surfaces(self):
        # In-process: the shared host raises the typed 409 error...
        frontend = QueryFrontend()
        frontend.register_application(make_app())
        with pytest.raises(DuplicateApplicationError) as excinfo:
            frontend.register_application(make_app())
        assert excinfo.value.http_status == 409

        # ... and over HTTP the same conflict discipline applies to a
        # duplicate model-version deployment through the admin API.
        async def scenario():
            clipper = make_app()
            admin = ManagementFrontend(monitor_health=False, manage_canaries=False)
            admin.register_application(clipper)
            server = make_server(
                clipper, admin=admin, factories={"noop": NoOpContainer}
            )
            async with server:
                async with AsyncAdminClient("127.0.0.1", server.port) as adm:
                    with pytest.raises(ManagementConflict) as excinfo:
                        await adm.deploy("demo", "noop", factory="noop", version=1)
                    assert excinfo.value.status == 409

        run_async(scenario())

    def test_malformed_body_is_400(self):
        async def scenario():
            server = make_server(make_app())
            async with server:
                body = b"{this is not json"
                response = await raw_request(
                    server.port,
                    b"POST /api/v1/demo/predict HTTP/1.1\r\n"
                    b"Host: t\r\nContent-Type: application/json\r\n"
                    b"Content-Length: %d\r\nConnection: close\r\n\r\n%b"
                    % (len(body), body),
                )
                head, _, payload = response.partition(b"\r\n\r\n")
                assert b"400 Bad Request" in head
                error = json.loads(payload)["error"]
                assert error["code"] == "malformed_request"
                assert error["status"] == 400

        run_async(scenario())

    def test_missing_input_field_is_400(self):
        async def scenario():
            server = make_server(make_app())
            async with server:
                async with AsyncClipperClient("127.0.0.1", server.port) as client:
                    with pytest.raises(MalformedRequest) as excinfo:
                        await client._call(
                            "POST", "/api/v1/demo/predict", {"user_id": "u"}
                        )
                    assert "input" in excinfo.value.message

        run_async(scenario())

    def test_input_type_mismatch_is_422(self):
        async def scenario():
            server = make_server(
                make_app(input_type="doubles", input_shape=(4,))
            )
            async with server:
                async with AsyncClipperClient("127.0.0.1", server.port) as client:
                    with pytest.raises(InvalidInput) as excinfo:
                        await client.predict("demo", "not a vector")
                    assert excinfo.value.status == 422
                    with pytest.raises(InvalidInput) as excinfo:
                        await client.predict("demo", [1.0, 2.0])  # wrong shape
                    assert excinfo.value.detail["expected_shape"] == [4]

        run_async(scenario())

    def test_slo_miss_renders_default_output_shape(self):
        async def scenario():
            clipper = Clipper(
                ClipperConfig(
                    app_name="demo",
                    selection_policy="single",
                    latency_slo_ms=30.0,
                    default_output=-1,
                    output_type="ints",
                )
            )
            clipper.deploy_model(
                ModelDeployment(
                    name="slow",
                    container_factory=lambda: SimulatedLatencyContainer(
                        base_latency_ms=300.0, default_output=0, random_state=0
                    ),
                )
            )
            server = make_server(clipper)
            async with server:
                async with AsyncClipperClient("127.0.0.1", server.port) as client:
                    result = await client.predict("demo", [0.0])
                    # 200 with the declared default — not an error response.
                    assert result.default_used is True
                    assert result.output == -1
                    assert result.confidence == 0.0
                    assert result.models_missing == ["slow:1"]
                    assert result.models_used == []

        run_async(scenario())

    def test_partial_start_rollback_leaves_no_listener_bound(self):
        async def scenario():
            healthy = make_app("aaa-healthy")
            query = QueryFrontend()
            query.register_application(healthy)
            # An application with no deployed models refuses to start.
            query.register_application(
                Clipper(ClipperConfig(app_name="zzz-broken"))
            )
            server = create_server(query=query)
            with pytest.raises(ClipperError):
                await server.start()
            assert server.port is None
            assert not server.is_serving
            # The application started before the failure was stopped again.
            assert healthy._started is False

        run_async(scenario())

    def test_unknown_route_and_wrong_method(self):
        async def scenario():
            server = make_server(make_app())
            async with server:
                async with AsyncClipperClient("127.0.0.1", server.port) as client:
                    with pytest.raises(RouteNotFound):
                        await client._call("GET", "/api/v1/nope/nope/nope")
                    with pytest.raises(MalformedRequest) as excinfo:
                        await client._call("GET", "/api/v1/demo/predict")
                    assert excinfo.value.status == 405

        run_async(scenario())

    def test_unsupported_content_type_is_415(self):
        async def scenario():
            server = make_server(make_app())
            async with server:
                body = b"\x00\x01binary"
                response = await raw_request(
                    server.port,
                    b"POST /api/v1/demo/predict HTTP/1.1\r\n"
                    b"Host: t\r\nContent-Type: application/octet-stream\r\n"
                    b"Content-Length: %d\r\nConnection: close\r\n\r\n%b"
                    % (len(body), body),
                )
                assert b"415" in response.split(b"\r\n", 1)[0]
                error = json.loads(response.partition(b"\r\n\r\n")[2])["error"]
                assert error["code"] == "unsupported_media_type"

        run_async(scenario())


class TestServingOverHttp:
    def test_predict_update_and_cache_flag(self):
        async def scenario():
            server = make_server(
                make_app(output=7, input_type="doubles"),
            )
            async with server:
                async with AsyncClipperClient("127.0.0.1", server.port) as client:
                    first = await client.predict("demo", [1.0, 2.0])
                    again = await client.predict("demo", [1.0, 2.0])
                    assert first.output == 7 and again.output == 7
                    assert again.from_cache is True
                    await client.update("demo", [1.0, 2.0], label=7)
                    health = await client.health()
                    assert health["applications"] == ["demo"]
                    schema = await client.schema("demo")
                    assert schema["input_type"] == "doubles"

        run_async(scenario())

    def test_keep_alive_connection_is_reused(self):
        async def scenario():
            server = make_server(make_app())
            async with server:
                async with AsyncClipperClient("127.0.0.1", server.port) as client:
                    await client.predict("demo", [0.0])
                    writer_before = client._conn._writer
                    await client.predict("demo", [0.0])
                    assert client._conn._writer is writer_before

        run_async(scenario())

    def test_user_id_and_slo_override_cross_the_wire(self):
        async def scenario():
            server = make_server(make_app())
            async with server:
                async with AsyncClipperClient("127.0.0.1", server.port) as client:
                    result = await client.predict(
                        "demo", [0.0], user_id="alice", latency_slo_ms=500.0
                    )
                    assert result.output == 1

        run_async(scenario())

    def test_wrong_label_type_is_422(self):
        async def scenario():
            server = make_server(
                make_app(output_type="ints", default_output=0)
            )
            async with server:
                async with AsyncClipperClient("127.0.0.1", server.port) as client:
                    await client.predict("demo", [0.0])
                    with pytest.raises(InvalidInput) as excinfo:
                        await client.update("demo", [0.0], label="seven")
                    assert excinfo.value.detail == {
                        "expected": "ints",
                        "got": "str",
                    }
                    await client.update("demo", [0.0], label=7)  # conforming

        run_async(scenario())

    def test_application_registered_after_create_server_is_managed(self):
        # The server holds the frontend's live mapping, not a snapshot: an
        # application registered between create_server() and start() is
        # started by the server and servable immediately.
        async def scenario():
            query = QueryFrontend()
            query.register_application(make_app("first"))
            server = create_server(query=query)
            late = make_app("late", output=9)
            query.register_application(late)
            async with server:
                assert late._started is True
                async with AsyncClipperClient("127.0.0.1", server.port) as client:
                    result = await client.predict("late", [0.0])
                    assert result.output == 9
            assert late._started is False

        run_async(scenario())

    def test_bytes_application_round_trips_base64(self):
        async def scenario():
            clipper = Clipper(
                ClipperConfig(
                    app_name="blobs", selection_policy="single", input_type="bytes"
                )
            )
            clipper.deploy_model(
                ModelDeployment(
                    name="echo-len",
                    container_factory=lambda: NoOpContainer(output=3),
                )
            )
            server = make_server(clipper)
            async with server:
                async with AsyncClipperClient("127.0.0.1", server.port) as client:
                    result = await client.predict("blobs", b"\x00\x01\x02")
                    assert result.output == 3

        run_async(scenario())

    def test_sync_client(self):
        # The realistic shape for the blocking client: the server lives on
        # its own event loop in a background thread, the client blocks in
        # the test thread.
        import threading

        loop = asyncio.new_event_loop()
        box = {}
        started = threading.Event()

        def serve():
            asyncio.set_event_loop(loop)
            server = make_server(make_app(output=5))
            loop.run_until_complete(server.start())
            box["server"] = server
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert started.wait(10.0)
        server = box["server"]
        try:
            with ClipperClient("127.0.0.1", server.port) as client:
                result = client.predict("demo", [0.0])
                assert result.output == 5
                client.update("demo", [0.0], label=5)
                assert [a["app_name"] for a in client.applications()] == ["demo"]
        finally:
            asyncio.run_coroutine_threadsafe(server.stop(), loop).result(10.0)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(10.0)
            loop.close()

    def test_numpy_inputs_encode_client_side(self):
        async def scenario():
            server = make_server(make_app(input_type="doubles", input_shape=(4,)))
            async with server:
                async with AsyncClipperClient("127.0.0.1", server.port) as client:
                    result = await client.predict("demo", np.zeros(4))
                    assert result.output == 1

        run_async(scenario())


class TestAdminOverHttp:
    def test_full_operator_lifecycle(self):
        async def scenario():
            clipper = make_app(output=1)
            admin_frontend = ManagementFrontend(
                monitor_health=False, manage_canaries=False
            )
            admin_frontend.register_application(clipper)
            server = make_server(
                clipper,
                admin=admin_frontend,
                factories={"noop-v2": lambda: NoOpContainer(output=2)},
            )
            async with server:
                adm = AsyncAdminClient("127.0.0.1", server.port)
                try:
                    deployed = await adm.deploy(
                        "demo", "noop", factory="noop-v2", version=2
                    )
                    assert deployed == {"model": "noop:2", "serving": False}

                    split = await adm.start_canary("demo", "noop", 2, weight=0.25)
                    assert split["split"]["canary"] == "noop:2"
                    split = await adm.adjust_canary("demo", "noop", weight=0.5)
                    promoted = await adm.promote("demo", "noop")
                    assert promoted["model"] == "noop:2"

                    scaled = await adm.scale("demo", "noop", 2)
                    assert scaled["num_replicas"] == 2

                    models = await adm.models("demo")
                    assert models["noop"]["active_version"] == 2
                    info = await adm.model_info("demo", "noop")
                    assert info["app_schema"]["app_name"] == "demo"

                    health = await adm.health("demo")
                    assert health["started"] is True
                    assert health["serving"] == ["noop:2"]

                    metrics = await adm.metrics("demo")
                    assert "predict.count" in metrics["counters"]

                    routing = await adm.routing("demo")
                    assert routing["noop"]["stable"] == "noop:2"

                    rolled = await adm.rollback("demo", "noop")
                    assert rolled["model"] == "noop:1"
                finally:
                    await adm.close()

        run_async(scenario())

    def test_unknown_factory_is_400(self):
        async def scenario():
            clipper = make_app()
            admin_frontend = ManagementFrontend(
                monitor_health=False, manage_canaries=False
            )
            admin_frontend.register_application(clipper)
            server = make_server(clipper, admin=admin_frontend, factories={})
            async with server:
                async with AsyncAdminClient("127.0.0.1", server.port) as adm:
                    with pytest.raises(MalformedRequest) as excinfo:
                        await adm.deploy("demo", "noop", factory="ghost", version=2)
                    assert excinfo.value.detail == {"registered": []}

        run_async(scenario())


class TestServerLifecycle:
    def test_stop_closes_live_keepalive_connections(self):
        async def scenario():
            server = make_server(make_app())
            await server.start()
            client = AsyncClipperClient("127.0.0.1", server.port)
            await client.predict("demo", [0.0])
            # The client's keep-alive connection is open; stop() must not
            # hang waiting for it.
            await asyncio.wait_for(server.stop(), timeout=5.0)
            await client.close()
            assert not server.is_serving

        run_async(scenario())

    def test_start_is_idempotent_and_restartable(self):
        async def scenario():
            server = make_server(make_app())
            await server.start()
            port = server.port
            await server.start()  # no-op
            assert server.port == port
            await server.stop()
            await server.start()  # fresh listener after a stop
            assert server.is_serving
            await server.stop()

        run_async(scenario())

    def test_server_lifecycle_runs_management_monitors(self):
        # create_server registers the admin frontend as a lifecycle
        # manager: health monitors and canary controllers run exactly while
        # the server serves (no silent monitoring gap).
        async def scenario():
            clipper = make_app()
            admin = ManagementFrontend()  # monitoring + canary control on
            admin.register_application(clipper)
            server = create_server(admin=admin)
            monitor = admin.health_monitor("demo")
            controller = admin.canary_controller("demo")
            assert monitor._task is None
            await server.start()
            try:
                assert monitor._task is not None and not monitor._task.done()
                assert controller._task is not None and not controller._task.done()
            finally:
                await server.stop()
            assert monitor._task is None
            assert controller._task is None
            assert clipper._started is False

        run_async(scenario())

    def test_server_without_applications_serves_routes_only(self):
        async def scenario():
            table = RouteTable()
            from repro.api.routes import ApiResponse

            async def ping(params, body):
                return ApiResponse(200, {"pong": True})

            table.add("GET", "/api/v1/ping", "ping", ping)
            server = HttpApiServer(table)
            async with server:
                async with AsyncClipperClient("127.0.0.1", server.port) as client:
                    assert await client._call("GET", "/api/v1/ping") == {"pong": True}

        run_async(scenario())
