"""Tests for the model suites and the live serving measurement drivers."""

import numpy as np
import pytest

from repro.containers.base import ModelContainer
from repro.containers.noop import NoOpContainer
from repro.core.config import BatchingConfig
from repro.datasets import load_mnist_like, load_timit_like
from repro.evaluation.serving import run_clipper_serving, run_tfserving_baseline
from repro.evaluation.suites import (
    build_user_streams,
    dialect_model_suite,
    ensemble_prediction_matrix,
    figure3_container_suite,
    heterogeneous_ensemble,
)


@pytest.fixture(scope="module")
def tiny_mnist():
    return load_mnist_like(n_samples=400, n_features=32, random_state=0)


class TestFigure3Suite:
    def test_contains_the_six_paper_containers(self, tiny_mnist):
        suite = figure3_container_suite(tiny_mnist, kernel_support_vectors=100)
        names = [spec.name for spec in suite]
        assert names == [
            "no-op",
            "linear-svm-sklearn",
            "linear-svm-pyspark",
            "random-forest-sklearn",
            "kernel-svm-sklearn",
            "logistic-regression-sklearn",
        ]

    def test_factories_produce_working_containers(self, tiny_mnist):
        suite = figure3_container_suite(tiny_mnist, kernel_support_vectors=100)
        x = tiny_mnist.X_test[0]
        for spec in suite:
            container = spec.factory()
            assert isinstance(container, ModelContainer)
            outputs = container.predict_batch([x, x])
            assert len(outputs) == 2

    def test_factories_are_reusable(self, tiny_mnist):
        suite = figure3_container_suite(tiny_mnist, kernel_support_vectors=100)
        spec = suite[1]
        assert spec.factory() is not spec.factory()


class TestHeterogeneousEnsemble:
    def test_builds_requested_number_of_models(self, tiny_mnist):
        models = heterogeneous_ensemble(tiny_mnist, n_models=4, random_state=0)
        assert len(models) == 4

    def test_models_have_an_accuracy_spread(self, tiny_mnist):
        models = heterogeneous_ensemble(tiny_mnist, n_models=5, random_state=0)
        predictions = ensemble_prediction_matrix(models, tiny_mnist.X_test)
        errors = {
            name: float(np.mean(pred != tiny_mnist.y_test))
            for name, pred in predictions.items()
        }
        assert max(errors.values()) - min(errors.values()) > 0.05

    def test_prediction_matrix_shapes(self, tiny_mnist):
        models = heterogeneous_ensemble(tiny_mnist, n_models=3, random_state=0)
        predictions = ensemble_prediction_matrix(models, tiny_mnist.X_test)
        assert all(p.shape == (tiny_mnist.X_test.shape[0],) for p in predictions.values())

    def test_validation(self, tiny_mnist):
        with pytest.raises(ValueError):
            heterogeneous_ensemble(tiny_mnist, n_models=1)


class TestDialectSuite:
    def test_builds_one_model_per_dialect_plus_global(self):
        corpus = load_timit_like(n_speakers=24, utterances_per_speaker=6, random_state=0)
        models, global_name = dialect_model_suite(corpus, random_state=0)
        assert global_name in models
        assert sum(1 for name in models if name.startswith("dialect-")) == corpus.n_dialects

    def test_user_streams_cover_test_speakers(self):
        corpus = load_timit_like(n_speakers=24, utterances_per_speaker=6, random_state=0)
        models, _ = dialect_model_suite(corpus, random_state=0)
        streams, dialect_of_user = build_user_streams(corpus, models, max_steps=4)
        assert len(streams) == len(corpus.test_speakers())
        assert set(streams) == set(dialect_of_user)
        some_stream = next(iter(streams.values()))
        step, per_model, label = some_stream[0]
        assert step == 0
        assert set(per_model) == set(models)


class TestServingDrivers:
    def test_run_clipper_serving_measures_throughput(self):
        measurement = run_clipper_serving(
            container_factory=lambda: NoOpContainer(output=1),
            inputs=[np.zeros(8)] * 32,
            label="noop",
            num_queries=200,
            latency_slo_ms=50.0,
            batching=BatchingConfig(policy="aimd"),
            concurrency=16,
        )
        assert measurement.throughput_qps > 0
        assert measurement.num_errors == 0
        assert measurement.mean_latency_ms > 0
        assert measurement.mean_batch_size >= 1.0

    def test_no_batching_policy_has_unit_batches(self):
        measurement = run_clipper_serving(
            container_factory=lambda: NoOpContainer(output=1),
            inputs=[np.zeros(8)] * 16,
            label="nobatch",
            num_queries=100,
            batching=BatchingConfig(policy="none"),
            concurrency=8,
        )
        assert measurement.mean_batch_size == pytest.approx(1.0)

    def test_run_tfserving_baseline(self):
        measurement = run_tfserving_baseline(
            NoOpContainer(output=1),
            inputs=[np.zeros(8)] * 16,
            num_queries=150,
            batch_size=16,
            concurrency=16,
        )
        assert measurement.throughput_qps > 0
        assert measurement.num_errors == 0

    def test_measurement_row_shape(self):
        measurement = run_tfserving_baseline(
            NoOpContainer(output=1), inputs=[np.zeros(4)] * 4, num_queries=20, batch_size=4
        )
        row = measurement.as_row()
        assert {"label", "throughput_qps", "p99_latency_ms"} <= set(row)
