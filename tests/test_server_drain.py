"""Graceful-drain tests for the RPC container server and the HTTP edge.

Both servers expose ``drain(timeout_s)``: stop accepting new work, let every
in-flight request finish, then stop.  This is the SIGTERM path the cluster
worker daemons and the ingress tier ride.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from helpers import run_async
from repro.api.http import create_server
from repro.client import AsyncClipperClient
from repro.containers.base import ModelContainer
from repro.containers.noop import NoOpContainer
from repro.containers.overhead import SimulatedLatencyContainer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.exceptions import RpcError
from repro.core.frontend import QueryFrontend
from repro.rpc.client import RpcClient
from repro.rpc.server import ContainerRpcServer
from repro.rpc.transport import InProcessTransport


class SlowContainer(ModelContainer):
    framework = "slow"

    def __init__(self, delay_s: float = 0.2) -> None:
        self.delay_s = delay_s

    def predict_batch(self, inputs):
        time.sleep(self.delay_s)
        return [1] * len(inputs)


class TestContainerRpcServerDrain:
    def test_drain_idle_server_stops_promptly(self):
        async def scenario():
            pair = InProcessTransport()
            server = ContainerRpcServer(NoOpContainer(), pair.server_side)
            server.start()
            started = time.monotonic()
            await server.drain(timeout_s=5.0)
            assert time.monotonic() - started < 1.0

        run_async(scenario())

    def test_drain_waits_for_the_in_flight_batch(self):
        async def scenario():
            pair = InProcessTransport()
            server = ContainerRpcServer(
                SlowContainer(delay_s=0.2), pair.server_side, use_executor=True
            )
            client = RpcClient(pair.client_side, timeout_s=5.0)
            server.start()
            pending = asyncio.ensure_future(client.predict("m:1", [np.zeros(1)]))
            await asyncio.sleep(0.05)  # batch is now inside the container
            await server.drain(timeout_s=5.0)
            response = await pending
            assert response.ok
            assert response.outputs == [1]
            await client.close()

        run_async(scenario())

    def test_requests_after_drain_fail_fast(self):
        async def scenario():
            pair = InProcessTransport()
            server = ContainerRpcServer(NoOpContainer(output=1), pair.server_side)
            client = RpcClient(pair.client_side, timeout_s=1.0)
            server.start()
            response = await client.predict("m:1", [np.zeros(1)])
            assert response.ok
            await server.drain(timeout_s=5.0)
            with pytest.raises(RpcError):
                await client.predict("m:1", [np.zeros(1)])
            await client.close()

        run_async(scenario())


def make_http_server(latency_ms=0.0):
    clipper = Clipper(
        ClipperConfig(app_name="app", latency_slo_ms=2000.0, selection_policy="single")
    )
    if latency_ms:
        factory = lambda: SimulatedLatencyContainer(base_latency_ms=latency_ms)  # noqa: E731
    else:
        factory = lambda: NoOpContainer(output=0)  # noqa: E731
    clipper.deploy_model(ModelDeployment(name="m", container_factory=factory))
    query = QueryFrontend()
    query.register_application(clipper)
    return create_server(query=query)


class TestHttpApiServerDrain:
    def test_drain_idle_server_stops_promptly(self):
        async def scenario():
            server = make_http_server()
            await server.start()
            started = time.monotonic()
            await server.drain(timeout_s=5.0)
            assert time.monotonic() - started < 1.0
            assert server.port is None  # fully stopped

        run_async(scenario())

    def test_drain_finishes_in_flight_requests(self):
        async def scenario():
            server = make_http_server(latency_ms=200.0)
            await server.start()
            client = AsyncClipperClient("127.0.0.1", server.port)
            pending = asyncio.ensure_future(client.predict("app", [0.0]))
            await asyncio.sleep(0.05)  # the request is now in flight
            await server.drain(timeout_s=5.0)
            prediction = await pending
            assert prediction.output == 0
            await client.close()

        run_async(scenario())

    def test_new_connections_refused_after_drain(self):
        async def scenario():
            server = make_http_server()
            await server.start()
            port = server.port
            await server.drain(timeout_s=5.0)
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", port)

        run_async(scenario())
