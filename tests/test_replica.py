"""Tests for container replicas and replica sets."""

import numpy as np
import pytest

from helpers import run_async
from repro.containers.noop import NoOpContainer
from repro.containers.replica import ContainerReplica, ReplicaSet
from repro.core.exceptions import ContainerError
from repro.core.types import ModelId


class TestContainerReplica:
    def test_predict_batch_round_trip(self):
        async def scenario():
            replica = ContainerReplica(ModelId("noop"), 0, NoOpContainer(output=1))
            await replica.start()
            response = await replica.predict_batch([np.zeros(2)] * 3)
            assert response.ok
            assert response.outputs == [1, 1, 1]
            await replica.stop()

        run_async(scenario())

    def test_predict_before_start_raises(self):
        async def scenario():
            replica = ContainerReplica(ModelId("noop"), 0, NoOpContainer())
            with pytest.raises(ContainerError):
                await replica.predict_batch([np.zeros(2)])

        run_async(scenario())

    def test_name_includes_model_and_replica(self):
        replica = ContainerReplica(ModelId("svm", 2), 3, NoOpContainer())
        assert replica.name == "svm:2[3]"

    def test_start_is_idempotent(self):
        async def scenario():
            replica = ContainerReplica(ModelId("noop"), 0, NoOpContainer())
            await replica.start()
            await replica.start()
            response = await replica.predict_batch([np.zeros(1)])
            assert response.ok
            await replica.stop()

        run_async(scenario())


class TestReplicaSet:
    def test_creates_requested_number_of_replicas(self):
        replica_set = ReplicaSet(ModelId("noop"), NoOpContainer, num_replicas=3)
        assert len(replica_set) == 3
        assert [r.replica_id for r in replica_set] == [0, 1, 2]

    def test_each_replica_gets_its_own_container(self):
        replica_set = ReplicaSet(ModelId("noop"), NoOpContainer, num_replicas=2)
        containers = [replica.container for replica in replica_set]
        assert containers[0] is not containers[1]

    def test_rejects_zero_replicas(self):
        with pytest.raises(ContainerError):
            ReplicaSet(ModelId("noop"), NoOpContainer, num_replicas=0)

    def test_rejects_factory_returning_non_container(self):
        with pytest.raises(ContainerError):
            ReplicaSet(ModelId("bad"), lambda: object(), num_replicas=1)

    def test_start_stop_all(self):
        async def scenario():
            replica_set = ReplicaSet(ModelId("noop"), NoOpContainer, num_replicas=2)
            await replica_set.start()
            for replica in replica_set:
                response = await replica.predict_batch([np.zeros(1)])
                assert response.ok
            await replica_set.stop()

        run_async(scenario())


class TestDynamicMembership:
    def test_add_replica_extends_the_set_with_monotonic_ids(self):
        replica_set = ReplicaSet(ModelId("m"), NoOpContainer, num_replicas=2)
        added = replica_set.add_replica()
        assert len(replica_set) == 3
        assert added.replica_id == 2
        assert [r.replica_id for r in replica_set] == [0, 1, 2]

    def test_remove_replica_by_identity(self):
        replica_set = ReplicaSet(ModelId("m"), NoOpContainer, num_replicas=3)
        victim = replica_set.replicas[1]
        replica_set.remove_replica(victim)
        assert len(replica_set) == 2
        assert victim not in replica_set.replicas
        with pytest.raises(ContainerError):
            replica_set.remove_replica(victim)

    def test_cannot_remove_last_replica(self):
        replica_set = ReplicaSet(ModelId("m"), NoOpContainer, num_replicas=1)
        with pytest.raises(ContainerError):
            replica_set.remove_replica(replica_set.replicas[0])

    def test_replace_replica_builds_fresh_container_same_id(self):
        async def scenario():
            replica_set = ReplicaSet(ModelId("m"), NoOpContainer, num_replicas=2)
            await replica_set.start()
            old = replica_set.replicas[0]
            fresh = await replica_set.replace_replica(old)
            assert fresh.replica_id == old.replica_id
            assert fresh is not old
            assert fresh.container is not old.container
            assert old.started is False
            await fresh.start()
            response = await fresh.predict_batch([np.zeros(1)])
            assert response.ok
            await replica_set.stop()

        run_async(scenario())

    def test_ids_stay_unique_after_remove_then_add(self):
        replica_set = ReplicaSet(ModelId("m"), NoOpContainer, num_replicas=3)
        replica_set.remove_replica(replica_set.replicas[-1])
        added = replica_set.add_replica()
        ids = [r.replica_id for r in replica_set]
        assert len(ids) == len(set(ids))
        assert added.replica_id == 3


class TestHealthProbe:
    def test_healthy_replica_probes_true(self):
        async def scenario():
            replica = ContainerReplica(ModelId("m"), 0, NoOpContainer())
            await replica.start()
            assert await replica.check_health(timeout_s=1.0) is True
            await replica.stop()

        run_async(scenario())

    def test_unstarted_replica_probes_false(self):
        async def scenario():
            replica = ContainerReplica(ModelId("m"), 0, NoOpContainer())
            assert await replica.check_health(timeout_s=1.0) is False

        run_async(scenario())

    def test_unhealthy_container_probes_false_even_though_transport_lives(self):
        async def scenario():
            from repro.containers.chaos import KillableContainer

            container = KillableContainer(output=1)
            replica = ContainerReplica(ModelId("m"), 0, container)
            await replica.start()
            assert await replica.check_health(timeout_s=1.0) is True
            container.kill()
            assert await replica.check_health(timeout_s=1.0) is False
            container.revive()
            assert await replica.check_health(timeout_s=1.0) is True
            await replica.stop()

        run_async(scenario())
