"""Tests for container replicas and replica sets."""

import numpy as np
import pytest

from helpers import run_async
from repro.containers.noop import NoOpContainer
from repro.containers.replica import ContainerReplica, ReplicaSet
from repro.core.exceptions import ContainerError
from repro.core.types import ModelId


class TestContainerReplica:
    def test_predict_batch_round_trip(self):
        async def scenario():
            replica = ContainerReplica(ModelId("noop"), 0, NoOpContainer(output=1))
            await replica.start()
            response = await replica.predict_batch([np.zeros(2)] * 3)
            assert response.ok
            assert response.outputs == [1, 1, 1]
            await replica.stop()

        run_async(scenario())

    def test_predict_before_start_raises(self):
        async def scenario():
            replica = ContainerReplica(ModelId("noop"), 0, NoOpContainer())
            with pytest.raises(ContainerError):
                await replica.predict_batch([np.zeros(2)])

        run_async(scenario())

    def test_name_includes_model_and_replica(self):
        replica = ContainerReplica(ModelId("svm", 2), 3, NoOpContainer())
        assert replica.name == "svm:2[3]"

    def test_start_is_idempotent(self):
        async def scenario():
            replica = ContainerReplica(ModelId("noop"), 0, NoOpContainer())
            await replica.start()
            await replica.start()
            response = await replica.predict_batch([np.zeros(1)])
            assert response.ok
            await replica.stop()

        run_async(scenario())


class TestReplicaSet:
    def test_creates_requested_number_of_replicas(self):
        replica_set = ReplicaSet(ModelId("noop"), NoOpContainer, num_replicas=3)
        assert len(replica_set) == 3
        assert [r.replica_id for r in replica_set] == [0, 1, 2]

    def test_each_replica_gets_its_own_container(self):
        replica_set = ReplicaSet(ModelId("noop"), NoOpContainer, num_replicas=2)
        containers = [replica.container for replica in replica_set]
        assert containers[0] is not containers[1]

    def test_rejects_zero_replicas(self):
        with pytest.raises(ContainerError):
            ReplicaSet(ModelId("noop"), NoOpContainer, num_replicas=0)

    def test_rejects_factory_returning_non_container(self):
        with pytest.raises(ContainerError):
            ReplicaSet(ModelId("bad"), lambda: object(), num_replicas=1)

    def test_start_stop_all(self):
        async def scenario():
            replica_set = ReplicaSet(ModelId("noop"), NoOpContainer, num_replicas=2)
            await replica_set.start()
            for replica in replica_set:
                response = await replica.predict_batch([np.zeros(1)])
                assert response.ok
            await replica_set.stop()

        run_async(scenario())
