"""Importable helpers shared across test modules.

Test files import :func:`run_async` from here (``from helpers import
run_async``) rather than from ``conftest`` — conftest modules are loaded by
pytest under a single shared module name, so importing them directly breaks
when another rootdir conftest (e.g. ``benchmarks/conftest.py``) is imported
first.
"""

from __future__ import annotations

import asyncio


def run_async(coroutine):
    """Run a coroutine to completion on a fresh event loop.

    pytest-asyncio is not available in this environment, so async code under
    test is driven through this helper from synchronous test functions.
    """
    return asyncio.run(coroutine)
