"""Tests for the versioned model registry and its optimistic concurrency."""

import threading

import pytest

from repro.core.exceptions import ManagementError
from repro.management.records import (
    VERSION_RETIRED,
    VERSION_SERVING,
    VERSION_STAGED,
    VERSION_UNDEPLOYED,
)
from repro.management.registry import ModelRegistry
from repro.state.kvstore import KeyValueStore


def make_registry():
    registry = ModelRegistry()
    registry.register_application("app")
    return registry


class TestApplications:
    def test_register_and_list(self):
        registry = ModelRegistry()
        registry.register_application("vision")
        registry.register_application("speech")
        assert registry.applications() == ["speech", "vision"]
        assert "registered_at" in registry.application("vision")

    def test_duplicate_application_rejected(self):
        registry = ModelRegistry()
        registry.register_application("vision")
        with pytest.raises(ManagementError):
            registry.register_application("vision")

    def test_unknown_application_rejected(self):
        registry = ModelRegistry()
        with pytest.raises(ManagementError):
            registry.register_model_version("ghost", "m", 1)
        with pytest.raises(ManagementError):
            registry.models("ghost")


class TestModelVersions:
    def test_first_serving_version(self):
        registry = make_registry()
        record = registry.register_model_version("app", "svm", 1, serving=True)
        assert record["active_version"] == 1
        assert record["versions"]["1"]["state"] == VERSION_SERVING

    def test_later_version_stages(self):
        registry = make_registry()
        registry.register_model_version("app", "svm", 1, serving=True)
        record = registry.register_model_version("app", "svm", 2, num_replicas=2)
        assert record["active_version"] == 1
        assert record["versions"]["2"]["state"] == VERSION_STAGED
        assert record["versions"]["2"]["num_replicas"] == 2

    def test_versions_are_immutable(self):
        registry = make_registry()
        registry.register_model_version("app", "svm", 1)
        with pytest.raises(ManagementError):
            registry.register_model_version("app", "svm", 1)

    def test_rollout_retires_previous_and_rollback_restores(self):
        registry = make_registry()
        registry.register_model_version("app", "svm", 1, serving=True)
        registry.register_model_version("app", "svm", 2)

        record = registry.set_active_version("app", "svm", 2)
        assert record["active_version"] == 2
        assert record["previous_version"] == 1
        assert record["versions"]["1"]["state"] == VERSION_RETIRED
        assert record["versions"]["2"]["state"] == VERSION_SERVING

        record = registry.set_active_version("app", "svm", 1)  # rollback
        assert record["active_version"] == 1
        assert record["previous_version"] == 2
        assert record["versions"]["1"]["state"] == VERSION_SERVING
        assert record["versions"]["2"]["state"] == VERSION_RETIRED

    def test_activating_unknown_or_undeployed_version_rejected(self):
        registry = make_registry()
        registry.register_model_version("app", "svm", 1, serving=True)
        with pytest.raises(ManagementError):
            registry.set_active_version("app", "svm", 9)
        registry.register_model_version("app", "svm", 2)
        registry.mark_undeployed("app", "svm", 2)
        with pytest.raises(ManagementError):
            registry.set_active_version("app", "svm", 2)

    def test_undeploy_clears_active_and_previous_pointers(self):
        registry = make_registry()
        registry.register_model_version("app", "svm", 1, serving=True)
        registry.register_model_version("app", "svm", 2)
        registry.set_active_version("app", "svm", 2)
        record = registry.mark_undeployed("app", "svm", 1)
        assert record["previous_version"] is None
        record = registry.mark_undeployed("app", "svm", 2)
        assert record["active_version"] is None
        assert record["versions"]["2"]["state"] == VERSION_UNDEPLOYED

    def test_set_num_replicas_updates_record(self):
        registry = make_registry()
        registry.register_model_version("app", "svm", 1, serving=True)
        record = registry.set_num_replicas("app", "svm", 1, 4)
        assert record["versions"]["1"]["num_replicas"] == 4


class TestOptimisticConcurrency:
    def test_two_concurrent_writers_both_land(self):
        """Interleaved writers on the same record must not lose updates."""
        store = KeyValueStore()
        registry_a = ModelRegistry(store=store)
        registry_b = ModelRegistry(store=store)
        registry_a.register_application("app")

        versions_per_writer = 25
        barrier = threading.Barrier(2)
        errors = []

        def writer(registry, offset):
            try:
                barrier.wait()
                for i in range(versions_per_writer):
                    registry.register_model_version("app", "svm", offset + i)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(registry_a, 0)),
            threading.Thread(target=writer, args=(registry_b, 1000)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        record = registry_a.model("app", "svm")
        assert len(record["versions"]) == 2 * versions_per_writer

    def test_conflicting_insert_raises_not_overwrites(self):
        """Both writers registering the same version: exactly one wins."""
        store = KeyValueStore()
        registry_a = ModelRegistry(store=store)
        registry_b = ModelRegistry(store=store)
        registry_a.register_application("app")
        registry_a.register_model_version("app", "svm", 1, metadata={"writer": "a"})
        with pytest.raises(ManagementError):
            registry_b.register_model_version("app", "svm", 1, metadata={"writer": "b"})
        assert registry_a.model("app", "svm")["versions"]["1"]["metadata"] == {
            "writer": "a"
        }

    def test_cas_exhaustion_raises(self):
        class AlwaysLosing(KeyValueStore):
            def put_if_version(self, namespace, key, value, expected_version):
                return False

        registry = ModelRegistry(store=AlwaysLosing(), max_cas_retries=3)
        with pytest.raises(ManagementError, match="optimistic-concurrency"):
            registry.register_application("app")
