"""Tests for the single-model, epsilon-greedy and UCB1 policies plus the factory."""

import numpy as np
import pytest

from repro.core.exceptions import SelectionPolicyError
from repro.core.types import ModelId
from repro.selection.epsilon_greedy import EpsilonGreedyPolicy
from repro.selection.policy import SelectionPolicy, make_policy
from repro.selection.single import SingleModelPolicy
from repro.selection.ucb import UCB1Policy

MODELS = [ModelId("first"), ModelId("second"), ModelId("third")]


class TestSingleModelPolicy:
    def test_defaults_to_first_model(self):
        policy = SingleModelPolicy()
        state = policy.init(MODELS)
        assert policy.select(state, None) == ["first:1"]

    def test_pins_named_model(self):
        policy = SingleModelPolicy(model_name="second")
        state = policy.init(MODELS)
        assert policy.select(state, None) == ["second:1"]

    def test_unknown_pinned_model_raises(self):
        with pytest.raises(SelectionPolicyError):
            SingleModelPolicy(model_name="nope").init(MODELS)

    def test_combine_prefers_pinned_model(self):
        policy = SingleModelPolicy(model_name="second")
        state = policy.init(MODELS)
        output, confidence = policy.combine(state, None, {"second:1": 5, "first:1": 9})
        assert output == 5
        assert confidence == 1.0

    def test_combine_falls_back_when_pinned_missing(self):
        policy = SingleModelPolicy(model_name="second")
        state = policy.init(MODELS)
        output, confidence = policy.combine(state, None, {"first:1": 9})
        assert output == 9
        assert confidence == 0.0

    def test_observe_only_counts(self):
        policy = SingleModelPolicy()
        state = policy.init(MODELS)
        state = policy.observe(state, None, 1, {"first:1": 1})
        assert state["n_feedback"] == 1


class TestEpsilonGreedy:
    def test_zero_epsilon_exploits_best_arm(self):
        policy = EpsilonGreedyPolicy(epsilon=0.0, seed=0)
        state = policy.init(MODELS)
        # first is bad, second is good.
        for _ in range(20):
            state = policy.observe(state, None, 1, {"first:1": 0})
            state = policy.observe(state, None, 1, {"second:1": 1})
        assert policy.select(state, None) == ["second:1"]

    def test_epsilon_one_explores_every_arm(self):
        policy = EpsilonGreedyPolicy(epsilon=1.0, seed=0)
        state = policy.init(MODELS)
        chosen = {policy.select(state, None)[0] for _ in range(200)}
        assert chosen == {"first:1", "second:1", "third:1"}

    def test_invalid_epsilon(self):
        with pytest.raises(SelectionPolicyError):
            EpsilonGreedyPolicy(epsilon=1.5)

    def test_combine_passthrough(self):
        policy = EpsilonGreedyPolicy(seed=0)
        state = policy.init(MODELS)
        assert policy.combine(state, None, {"first:1": 3})[0] == 3


class TestUCB1:
    def test_plays_every_arm_once_first(self):
        policy = UCB1Policy()
        state = policy.init(MODELS)
        seen = []
        for _ in range(3):
            arm = policy.select(state, None)[0]
            seen.append(arm)
            state = policy.observe(state, None, 1, {arm: 1})
        assert sorted(seen) == ["first:1", "second:1", "third:1"]

    def test_converges_to_best_arm(self):
        rng = np.random.default_rng(0)
        policy = UCB1Policy(exploration_coefficient=0.5)
        state = policy.init(MODELS)
        accuracies = {"first:1": 0.3, "second:1": 0.9, "third:1": 0.5}
        plays = {key: 0 for key in accuracies}
        for _ in range(1500):
            arm = policy.select(state, None)[0]
            plays[arm] += 1
            correct = rng.random() < accuracies[arm]
            state = policy.observe(state, None, 1, {arm: 1 if correct else 0})
        assert plays["second:1"] > plays["first:1"]
        assert plays["second:1"] > plays["third:1"]

    def test_invalid_coefficient(self):
        with pytest.raises(SelectionPolicyError):
            UCB1Policy(exploration_coefficient=0)


class TestPolicyFactory:
    @pytest.mark.parametrize("name", ["exp3", "exp4", "single", "epsilon_greedy", "ucb"])
    def test_factory_builds_each_policy(self, name):
        policy = make_policy(name)
        assert isinstance(policy, SelectionPolicy)
        assert policy.name == name

    def test_unknown_policy_raises(self):
        with pytest.raises(SelectionPolicyError):
            make_policy("alphazero")

    def test_kwargs_forwarded(self):
        policy = make_policy("exp3", eta=0.7)
        assert policy.eta == 0.7

    def test_default_loss_is_zero_one(self):
        assert SelectionPolicy.loss(1, 1) == 0.0
        assert SelectionPolicy.loss(1, 2) == 1.0
        assert SelectionPolicy.loss(1, None) == 1.0
