"""Tests for remote replica placement over in-process worker daemons.

These spin a :class:`~repro.cluster.worker.WorkerDaemon` inside the test's
own event loop (real loopback sockets, no child processes) and drive it
through :class:`~repro.cluster.remote.RemoteReplica` /
:class:`RemoteReplicaSet` and the Clipper placement seam — the cluster data
path minus process isolation, which the opt-in ``--cluster`` tier covers.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from helpers import run_async
from repro.cluster.ingress import make_replica_set_factory
from repro.cluster.registry import WorkerAnnouncement, WorkerRegistry
from repro.cluster.remote import RemoteReplica, RemoteReplicaSet, WorkerPlacer
from repro.cluster.worker import WorkerDaemon
from repro.containers.base import ModelContainer
from repro.containers.noop import NoOpContainer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.exceptions import ContainerError, RpcError
from repro.core.types import Query
from repro.rpc.shm import HAS_SHARED_MEMORY


class SlowContainer(ModelContainer):
    """Blocks ``delay_s`` per batch (in the worker's executor thread)."""

    framework = "slow"

    def __init__(self, delay_s: float = 0.2) -> None:
        self.delay_s = delay_s

    def predict_batch(self, inputs):
        time.sleep(self.delay_s)
        return [1] * len(inputs)


def make_factories(output=1):
    return {
        "echo": lambda: NoOpContainer(output=output),
        "slow": lambda: SlowContainer(),
    }


async def start_daemon(tmp_path, worker_id="w0", **kwargs):
    kwargs.setdefault("factories", make_factories())
    daemon = WorkerDaemon(worker_id, str(tmp_path), **kwargs)
    await daemon.start()
    return daemon


def fake_announcement(registry, worker_id, port=9000):
    registry.announce(
        WorkerAnnouncement(
            worker_id=worker_id,
            host="hostX",
            pid=1,
            tcp_host="127.0.0.1",
            tcp_port=port,
        )
    )


class TestWorkerPlacer:
    def test_round_robin_over_live_workers(self, tmp_path):
        registry = WorkerRegistry(str(tmp_path))
        for worker_id in ("a", "b"):
            fake_announcement(registry, worker_id)
        placer = WorkerPlacer(registry)
        picks = [placer.place().worker_id for _ in range(4)]
        assert picks == ["a", "b", "a", "b"]

    def test_exclude_prefers_other_workers(self, tmp_path):
        registry = WorkerRegistry(str(tmp_path))
        for worker_id in ("a", "b"):
            fake_announcement(registry, worker_id)
        placer = WorkerPlacer(registry)
        picks = {placer.place(exclude=("a",)).worker_id for _ in range(4)}
        assert picks == {"b"}
        # ... but a fully-excluded registry still places somewhere.
        assert placer.place(exclude=("a", "b")).worker_id in {"a", "b"}

    def test_empty_registry_raises_retryable_rpc_error(self, tmp_path):
        placer = WorkerPlacer(WorkerRegistry(str(tmp_path)))
        with pytest.raises(RpcError):
            placer.place()


class TestRemoteReplica:
    def test_tcp_lane_predict_and_health(self, tmp_path):
        async def scenario():
            daemon = await start_daemon(tmp_path)
            try:
                worker = daemon.registry.worker("w0")
                replica = RemoteReplica(
                    "m:1", 0, worker, factory_name="echo", transport="tcp"
                )
                assert replica.transport_lane == "tcp"
                assert not replica.started
                await replica.start()
                assert replica.started
                assert replica.name == "m:1[0]@w0"
                response = await replica.predict_batch([np.zeros(2), np.zeros(2)])
                assert response.ok
                assert response.outputs == [1, 1]
                assert await replica.check_health()
                await replica.stop()
                assert not await replica.check_health()
            finally:
                await daemon.stop()

        run_async(scenario())

    @pytest.mark.shm
    @pytest.mark.skipif(not HAS_SHARED_MEMORY, reason="no shared memory")
    def test_same_host_auto_negotiates_shm(self, tmp_path):
        async def scenario():
            daemon = await start_daemon(tmp_path)
            try:
                worker = daemon.registry.worker("w0")
                replica = RemoteReplica("m:1", 0, worker, factory_name="echo")
                assert replica.transport_lane == "shm"
                await replica.start()
                response = await replica.predict_batch([np.zeros(2)])
                assert response.outputs == [1]
                await replica.stop()
            finally:
                await daemon.stop()

        run_async(scenario())

    def test_unknown_factory_refused(self, tmp_path):
        async def scenario():
            daemon = await start_daemon(tmp_path)
            try:
                worker = daemon.registry.worker("w0")
                replica = RemoteReplica(
                    "m:1", 0, worker, factory_name="ghost", transport="tcp"
                )
                with pytest.raises(RpcError, match="ghost"):
                    await replica.start()
            finally:
                await daemon.stop()

        run_async(scenario())

    def test_worker_reaps_container_when_lane_closes(self, tmp_path):
        async def scenario():
            daemon = await start_daemon(tmp_path)
            try:
                worker = daemon.registry.worker("w0")
                replica = RemoteReplica(
                    "m:1", 0, worker, factory_name="echo", transport="tcp"
                )
                await replica.start()
                assert daemon._active_models == {"m:1"}
                await replica.stop()
                deadline = time.monotonic() + 5.0
                while daemon._active_models and time.monotonic() < deadline:
                    await asyncio.sleep(0.01)
                assert daemon._active_models == set()
            finally:
                await daemon.stop()

        run_async(scenario())


class TestRemoteReplicaSet:
    def test_spreads_replicas_across_workers(self, tmp_path):
        async def scenario():
            d0 = await start_daemon(tmp_path, "w0")
            d1 = await start_daemon(tmp_path, "w1")
            try:
                placer = WorkerPlacer(d0.registry)
                replica_set = RemoteReplicaSet(
                    "m:1", "echo", placer, num_replicas=2, transport="tcp"
                )
                assert len(replica_set) == 2
                assert [r.replica_id for r in replica_set] == [0, 1]
                assert {r.worker.worker_id for r in replica_set} == {"w0", "w1"}
                await replica_set.start()
                for replica in replica_set:
                    response = await replica.predict_batch([np.zeros(1)])
                    assert response.outputs == [1]
                await replica_set.stop()
            finally:
                await d0.stop()
                await d1.stop()

        run_async(scenario())

    def test_replace_replica_migrates_off_the_sick_worker(self, tmp_path):
        async def scenario():
            d0 = await start_daemon(tmp_path, "w0")
            d1 = await start_daemon(tmp_path, "w1")
            try:
                placer = WorkerPlacer(d0.registry)
                replica_set = RemoteReplicaSet(
                    "m:1", "echo", placer, num_replicas=2, transport="tcp"
                )
                await replica_set.start()
                sick = next(
                    r for r in replica_set if r.worker.worker_id == "w0"
                )
                fresh = await replica_set.replace_replica(sick)
                assert fresh.replica_id == sick.replica_id
                assert fresh.worker.worker_id == "w1"
                assert not fresh.started  # the caller (health monitor) starts it
                assert not sick.started
                await fresh.start()
                response = await fresh.predict_batch([np.zeros(1)])
                assert response.outputs == [1]
                await replica_set.stop()
            finally:
                await d0.stop()
                await d1.stop()

        run_async(scenario())

    def test_contract_guards(self, tmp_path):
        registry = WorkerRegistry(str(tmp_path))
        fake_announcement(registry, "a")
        placer = WorkerPlacer(registry)
        with pytest.raises(ContainerError):
            RemoteReplicaSet("m:1", "", placer)  # no factory name
        with pytest.raises(ContainerError):
            RemoteReplicaSet("m:1", "echo", placer, num_replicas=0)
        replica_set = RemoteReplicaSet("m:1", "echo", placer, num_replicas=1)
        with pytest.raises(ContainerError):
            replica_set.remove_replica(replica_set.replicas[0])


class TestClipperPlacementSeam:
    def make_clipper(self, placer):
        clipper = Clipper(
            ClipperConfig(
                app_name="app", latency_slo_ms=250.0, selection_policy="single"
            )
        )
        clipper.set_replica_set_factory(make_replica_set_factory(placer))
        return clipper

    def test_named_factory_places_remotely(self, tmp_path):
        async def scenario():
            # Worker factory answers 1; the local fallback factory answers 7.
            # A prediction of 1 proves the container ran inside the daemon.
            daemon = await start_daemon(tmp_path)
            try:
                placer = WorkerPlacer(daemon.registry)
                clipper = self.make_clipper(placer)
                clipper.deploy_model(
                    ModelDeployment(
                        name="m",
                        container_factory=lambda: NoOpContainer(output=7),
                        factory_name="echo",
                        num_replicas=2,
                    )
                )
                await clipper.start()
                try:
                    prediction = await clipper.predict(
                        Query(app_name="app", input=np.zeros(4), user_id="u")
                    )
                    assert prediction.output == 1
                finally:
                    await clipper.stop()
            finally:
                await daemon.stop()

        run_async(scenario())

    def test_unnamed_factory_falls_back_to_local_replicas(self, tmp_path):
        async def scenario():
            daemon = await start_daemon(tmp_path)
            try:
                placer = WorkerPlacer(daemon.registry)
                clipper = self.make_clipper(placer)
                clipper.deploy_model(
                    ModelDeployment(
                        name="m", container_factory=lambda: NoOpContainer(output=7)
                    )
                )
                await clipper.start()
                try:
                    prediction = await clipper.predict(
                        Query(app_name="app", input=np.zeros(4), user_id="u")
                    )
                    assert prediction.output == 7  # served in-process
                finally:
                    await clipper.stop()
            finally:
                await daemon.stop()

        run_async(scenario())


class TestWorkerDrain:
    def test_drain_withdraws_and_finishes_in_flight_work(self, tmp_path):
        async def scenario():
            daemon = await start_daemon(tmp_path)
            worker = daemon.registry.worker("w0")
            replica = RemoteReplica(
                "m:1", 0, worker, factory_name="slow", transport="tcp"
            )
            await replica.start()
            pending = asyncio.ensure_future(replica.predict_batch([np.zeros(1)]))
            await asyncio.sleep(0.05)  # let the batch reach the container
            await daemon.drain(timeout_s=5.0)
            # The announcement is gone (placer stops choosing this worker) ...
            assert daemon.registry.live_workers() == []
            # ... yet the in-flight batch completed rather than being cut.
            response = await pending
            assert response.ok
            assert response.outputs == [1]
            await replica.stop()

        run_async(scenario())
