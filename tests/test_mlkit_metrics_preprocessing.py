"""Tests for mlkit metrics, preprocessing and the model zoo registry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mlkit import StandardScaler, metrics, train_test_split, zoo


class TestMetrics:
    def test_accuracy_and_error(self):
        y_true = np.array([0, 1, 1, 0])
        y_pred = np.array([0, 1, 0, 0])
        assert metrics.accuracy(y_true, y_pred) == pytest.approx(0.75)
        assert metrics.error_rate(y_true, y_pred) == pytest.approx(0.25)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            metrics.accuracy([0, 1], [0])

    def test_top_k_accuracy(self):
        proba = np.array([[0.1, 0.6, 0.3], [0.5, 0.3, 0.2], [0.2, 0.3, 0.5]])
        y_true = np.array([2, 0, 1])
        assert metrics.top_k_accuracy(y_true, proba, k=1) == pytest.approx(1 / 3)
        assert metrics.top_k_accuracy(y_true, proba, k=2) == pytest.approx(1.0)
        assert metrics.top_k_error(y_true, proba, k=2) == pytest.approx(0.0)

    def test_top_k_with_explicit_classes(self):
        proba = np.array([[0.9, 0.1]])
        assert metrics.top_k_accuracy(np.array([7]), proba, k=1, classes=[7, 9]) == 1.0

    def test_zero_one_loss(self):
        assert metrics.zero_one_loss(1, 1) == 0.0
        assert metrics.zero_one_loss(1, 2) == 1.0

    def test_confusion_matrix(self):
        matrix = metrics.confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1], num_classes=2)
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 2]])
        assert matrix.sum() == 4

    def test_log_loss_perfect_and_bad(self):
        proba = np.array([[0.99, 0.01], [0.01, 0.99]])
        good = metrics.log_loss([0, 1], proba)
        bad = metrics.log_loss([1, 0], proba)
        assert good < bad

    def test_classification_report(self):
        report = metrics.classification_report([0, 1], [0, 0])
        assert report["n_samples"] == 2
        assert report["accuracy"] == pytest.approx(0.5)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=50))
    def test_accuracy_plus_error_is_one(self, labels):
        y = np.array(labels)
        shifted = (y + 1) % 6
        assert metrics.accuracy(y, y) == 1.0
        assert metrics.accuracy(y, shifted) + metrics.error_rate(y, shifted) == pytest.approx(1.0)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_unscaled(self):
        X = np.ones((10, 2))
        X[:, 0] = np.arange(10)
        scaled = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(scaled))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_feature_mismatch_raises(self):
        scaler = StandardScaler().fit(np.ones((5, 3)))
        with pytest.raises(ValueError):
            scaler.transform(np.ones((5, 4)))


class TestTrainTestSplit:
    def test_sizes_and_disjointness(self):
        X = np.arange(100).reshape(100, 1)
        y = np.arange(100)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2, random_state=0)
        assert X_test.shape[0] == 20
        assert X_train.shape[0] == 80
        assert set(y_train.tolist()).isdisjoint(set(y_test.tolist()))

    def test_rows_stay_aligned(self):
        X = np.arange(50).reshape(50, 1)
        y = np.arange(50)
        X_train, X_test, y_train, y_test = train_test_split(X, y, random_state=1)
        np.testing.assert_array_equal(X_train[:, 0], y_train)

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.ones((4, 1)), np.ones(4), test_size=1.5)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            train_test_split(np.ones((4, 1)), np.ones(5))


class TestModelZoo:
    def test_table2_zoo_has_five_architectures(self):
        assert len(zoo.TABLE2_ZOO) == 5
        assert {"vgg", "googlenet", "resnet", "caffenet", "inception"} == set(zoo.TABLE2_ZOO)

    def test_build_zoo_model(self):
        model = zoo.build_zoo_model("vgg", random_state=0)
        assert model.hidden_layers == zoo.TABLE2_ZOO["vgg"].hidden_layers

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            zoo.build_zoo_model("alexnet-9000")

    def test_build_full_zoo_is_deterministic_set(self):
        models = zoo.build_full_zoo(random_state=0)
        assert set(models) == set(zoo.TABLE2_ZOO)

    def test_figure11_models(self):
        assert set(zoo.FIGURE11_MODELS) == {"mnist", "cifar", "imagenet"}
        model = zoo.build_figure11_model("mnist", random_state=0)
        assert model.hidden_layers == zoo.FIGURE11_MODELS["mnist"]["hidden_layers"]
        with pytest.raises(KeyError):
            zoo.build_figure11_model("cifar100")
