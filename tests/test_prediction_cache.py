"""Tests for the Clipper prediction cache (paper §4.2)."""

import numpy as np
import pytest

from repro.cache.prediction_cache import PredictionCache
from repro.core.exceptions import CacheError
from repro.core.types import ModelId, hash_input


class TestPredictionCacheBasics:
    def test_request_reports_presence(self):
        cache = PredictionCache(capacity=16)
        x = np.ones(4)
        assert cache.request("svm:1", x) is False
        cache.put("svm:1", x, 7)
        assert cache.request("svm:1", x) is True

    def test_fetch_returns_cached_prediction(self):
        cache = PredictionCache(capacity=16)
        x = np.arange(3.0)
        cache.put(ModelId("svm"), x, "label")
        assert cache.fetch(ModelId("svm"), x) == "label"

    def test_fetch_miss_returns_none(self):
        cache = PredictionCache(capacity=16)
        assert cache.fetch("svm:1", np.zeros(2)) is None

    def test_entries_are_per_model(self):
        cache = PredictionCache(capacity=16)
        x = np.ones(4)
        cache.put("svm:1", x, 1)
        cache.put("forest:1", x, 2)
        assert cache.fetch("svm:1", x) == 1
        assert cache.fetch("forest:1", x) == 2

    def test_fetch_by_hash_matches_fetch(self):
        cache = PredictionCache(capacity=16)
        x = np.ones(4)
        cache.put("svm:1", x, 9)
        assert cache.fetch_by_hash("svm:1", hash_input(x)) == 9

    def test_put_by_hash(self):
        cache = PredictionCache(capacity=16)
        cache.put_by_hash("svm:1", "deadbeef", 3)
        assert cache.fetch_by_hash("svm:1", "deadbeef") == 3

    def test_model_id_and_string_are_equivalent_keys(self):
        cache = PredictionCache(capacity=16)
        x = np.ones(2)
        cache.put(ModelId("svm", 1), x, 5)
        assert cache.fetch("svm:1", x) == 5


class TestPredictionCacheStats:
    def test_hit_and_miss_counts(self):
        cache = PredictionCache(capacity=16)
        x = np.ones(4)
        cache.fetch("svm:1", x)
        cache.put("svm:1", x, 1)
        cache.fetch("svm:1", x)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.inserts == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_zero_with_no_lookups(self):
        assert PredictionCache(capacity=4).stats.hit_rate == 0.0

    def test_clear_resets_stats_and_contents(self):
        cache = PredictionCache(capacity=4)
        x = np.ones(2)
        cache.put("m", x, 1)
        cache.fetch("m", x)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0


class TestDisabledCache:
    def test_zero_capacity_disables_caching(self):
        cache = PredictionCache(capacity=0)
        x = np.ones(3)
        cache.put("m", x, 1)
        assert cache.fetch("m", x) is None
        assert not cache.enabled
        assert len(cache) == 0

    def test_invalid_eviction_rejected(self):
        with pytest.raises(CacheError):
            PredictionCache(capacity=4, eviction="random")


class TestEvictionIntegration:
    @pytest.mark.parametrize("eviction", ["clock", "lru"])
    def test_capacity_is_respected(self, eviction):
        cache = PredictionCache(capacity=8, eviction=eviction)
        for i in range(64):
            cache.put("m", np.array([float(i)]), i)
        assert len(cache) <= 8

    def test_frequent_query_stays_resident_under_churn(self):
        cache = PredictionCache(capacity=8, eviction="clock")
        hot = np.array([123.0])
        cache.put("m", hot, "hot")
        for i in range(100):
            assert cache.fetch("m", hot) == "hot"
            cache.put("m", np.array([float(i)]), i)
        assert cache.fetch("m", hot) == "hot"
