"""Tests for workload arrival processes, clients and feedback streams."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.arrivals import BurstyArrivals, ConstantArrivals, PoissonArrivals
from repro.workloads.feedback import FeedbackStream, degrade_prediction


class TestConstantArrivals:
    def test_gaps_are_constant(self):
        gaps = list(ConstantArrivals(rate_qps=100).gaps(5))
        assert gaps == [0.01] * 5

    def test_arrival_times_monotonic(self):
        times = ConstantArrivals(rate_qps=50).arrival_times(10)
        assert np.all(np.diff(times) > 0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ConstantArrivals(rate_qps=0)


class TestPoissonArrivals:
    def test_mean_rate_approximately_matches(self):
        gaps = np.array(list(PoissonArrivals(rate_qps=200, random_state=0).gaps(5000)))
        assert 1.0 / gaps.mean() == pytest.approx(200, rel=0.1)

    def test_deterministic_given_seed(self):
        a = list(PoissonArrivals(100, random_state=3).gaps(10))
        b = list(PoissonArrivals(100, random_state=3).gaps(10))
        assert a == b

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate_qps=-1)


class TestBurstyArrivals:
    def test_produces_requested_number_of_gaps(self):
        gaps = list(BurstyArrivals(1000, 10, random_state=0).gaps(500))
        assert len(gaps) == 500
        assert all(gap >= 0 for gap in gaps)

    def test_burst_rate_exceeds_idle_rate_on_average(self):
        process = BurstyArrivals(
            burst_qps=2000, idle_qps=20, mean_burst_length=100, mean_idle_length=100, random_state=1
        )
        gaps = np.array(list(process.gaps(4000)))
        # Mixture mean gap must lie strictly between the two pure-rate gaps.
        assert 1.0 / 2000 < gaps.mean() < 1.0 / 20

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(0, 10)
        with pytest.raises(ValueError):
            BurstyArrivals(10, 10, mean_burst_length=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=300))
    def test_always_yields_exactly_n(self, n):
        gaps = list(BurstyArrivals(100, 10, random_state=0).gaps(n))
        assert len(gaps) == n


class TestFeedbackStream:
    def test_yields_requested_number_of_events(self):
        stream = FeedbackStream(inputs=[1, 2, 3], labels=["a", "b", "c"], random_state=0)
        events = list(stream.events(10))
        assert len(events) == 10
        assert [e.index for e in events] == list(range(10))

    def test_events_pair_inputs_with_their_labels(self):
        inputs = list(range(20))
        labels = [i * 10 for i in inputs]
        stream = FeedbackStream(inputs, labels, random_state=1)
        for event in stream.events(40):
            assert event.label == event.input * 10

    def test_user_ids_travel_with_events(self):
        stream = FeedbackStream([1, 2], ["a", "b"], user_ids=["u1", "u2"], shuffle=False, random_state=0)
        events = list(stream.events(2))
        assert {(e.input, e.user_id) for e in events} == {(1, "u1"), (2, "u2")}

    def test_validation(self):
        with pytest.raises(ValueError):
            FeedbackStream([1], [1, 2])
        with pytest.raises(ValueError):
            FeedbackStream([], [])
        stream = FeedbackStream([1], [1])
        with pytest.raises(ValueError):
            list(stream.events(0))


class TestDegradePrediction:
    def test_full_corruption_always_changes_the_label(self, rng):
        for _ in range(50):
            assert degrade_prediction(3, n_classes=10, rng=rng, corruption_rate=1.0) != 3

    def test_zero_corruption_is_identity(self, rng):
        assert degrade_prediction(3, n_classes=10, rng=rng, corruption_rate=0.0) == 3

    def test_partial_corruption_rate(self, rng):
        changed = sum(
            degrade_prediction(1, n_classes=5, rng=rng, corruption_rate=0.5) != 1
            for _ in range(2000)
        )
        assert 800 < changed < 1200

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            degrade_prediction(1, 5, rng, corruption_rate=1.5)
