"""Tests for the selection-layer experiment drivers (Figures 7-10)."""

import numpy as np
import pytest

from repro.evaluation.online import (
    ensemble_accuracy_experiment,
    model_failure_experiment,
    personalization_experiment,
    straggler_experiment,
)
from repro.selection.exp4 import Exp4Policy


@pytest.fixture(scope="module")
def synthetic_predictions():
    """Five synthetic models of varying accuracy on a 500-query eval set."""
    rng = np.random.default_rng(0)
    n = 500
    n_classes = 10
    y_true = rng.integers(0, n_classes, size=n)
    accuracies = {
        "model-1": 0.70,
        "model-2": 0.75,
        "model-3": 0.80,
        "model-4": 0.85,
        "model-5": 0.90,
    }
    predictions = {}
    for name, accuracy in accuracies.items():
        correct = rng.random(n) < accuracy
        wrong = (y_true + rng.integers(1, n_classes, size=n)) % n_classes
        predictions[name] = np.where(correct, y_true, wrong)
    return predictions, y_true


class TestEnsembleAccuracy:
    def test_ensemble_beats_best_single_model(self, synthetic_predictions):
        predictions, y_true = synthetic_predictions
        result = ensemble_accuracy_experiment(predictions, y_true, agreement_threshold=4)
        assert result.ensemble_error < result.single_model_error

    def test_confident_subset_has_lower_error(self, synthetic_predictions):
        predictions, y_true = synthetic_predictions
        result = ensemble_accuracy_experiment(predictions, y_true, agreement_threshold=5)
        assert result.confident_error < result.ensemble_error
        assert result.unsure_error > result.confident_error
        assert 0.0 < result.confident_fraction < 1.0

    def test_per_model_errors_reported(self, synthetic_predictions):
        predictions, y_true = synthetic_predictions
        result = ensemble_accuracy_experiment(predictions, y_true)
        assert set(result.per_model_errors) == set(predictions)
        assert result.single_model_error == pytest.approx(min(result.per_model_errors.values()))

    def test_as_row_structure(self, synthetic_predictions):
        predictions, y_true = synthetic_predictions
        row = ensemble_accuracy_experiment(predictions, y_true, agreement_threshold=4).as_row()
        assert "ensemble" in row and "single_model" in row

    def test_validation(self, synthetic_predictions):
        predictions, y_true = synthetic_predictions
        with pytest.raises(ValueError):
            ensemble_accuracy_experiment({}, y_true)
        with pytest.raises(ValueError):
            ensemble_accuracy_experiment(predictions, y_true, agreement_threshold=99)


class TestModelFailure:
    def test_policies_track_best_model_then_recover(self, synthetic_predictions):
        predictions, y_true = synthetic_predictions
        result = model_failure_experiment(
            predictions,
            y_true,
            num_queries=6000,
            degrade_start=2000,
            degrade_end=4000,
            random_state=0,
        )
        finals = result.final_errors()
        # The degraded best model ends up with a worse cumulative error than
        # either adaptive policy.
        assert finals["Exp3"] < finals["model-5"]
        assert finals["Exp4"] < finals["model-5"]
        # The policies end close to (or better than) the best non-degraded model.
        best_static = min(finals[f"model-{i}"] for i in range(1, 5))
        assert finals["Exp4"] <= best_static + 0.05

    def test_error_spikes_inside_degradation_window(self, synthetic_predictions):
        predictions, y_true = synthetic_predictions
        result = model_failure_experiment(
            predictions, y_true, num_queries=3000, degrade_start=1000, degrade_end=3000,
            degraded_model="model-5", random_state=0,
        )
        curve = result.cumulative_errors["model-5"]
        assert curve[2999] > curve[999]

    def test_curve_lengths_match_num_queries(self, synthetic_predictions):
        predictions, y_true = synthetic_predictions
        result = model_failure_experiment(
            predictions, y_true, num_queries=500, degrade_start=100, degrade_end=200, random_state=0
        )
        assert all(len(curve) == 500 for curve in result.cumulative_errors.values())

    def test_validation(self, synthetic_predictions):
        predictions, y_true = synthetic_predictions
        with pytest.raises(ValueError):
            model_failure_experiment(predictions, y_true, num_queries=100, degrade_start=90, degrade_end=80)
        with pytest.raises(ValueError):
            model_failure_experiment({}, y_true)


class TestStragglerExperiment:
    def test_mitigation_bounds_p99_latency(self, synthetic_predictions):
        predictions, y_true = synthetic_predictions
        result = straggler_experiment(
            predictions, y_true, ensemble_size=5, slo_ms=20.0, num_queries=800, random_state=0
        )
        assert result.mitigated_p99_latency_ms <= 20.0 + 1e-9
        assert result.blocking_p99_latency_ms > result.mitigated_p99_latency_ms

    def test_missing_fraction_grows_with_ensemble_size(self, synthetic_predictions):
        predictions, y_true = synthetic_predictions
        small = straggler_experiment(predictions, y_true, ensemble_size=2, num_queries=800, random_state=0)
        large = straggler_experiment(predictions, y_true, ensemble_size=5, num_queries=800, random_state=0)
        assert large.p99_missing_fraction >= small.p99_missing_fraction

    def test_accuracy_close_to_blocking_accuracy(self, synthetic_predictions):
        predictions, y_true = synthetic_predictions
        result = straggler_experiment(
            predictions, y_true, ensemble_size=5, num_queries=1000, random_state=0
        )
        assert result.accuracy >= result.full_ensemble_accuracy - 0.05

    def test_row_shape(self, synthetic_predictions):
        predictions, y_true = synthetic_predictions
        row = straggler_experiment(predictions, y_true, ensemble_size=3, num_queries=100, random_state=0).as_row()
        assert row["ensemble_size"] == 3
        assert "mitigated_p99_ms" in row

    def test_validation(self, synthetic_predictions):
        predictions, y_true = synthetic_predictions
        with pytest.raises(ValueError):
            straggler_experiment(predictions, y_true, ensemble_size=0)
        with pytest.raises(ValueError):
            straggler_experiment(predictions, y_true, ensemble_size=99)


class TestPersonalization:
    def _build_streams(self, n_users=12, n_steps=8, seed=0):
        """Two dialects; each dialect's model is right for its own users."""
        rng = np.random.default_rng(seed)
        model_names = ["dialect-0", "dialect-1", "no-dialect-global"]
        user_streams, dialect_of_user = {}, {}
        for u in range(n_users):
            dialect = u % 2
            user = f"user-{u}"
            dialect_of_user[user] = dialect
            stream = []
            for step in range(n_steps):
                truth = int(rng.integers(0, 5))
                per_model = {}
                for name in model_names:
                    if name == f"dialect-{dialect}":
                        accuracy = 0.85
                    elif name == "no-dialect-global":
                        accuracy = 0.7
                    else:
                        accuracy = 0.4
                    correct = rng.random() < accuracy
                    per_model[name] = truth if correct else (truth + 1) % 5
                stream.append((step, per_model, truth))
            user_streams[user] = stream
        return user_streams, dialect_of_user, model_names

    def test_policy_beats_global_model_after_feedback(self):
        user_streams, dialect_of_user, _ = self._build_streams(n_users=30, n_steps=9)
        result = personalization_experiment(
            user_streams,
            dialect_of_user,
            dialect_model_name={0: "dialect-0", 1: "dialect-1"},
            global_model_name="no-dialect-global",
            policy=Exp4Policy(eta=0.8),
            max_feedback=8,
        )
        # After several rounds of feedback the contextual policy should be at
        # least as good as the dialect-oblivious model (Figure 10's gap).
        assert np.mean(result.clipper_policy_error[4:]) <= np.mean(result.no_dialect_error[4:]) + 0.05
        assert len(result.feedback_counts) == 9

    def test_static_dialect_beats_global(self):
        user_streams, dialect_of_user, _ = self._build_streams(n_users=30, n_steps=6, seed=1)
        result = personalization_experiment(
            user_streams,
            dialect_of_user,
            dialect_model_name={0: "dialect-0", 1: "dialect-1"},
            global_model_name="no-dialect-global",
            max_feedback=5,
        )
        assert np.mean(result.static_dialect_error) < np.mean(result.no_dialect_error)

    def test_rows_rendering(self):
        user_streams, dialect_of_user, _ = self._build_streams(n_users=4, n_steps=3)
        result = personalization_experiment(
            user_streams,
            dialect_of_user,
            dialect_model_name={0: "dialect-0", 1: "dialect-1"},
            global_model_name="no-dialect-global",
            max_feedback=2,
        )
        rows = result.as_rows()
        assert rows[0]["feedback"] == 0
        assert {"static_dialect", "no_dialect", "clipper_policy"} <= set(rows[0])

    def test_empty_streams_rejected(self):
        with pytest.raises(ValueError):
            personalization_experiment({}, {}, {}, "global")
