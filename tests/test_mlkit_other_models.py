"""Tests for kNN, Gaussian naive Bayes and the MLP."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.mlkit import GaussianNB, KNeighborsClassifier, MLPClassifier


@pytest.fixture(scope="module")
def blob_dataset():
    return make_classification(
        n_samples=500, n_features=12, n_classes=3, difficulty=0.4, random_state=11
    )


class TestKNN:
    def test_learns_blobs(self, blob_dataset):
        ds = blob_dataset
        model = KNeighborsClassifier(n_neighbors=5).fit(ds.X_train, ds.y_train)
        assert model.score(ds.X_test, ds.y_test) > 0.8

    def test_one_neighbor_memorizes_training_data(self, blob_dataset):
        ds = blob_dataset
        model = KNeighborsClassifier(n_neighbors=1).fit(ds.X_train, ds.y_train)
        assert model.score(ds.X_train[:50], ds.y_train[:50]) == 1.0

    def test_reference_point_cap(self, blob_dataset):
        ds = blob_dataset
        model = KNeighborsClassifier(
            n_neighbors=3, max_reference_points=50, random_state=0
        ).fit(ds.X_train, ds.y_train)
        assert model._X.shape[0] == 50

    def test_proba_valid(self, blob_dataset):
        ds = blob_dataset
        model = KNeighborsClassifier(n_neighbors=5).fit(ds.X_train, ds.y_train)
        proba = model.predict_proba(ds.X_test[:10])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0)


class TestGaussianNB:
    def test_learns_blobs(self, blob_dataset):
        ds = blob_dataset
        model = GaussianNB().fit(ds.X_train, ds.y_train)
        assert model.score(ds.X_test, ds.y_test) > 0.8

    def test_probabilities_valid(self, blob_dataset):
        ds = blob_dataset
        model = GaussianNB().fit(ds.X_train, ds.y_train)
        proba = model.predict_proba(ds.X_test)
        assert np.all(proba >= 0)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_handles_constant_features(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 4))
        X[:, 2] = 1.0  # constant feature: zero variance
        y = (X[:, 0] > 0).astype(int)
        model = GaussianNB().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianNB(var_smoothing=0)


class TestMLP:
    def test_learns_blobs(self, blob_dataset):
        ds = blob_dataset
        model = MLPClassifier(hidden_layers=(32,), epochs=20, random_state=0).fit(
            ds.X_train, ds.y_train
        )
        assert model.score(ds.X_test, ds.y_test) > 0.85

    def test_solves_xor(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(600, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        model = MLPClassifier(hidden_layers=(16, 16), epochs=60, learning_rate=0.1, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_deeper_models_have_more_parameters(self, blob_dataset):
        ds = blob_dataset
        shallow = MLPClassifier(hidden_layers=(16,), epochs=2, random_state=0).fit(
            ds.X_train, ds.y_train
        )
        deep = MLPClassifier(hidden_layers=(64, 32, 16), epochs=2, random_state=0).fit(
            ds.X_train, ds.y_train
        )
        assert deep.n_parameters_ > shallow.n_parameters_
        assert deep.n_layers_ == 4
        assert shallow.n_layers_ == 2

    def test_probabilities_valid(self, blob_dataset):
        ds = blob_dataset
        model = MLPClassifier(hidden_layers=(16,), epochs=5, random_state=0).fit(
            ds.X_train, ds.y_train
        )
        proba = model.predict_proba(ds.X_test[:20])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-6)

    def test_deterministic_given_seed(self, blob_dataset):
        ds = blob_dataset
        m1 = MLPClassifier(hidden_layers=(16,), epochs=3, random_state=9).fit(ds.X_train, ds.y_train)
        m2 = MLPClassifier(hidden_layers=(16,), epochs=3, random_state=9).fit(ds.X_train, ds.y_train)
        np.testing.assert_allclose(m1.predict_proba(ds.X_test), m2.predict_proba(ds.X_test))

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layers=(0,))
        with pytest.raises(ValueError):
            MLPClassifier(momentum=1.0)
        with pytest.raises(ValueError):
            MLPClassifier(learning_rate=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict(np.zeros((1, 3)))
