"""Durability tier: WAL framing, torn tails, snapshots, and restore fidelity."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.exceptions import StateStoreError
from repro.state.durable import DurableKeyValueStore
from repro.state.kvstore import KeyValueStore
from repro.state.wal import MAGIC, WalWriter, frame, read_records


def wal_path(directory):
    return os.path.join(str(directory), "wal.log")


class TestWalFraming:
    def test_round_trip(self, tmp_path):
        path = wal_path(tmp_path)
        writer = WalWriter(path, fsync="never")
        payloads = [b"one", b"two", b"", b"x" * 10_000]
        for payload in payloads:
            writer.append(payload)
        writer.close()
        records, recovery = read_records(path)
        assert records == payloads
        assert recovery.records == len(payloads)
        assert not recovery.truncated
        assert recovery.dropped_bytes == 0

    def test_missing_file_is_empty_log(self, tmp_path):
        records, recovery = read_records(wal_path(tmp_path))
        assert records == []
        assert not recovery.truncated

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(StateStoreError):
            WalWriter(wal_path(tmp_path), fsync="sometimes")

    def test_torn_final_record_dropped(self, tmp_path):
        path = wal_path(tmp_path)
        writer = WalWriter(path, fsync="never")
        writer.append(b"intact")
        writer.close()
        # A crash mid-append leaves a half-written frame at the tail.
        torn = frame(b"this record was torn mid-write")[:-7]
        with open(path, "ab") as handle:
            handle.write(torn)
        records, recovery = read_records(path)
        assert records == [b"intact"]
        assert recovery.truncated
        assert recovery.dropped_bytes == len(torn)
        assert "torn" in recovery.reason

    def test_truncated_header_at_tail(self, tmp_path):
        path = wal_path(tmp_path)
        writer = WalWriter(path, fsync="never")
        writer.append(b"intact")
        writer.close()
        with open(path, "ab") as handle:
            handle.write(MAGIC + b"\x00")  # not even a full header
        records, recovery = read_records(path)
        assert records == [b"intact"]
        assert recovery.truncated
        assert "header" in recovery.reason

    def test_corrupt_crc_ends_the_log(self, tmp_path):
        path = wal_path(tmp_path)
        writer = WalWriter(path, fsync="never")
        writer.append(b"first")
        writer.append(b"second")
        writer.append(b"third")
        writer.close()
        # Flip one payload byte of the second record: its CRC no longer
        # matches, so it and everything after it must be dropped.
        first_len = len(frame(b"first"))
        data = bytearray(open(path, "rb").read())
        data[first_len + 10 + 3] ^= 0xFF
        open(path, "wb").write(bytes(data))
        records, recovery = read_records(path)
        assert records == [b"first"]
        assert recovery.truncated
        assert "CRC" in recovery.reason
        assert recovery.dropped_bytes > 0

    def test_garbage_magic_ends_the_log(self, tmp_path):
        path = wal_path(tmp_path)
        writer = WalWriter(path, fsync="never")
        writer.append(b"good")
        writer.close()
        with open(path, "ab") as handle:
            handle.write(b"ZZ" + b"\x00" * 20)
        records, recovery = read_records(path)
        assert records == [b"good"]
        assert recovery.truncated
        assert "invalid frame header" in recovery.reason


class TestDurableStore:
    def make(self, tmp_path, **kwargs):
        kwargs.setdefault("fsync", "never")
        return DurableKeyValueStore(str(tmp_path), **kwargs)

    def test_restart_restores_everything(self, tmp_path):
        store = self.make(tmp_path)
        v1 = store.put("management", "applications", {"app": {"x": 1}})
        assert store.put_if_version("management", "applications", {"app": {"x": 2}}, v1)
        store.put("other", "key", [1, 2, 3])
        store.put("other", "doomed", "bye")
        store.delete("other", "doomed")
        store.close()

        reopened = self.make(tmp_path)
        assert reopened.get("management", "applications") == {"app": {"x": 2}}
        assert reopened.get("other", "key") == [1, 2, 3]
        assert not reopened.contains("other", "doomed")
        assert reopened.recovery.clean
        assert reopened.recovery.replayed == 5

    def test_versions_and_cas_survive_restart(self, tmp_path):
        store = self.make(tmp_path)
        store.put("ns", "k", "a")
        _, version = store.get_with_version("ns", "k")
        store.close()

        reopened = self.make(tmp_path)
        _, recovered_version = reopened.get_with_version("ns", "k")
        assert recovered_version == version
        # CAS against the pre-crash version must succeed exactly once.
        assert reopened.put_if_version("ns", "k", "b", recovered_version)
        assert not reopened.put_if_version("ns", "k", "c", recovered_version)

    def test_torn_tail_loses_only_final_record(self, tmp_path):
        store = self.make(tmp_path)
        store.put("ns", "committed", 1)
        store.close()
        torn = frame(json.dumps({"op": "put", "seq": 99, "ns": "ns",
                                 "key": "lost", "value": 2}).encode())[:-3]
        with open(wal_path(tmp_path), "ab") as handle:
            handle.write(torn)

        reopened = self.make(tmp_path)
        assert reopened.get("ns", "committed") == 1
        assert not reopened.contains("ns", "lost")
        assert not reopened.recovery.clean
        assert reopened.recovery.wal.truncated
        # Appending after the repair must produce a readable log again.
        reopened.put("ns", "after", 3)
        reopened.close()
        final = self.make(tmp_path)
        assert final.get("ns", "after") == 3

    def test_snapshot_replay_equivalence(self, tmp_path):
        store = self.make(tmp_path)
        for i in range(10):
            store.put("ns", f"k{i}", i)
        store.delete("ns", "k3")
        expected = {key: store.get("ns", key) for key in store.keys("ns")}

        replayed = self.make(tmp_path / "copy")  # fresh dir: emptiness sanity
        assert replayed.size() == 0

        # State rebuilt purely from the WAL...
        from_wal = self.make(tmp_path)
        assert {k: from_wal.get("ns", k) for k in from_wal.keys("ns")} == expected
        # ...equals state rebuilt from snapshot (+ empty WAL) after compaction.
        from_wal.compact()
        assert from_wal.wal.size == 0
        from_wal.close()
        from_snapshot = self.make(tmp_path)
        assert from_snapshot.recovery.snapshot_entries == 9
        assert from_snapshot.recovery.wal_records == 0
        assert {
            k: from_snapshot.get("ns", k) for k in from_snapshot.keys("ns")
        } == expected

    def test_interrupted_compaction_replay_is_idempotent(self, tmp_path):
        store = self.make(tmp_path)
        store.put("ns", "a", 1)
        store.put("ns", "b", 2)
        # Simulate a crash after the snapshot renamed but before the WAL was
        # truncated: take the snapshot, then put the journaled records back.
        wal_before = open(wal_path(tmp_path), "rb").read()
        store.compact()
        store.close()
        with open(wal_path(tmp_path), "wb") as handle:
            handle.write(wal_before)

        reopened = self.make(tmp_path)
        # The leftover records carry seqs <= the snapshot's and are skipped.
        assert reopened.recovery.skipped == 2
        assert reopened.recovery.replayed == 0
        assert reopened.get("ns", "a") == 1
        assert reopened.get("ns", "b") == 2
        _, version = reopened.get_with_version("ns", "b")
        assert reopened.put_if_version("ns", "b", 3, version)

    def test_auto_compaction_truncates_wal(self, tmp_path):
        store = self.make(tmp_path, auto_compact_records=5)
        for i in range(12):
            store.put("ns", f"k{i}", i)
        # Two automatic compactions have run; the WAL holds < 5 records.
        records, _ = read_records(wal_path(tmp_path))
        assert len(records) < 5
        store.close()
        reopened = self.make(tmp_path)
        assert reopened.size() == 12

    def test_ttl_ages_across_restart(self, tmp_path):
        mono = [100.0]
        wall = [1_000.0]
        store = DurableKeyValueStore(
            str(tmp_path), fsync="never",
            clock=lambda: mono[0], wall_clock=lambda: wall[0],
        )
        store.put("ns", "short", "x", ttl_s=5.0)
        store.put("ns", "long", "y", ttl_s=500.0)
        store.put("ns", "forever", "z")
        store.close()

        wall[0] += 60.0  # the process was dead for a minute
        reopened = DurableKeyValueStore(
            str(tmp_path), fsync="never",
            clock=lambda: mono[0], wall_clock=lambda: wall[0],
        )
        assert not reopened.contains("ns", "short")
        assert reopened.recovery.expired_dropped == 1
        assert reopened.get("ns", "long") == "y"
        assert reopened.get("ns", "forever") == "z"
        # The survivor's remaining TTL shrank by the downtime.
        mono[0] += 441.0  # 500 - 60 = 440 remaining; one second past it
        assert not reopened.contains("ns", "long")
        assert reopened.get("ns", "forever") == "z"

    def test_unserializable_value_rejected_before_mutation(self, tmp_path):
        store = self.make(tmp_path)
        store.put("ns", "k", 1)
        with pytest.raises(StateStoreError):
            store.put("ns", "k", object())
        assert store.get("ns", "k") == 1  # store and journal both untouched
        store.close()
        assert self.make(tmp_path / "b").size() == 0
        reopened = self.make(tmp_path)
        assert reopened.get("ns", "k") == 1

    def test_numpy_scalars_round_trip_as_numbers(self, tmp_path):
        np = pytest.importorskip("numpy")
        store = self.make(tmp_path)
        store.put("ns", "f", np.float64(0.5))
        store.put("ns", "i", np.int64(7))
        store.close()
        reopened = self.make(tmp_path)
        assert reopened.get("ns", "f") == 0.5
        assert reopened.get("ns", "i") == 7

    def test_clear_is_journaled(self, tmp_path):
        store = self.make(tmp_path)
        store.put("a", "k", 1)
        store.put("b", "k", 2)
        store.clear("a")
        store.close()
        reopened = self.make(tmp_path)
        assert not reopened.contains("a", "k")
        assert reopened.get("b", "k") == 2

    def test_drop_in_for_in_memory_store(self, tmp_path):
        durable = self.make(tmp_path)
        memory = KeyValueStore()
        for store in (durable, memory):
            v = store.put("ns", "k", {"x": 1})
            assert store.put_if_version("ns", "k", {"x": 2}, v) is True
            assert store.put_if_version("ns", "k", {"x": 3}, v) is False
            assert store.get("ns", "k") == {"x": 2}
            assert store.keys("ns") == ["k"]
        durable.close()
