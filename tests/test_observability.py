"""Tests for the observability layer: tracing, Prometheus exposition,
structured logging, and the tail-capture path end-to-end over HTTP.

The end-to-end class is the acceptance scenario of the tracing PR: an
SLO-missed query (slow container, small SLO, default output, straggler
mitigation) must be tail-captured with a complete span tree — queue wait,
RPC legs and the deadline-miss marker — retrievable via
``GET /api/v1/trace/<id>``, with the trace id visible in the HTTP response
header and the trace listed under ``GET /api/v1/traces?slow=1``.
"""

import asyncio
import io
import json
import logging

import pytest

from helpers import run_async
from repro.api.http import create_server
from repro.containers.noop import NoOpContainer
from repro.containers.overhead import SimulatedLatencyContainer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment, TracingConfig
from repro.core.frontend import QueryFrontend
from repro.core.metrics import MetricsRegistry
from repro.core.types import Query
from repro.observability.logging import configure_logging, get_logger
from repro.observability.prometheus import (
    parse_exposition,
    render_prometheus,
    validate,
)
from repro.observability.tracing import (
    TRACE_RETRIED,
    TRACE_SLO_MISS,
    TraceRecord,
    TraceRegistry,
    Tracer,
    flag_names,
    format_trace_id,
)
from repro.rpc.protocol import RpcRequest, RpcResponse


class _Config:
    """Bare tracing-config stand-in (Tracer reads attributes, not the type)."""

    def __init__(self, **kwargs):
        self.enabled = kwargs.get("enabled", True)
        self.sample_every = kwargs.get("sample_every", 256)
        self.tail_capture = kwargs.get("tail_capture", True)
        self.ring_capacity = kwargs.get("ring_capacity", 512)


class TestTracer:
    def test_disabled_tracer_begins_nothing(self):
        tracer = Tracer(_Config(enabled=False))
        assert tracer.begin() is None
        assert tracer.begin(trace_id="forced") is None
        assert tracer.capture_event("x") is None
        assert not tracer.active

    def test_head_sampling_period(self):
        tracer = Tracer(_Config(sample_every=4))
        picked = [tracer.begin() is not None for _ in range(8)]
        assert picked == [False, False, False, True, False, False, False, True]

    def test_client_trace_id_forces_sampling(self):
        tracer = Tracer(_Config(sample_every=1_000_000))
        ctx = tracer.begin(trace_id="client-id-1")
        assert ctx is not None and ctx.sampled
        trace_id = tracer.finish(ctx)
        assert trace_id == "client-id-1"
        assert tracer.registry.get("client-id-1") is not None

    def test_boring_shadow_recycles_without_id(self):
        tracer = Tracer(_Config(sample_every=1_000_000))
        ctx = tracer.shadow(0.0)
        assert not ctx.sampled and ctx.trace_id is None
        assert tracer.finish(ctx) is None
        assert len(tracer.registry) == 0
        # The context went back to the pool and comes out again.
        assert tracer.shadow(1.0) is ctx

    def test_flagged_shadow_commits_with_fresh_id(self):
        tracer = Tracer(_Config(sample_every=1_000_000))
        ctx = tracer.shadow(0.0)
        ctx.spans.append(("queue.wait", 0.0, 0.1, None))
        trace_id = tracer.finish(ctx, slo_missed=True, query_id=7)
        assert trace_id is not None
        record = tracer.registry.get(trace_id)
        assert record is not None
        assert record.flags & TRACE_SLO_MISS
        assert record.query_id == 7
        assert not record.sampled
        # A second boring shadow does not reuse the committed context.
        fresh = tracer.shadow(2.0)
        assert fresh is not ctx

    def test_sampled_trace_feeds_stage_histograms(self):
        metrics = MetricsRegistry()
        tracer = Tracer(_Config(sample_every=1), metrics=metrics)
        ctx = tracer.begin()
        ctx.spans.append(("selection.select", 0.0, 0.002, None))
        ctx.spans.append(("cache.lookup", 0.002, 0.003, None))
        assert tracer.finish(ctx) is not None
        snapshot = metrics.snapshot()
        assert 'predict.stage_ms{stage="selection.select"}' in snapshot.histograms
        assert 'predict.stage_ms{stage="cache.lookup"}' in snapshot.histograms

    def test_capture_event_commits_single_span(self):
        tracer = Tracer(_Config())
        trace_id = tracer.capture_event(
            "canary.abort", meta={"model": "m"}, flags=TRACE_RETRIED, component="routing"
        )
        record = tracer.registry.get(trace_id)
        assert record is not None
        assert record.component == "routing"
        assert record.spans[0][0] == "canary.abort"
        assert record.flags == TRACE_RETRIED

    def test_format_trace_id(self):
        assert format_trace_id("abc") == "abc"
        assert format_trace_id(255) == "00000000000000ff"

    def test_flag_names(self):
        assert flag_names(TRACE_SLO_MISS | TRACE_RETRIED) == ["slo_miss", "retried"]
        assert flag_names(0) == []


class TestTraceRegistry:
    @staticmethod
    def _record(trace_id, start=0.0, end=1.0, flags=0, component="engine"):
        return TraceRecord(
            trace_id=trace_id,
            component=component,
            start=start,
            end=end,
            flags=flags,
            spans=[("stage", start, end, None)],
        )

    def test_ring_evicts_oldest(self):
        registry = TraceRegistry(capacity=2)
        for i in range(3):
            registry.commit(self._record(f"t{i}", end=float(i + 1)))
        assert registry.get("t0") is None
        assert registry.get("t1") is not None
        assert registry.get("t2") is not None
        listed = [s["trace_id"] for s in registry.recent()]
        assert listed == ["t2", "t1"]

    def test_slow_filter_keeps_slo_misses_only(self):
        registry = TraceRegistry(capacity=8)
        registry.commit(self._record("fast", end=1.0))
        registry.commit(self._record("slow", end=2.0, flags=TRACE_SLO_MISS))
        slow = registry.recent(slow=True)
        assert [s["trace_id"] for s in slow] == ["slow"]
        assert "slo_miss" in slow[0]["flags"]

    def test_components_are_separate_rings(self):
        registry = TraceRegistry(capacity=1)
        registry.commit(self._record("e1", component="engine"))
        registry.commit(self._record("r1", component="routing"))
        assert registry.components() == ["engine", "routing"]
        # Capacity is per component: neither evicted the other.
        assert registry.get("e1") is not None and registry.get("r1") is not None
        assert [s["trace_id"] for s in registry.recent(component="routing")] == ["r1"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceRegistry(capacity=0)


class TestTraceTree:
    def test_spans_nest_by_containment(self):
        record = TraceRecord(
            trace_id="t",
            component="engine",
            start=0.0,
            end=0.1,
            flags=0,
            spans=[
                ("model.wait", 0.01, 0.09, None),
                ("rpc.send", 0.02, 0.03, None),
                ("rpc.wait", 0.03, 0.08, {"model": "m"}),
            ],
        )
        tree = record.to_tree()
        root = tree["root"]
        assert root["name"] == "request"
        (wait,) = root["children"]
        assert wait["name"] == "model.wait"
        assert [child["name"] for child in wait["children"]] == ["rpc.send", "rpc.wait"]
        assert wait["children"][1]["meta"] == {"model": "m"}

    def test_latecomer_span_past_end_is_absorbed(self):
        record = TraceRecord(
            trace_id="t",
            component="engine",
            start=0.0,
            end=0.05,
            flags=0,
            spans=[("rpc.wait", 0.01, 0.2, None)],
        )
        root = record.to_tree()["root"]
        assert [child["name"] for child in root["children"]] == ["rpc.wait"]


class TestRpcTracePropagation:
    def test_untraced_payloads_omit_trace_fields(self):
        request = RpcRequest(request_id=1, model_name="m", inputs=[1, 2])
        assert "trace" not in request.to_payload()
        response = RpcResponse(request_id=1, outputs=[0, 0])
        payload = response.to_payload()
        assert "trace" not in payload
        assert "eval_start" not in payload and "eval_end" not in payload

    def test_trace_header_round_trips(self):
        request = RpcRequest(
            request_id=1, model_name="m", inputs=[1], trace=(42, "client-id")
        )
        decoded = RpcRequest.from_payload(request.to_payload())
        assert decoded.trace == (42, "client-id")
        response = RpcResponse(
            request_id=1,
            outputs=[0],
            trace=(42,),
            eval_start=10.5,
            eval_end=10.75,
        )
        decoded = RpcResponse.from_payload(response.to_payload())
        assert decoded.trace == (42,)
        assert decoded.eval_start == 10.5 and decoded.eval_end == 10.75


class TestPrometheusExposition:
    @staticmethod
    def _registry():
        registry = MetricsRegistry()
        registry.counter("predict.count").increment(5)
        registry.meter("predict.throughput").mark(10)
        hist = registry.histogram("predict.latency_ms")
        for value in (0.05, 0.3, 3.0, 40.0):
            hist.observe(value)
        family = registry.histogram_family("predict.stage_ms", label="stage")
        family.labels("rpc.send").observe(0.2)
        family.labels("queue_wait").observe(1.5)
        return registry

    def test_render_validates_and_carries_app_label(self):
        text = render_prometheus({"demo": self._registry()})
        families = validate(text)
        counter = families["clipper_predict_count_total"]
        assert counter["type"] == "counter"
        (sample,) = counter["samples"]
        assert sample["labels"]["app"] == "demo"
        assert sample["value"] == 5.0

    def test_family_children_become_label_series(self):
        text = render_prometheus({"demo": self._registry()})
        families = validate(text)
        stage = families["clipper_predict_stage_ms"]
        stages = {
            sample["labels"]["stage"]
            for sample in stage["samples"]
            if sample["name"].endswith("_count")
        }
        assert stages == {"rpc.send", "queue_wait"}

    def test_histogram_buckets_cumulative_to_inf(self):
        text = render_prometheus({"demo": self._registry()})
        families = parse_exposition(text)
        latency = families["clipper_predict_latency_ms"]
        buckets = [
            sample
            for sample in latency["samples"]
            if sample["name"] == "clipper_predict_latency_ms_bucket"
        ]
        counts = [sample["value"] for sample in buckets]
        assert counts == sorted(counts)
        assert buckets[-1]["labels"]["le"] == "+Inf"
        assert buckets[-1]["value"] == 4.0
        # validate() enforces the same structural rules; must not raise.
        validate(text)

    def test_label_values_escape(self):
        registry = MetricsRegistry()
        registry.counter_family("odd", label="kind").labels('we"ird\\x').increment()
        text = render_prometheus({"a\\p\np": registry})
        families = validate(text)
        (sample,) = families["clipper_odd_total"]["samples"]
        assert sample["labels"]["kind"] == 'we"ird\\x'
        assert sample["labels"]["app"] == "a\\p\np"

    def test_help_and_type_lines_required(self):
        with pytest.raises(ValueError, match="missing TYPE"):
            validate('clipper_thing_total{app="a"} 1\n# HELP clipper_thing_total x\n')
        with pytest.raises(ValueError, match="empty exposition"):
            validate("")

    def test_malformed_lines_rejected(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_exposition("not a metric line at all!{ 3\n")
        with pytest.raises(ValueError, match="unparsable sample value"):
            parse_exposition("clipper_x 1.2.3\n")

    def test_meter_renders_as_rate_gauge(self):
        text = render_prometheus({"demo": self._registry()})
        families = validate(text)
        assert families["clipper_predict_throughput_rate"]["type"] == "gauge"


class TestStructuredLogging:
    def test_configure_is_idempotent(self):
        root = configure_logging(force=True)
        before = len(root.handlers)
        configure_logging()
        configure_logging()
        assert len(root.handlers) == before
        assert root.propagate is False

    def test_asyncio_logger_guarded_once(self):
        configure_logging(force=True)
        configure_logging()
        asyncio_logger = logging.getLogger("asyncio")
        structured = [
            h for h in asyncio_logger.handlers if getattr(h, "_repro_structured", False)
        ]
        assert len(structured) == 1

    def test_json_lines_with_extra_context(self):
        stream = io.StringIO()
        configure_logging(stream=stream, force=True)
        logger = get_logger("test.component")
        logger.info("deployed %s", "m:1", extra={"trace_id": "abc", "version": 3})
        payload = json.loads(stream.getvalue().strip())
        assert payload["event"] == "deployed m:1"
        assert payload["logger"] == "repro.test.component"
        assert payload["level"] == "INFO"
        assert payload["trace_id"] == "abc"
        assert payload["version"] == 3
        assert "ts" in payload
        configure_logging(force=True)

    def test_get_logger_namespaces_once(self):
        assert get_logger("api.http").name == "repro.api.http"
        assert get_logger("repro.api.http").name == "repro.api.http"


def _slow_app(name="slow"):
    clipper = Clipper(
        ClipperConfig(
            app_name=name,
            latency_slo_ms=40.0,
            selection_policy="single",
            default_output=-1,
            straggler_mitigation=True,
            # Head sampling effectively off: only tail capture can commit.
            tracing=TracingConfig(sample_every=1_000_000, tail_capture=True),
        )
    )
    clipper.deploy_model(
        ModelDeployment(
            name="sleepy",
            container_factory=lambda: SimulatedLatencyContainer(
                base_latency_ms=150.0, default_output=1
            ),
        )
    )
    return clipper


def _fast_app(name="fast"):
    clipper = Clipper(
        ClipperConfig(
            app_name=name,
            latency_slo_ms=500.0,
            selection_policy="single",
            tracing=TracingConfig(sample_every=1_000_000, tail_capture=True),
        )
    )
    clipper.deploy_model(
        ModelDeployment(
            name="noop", container_factory=lambda: NoOpContainer(output=1)
        )
    )
    return clipper


async def _http_request(port, method, target, body=None, headers=None):
    """One HTTP/1.1 exchange: returns (status, headers dict, decoded body)."""
    payload = b"" if body is None else json.dumps(body).encode()
    lines = [f"{method} {target} HTTP/1.1", "Host: test", "Connection: close"]
    if payload:
        lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(payload)}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    raw = ("\r\n".join(lines) + "\r\n\r\n").encode() + payload
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(raw)
        await writer.drain()
        response = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    head, _, body_bytes = response.partition(b"\r\n\r\n")
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split(" ", 2)[1])
    response_headers = {}
    for line in head_lines[1:]:
        name, _, value = line.partition(":")
        response_headers[name.strip().lower()] = value.strip()
    text = body_bytes.decode("utf-8")
    if response_headers.get("content-type", "").startswith("application/json"):
        return status, response_headers, json.loads(text)
    return status, response_headers, text


def _span_names(node, out):
    out.add(node["name"])
    for child in node.get("children", []):
        _span_names(child, out)
    return out


class TestEndToEndTailCapture:
    def test_slo_miss_is_tail_captured_with_full_span_tree(self):
        async def scenario():
            frontend = QueryFrontend()
            frontend.register_application(_slow_app())
            server = create_server(query=frontend)
            async with server:
                status, headers, body = await _http_request(
                    server.port,
                    "POST",
                    "/api/v1/slow/predict",
                    body={"input": [1.0, 2.0]},
                )
                assert status == 200
                assert body["default_used"] is True
                trace_id = headers.get("x-clipper-trace-id")
                assert trace_id, "SLO-missed query must expose its trace id"
                assert body["trace_id"] == trace_id

                # The batch is still evaluating when the deadline fires; the
                # dispatcher appends its queue/RPC spans to the committed
                # record once the container answers.
                await asyncio.sleep(0.4)

                status, _, tree = await _http_request(
                    server.port, "GET", f"/api/v1/trace/{trace_id}"
                )
                assert status == 200
                assert tree["trace_id"] == trace_id
                assert tree["sampled"] is False
                flags = set(tree["flags"])
                assert {"slo_miss", "default_used", "straggler"} <= flags
                names = _span_names(tree["root"], set())
                assert "queue.wait" in names
                assert "deadline.miss" in names
                assert "rpc.send" in names and "rpc.wait" in names
                assert "container.eval" in names

                status, _, listing = await _http_request(
                    server.port, "GET", "/api/v1/traces?slow=1"
                )
                assert status == 200
                assert listing["slow_only"] is True
                assert trace_id in [t["trace_id"] for t in listing["traces"]]

        run_async(scenario())

    def test_client_trace_header_force_samples_fast_query(self):
        async def scenario():
            frontend = QueryFrontend()
            frontend.register_application(_fast_app())
            server = create_server(query=frontend)
            async with server:
                status, headers, body = await _http_request(
                    server.port,
                    "POST",
                    "/api/v1/fast/predict",
                    body={"input": [3.0]},
                    headers={"X-Clipper-Trace-Id": "forced-trace-1"},
                )
                assert status == 200
                assert headers.get("x-clipper-trace-id") == "forced-trace-1"
                await asyncio.sleep(0.1)

                status, _, tree = await _http_request(
                    server.port, "GET", "/api/v1/trace/forced-trace-1"
                )
                assert status == 200
                assert tree["sampled"] is True
                names = _span_names(tree["root"], set())
                # Sampled traces carry the engine- and edge-side stage spans.
                assert "frontend.validate" in names
                assert "selection.select" in names
                assert "cache.lookup" in names
                assert "model.wait" in names

                # An untraced query leaves no response header behind.
                status, headers, _ = await _http_request(
                    server.port,
                    "POST",
                    "/api/v1/fast/predict",
                    body={"input": [3.0]},
                )
                assert status == 200
                assert "x-clipper-trace-id" not in headers

        run_async(scenario())

    def test_unknown_trace_id_is_404(self):
        async def scenario():
            frontend = QueryFrontend()
            frontend.register_application(_fast_app())
            server = create_server(query=frontend)
            async with server:
                status, _, body = await _http_request(
                    server.port, "GET", "/api/v1/trace/no-such-trace"
                )
                assert status == 404
                assert body["error"]["code"] == "route_not_found"

        run_async(scenario())

    def test_in_process_tail_capture_without_http(self):
        """The engine alone tail-captures an SLO miss (no REST edge needed)."""

        async def scenario():
            clipper = _slow_app()
            await clipper.start()
            try:
                prediction = await clipper.predict(
                    Query(app_name="slow", input=[9.0])
                )
                assert prediction.default_used
                assert prediction.trace_id is not None
                record = clipper.tracer.registry.get(prediction.trace_id)
                assert record is not None
                assert record.flags & TRACE_SLO_MISS
            finally:
                await clipper.stop()

        run_async(scenario())
