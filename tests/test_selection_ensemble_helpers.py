"""Tests for ensemble voting and confidence helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.selection.ensemble import (
    agreement_confidence,
    majority_vote,
    normalize_weights,
    weighted_vote,
)


class TestMajorityVote:
    def test_simple_majority(self):
        label, agreement = majority_vote({"a": 1, "b": 1, "c": 0})
        assert label == 1
        assert agreement == pytest.approx(2 / 3)

    def test_unanimous(self):
        label, agreement = majority_vote({"a": "cat", "b": "cat"})
        assert label == "cat"
        assert agreement == 1.0

    def test_tie_broken_deterministically(self):
        label1, _ = majority_vote({"a": 0, "b": 1})
        label2, _ = majority_vote({"b": 1, "a": 0})
        assert label1 == label2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            majority_vote({})


class TestWeightedVote:
    def test_weights_override_raw_counts(self):
        predictions = {"a": 0, "b": 1, "c": 1}
        weights = {"a": 10.0, "b": 0.1, "c": 0.1}
        label, agreement = weighted_vote(predictions, weights)
        assert label == 0
        assert agreement == pytest.approx(1 / 3)

    def test_missing_weight_treated_as_epsilon(self):
        predictions = {"a": 0, "b": 1}
        weights = {"a": 1.0}
        label, _ = weighted_vote(predictions, weights)
        assert label == 0

    def test_uniform_weights_match_majority(self):
        predictions = {"a": 2, "b": 2, "c": 3}
        assert weighted_vote(predictions, None) == majority_vote(predictions)


class TestAgreementConfidence:
    def test_full_agreement(self):
        assert agreement_confidence({"a": 1, "b": 1}, 1) == 1.0

    def test_partial_agreement(self):
        assert agreement_confidence({"a": 1, "b": 0}, 1) == pytest.approx(0.5)

    def test_missing_models_reduce_confidence(self):
        predictions = {"a": 1, "b": 1}
        assert agreement_confidence(predictions, 1, ensemble_size=4) == pytest.approx(0.5)

    def test_zero_ensemble_size(self):
        assert agreement_confidence({}, 1, ensemble_size=0) == 0.0


class TestNormalizeWeights:
    def test_sums_to_one(self):
        weights = normalize_weights({"a": 2.0, "b": 6.0})
        assert weights["a"] == pytest.approx(0.25)
        assert weights["b"] == pytest.approx(0.75)

    def test_all_zero_becomes_uniform(self):
        weights = normalize_weights({"a": 0.0, "b": 0.0})
        assert weights == {"a": 0.5, "b": 0.5}

    def test_negative_weights_clipped(self):
        weights = normalize_weights({"a": -1.0, "b": 1.0})
        assert weights["a"] == 0.0
        assert weights["b"] == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            normalize_weights({})


class TestVoteProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=4),
            st.integers(min_value=0, max_value=3),
            min_size=1,
            max_size=8,
        )
    )
    def test_winner_is_always_a_cast_vote_with_valid_agreement(self, predictions):
        label, agreement = majority_vote(predictions)
        assert label in predictions.values()
        assert 0.0 < agreement <= 1.0
        # The winner's count must be at least as large as any other label's.
        counts = {}
        for value in predictions.values():
            counts[value] = counts.get(value, 0) + 1
        assert counts[label] == max(counts.values())

    @settings(max_examples=100, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from(["m1", "m2", "m3", "m4", "m5"]),
            st.integers(min_value=0, max_value=2),
            min_size=1,
            max_size=5,
        ),
        st.dictionaries(
            st.sampled_from(["m1", "m2", "m3", "m4", "m5"]),
            st.floats(min_value=0.0, max_value=10.0),
            max_size=5,
        ),
    )
    def test_weighted_vote_agreement_is_unweighted_fraction(self, predictions, weights):
        label, agreement = weighted_vote(predictions, weights)
        expected = sum(1 for v in predictions.values() if v == label) / len(predictions)
        assert agreement == pytest.approx(expected)
