"""Regression tests for the serving hot path.

Pin down the perf-critical invariants of the predict/feedback path:

* the query input is hashed **exactly once** per ``predict()``/``feedback()``
  regardless of ensemble width or cache hit/miss,
* values stored through the by-hash cache API are found by the plain
  ``fetch`` API (same key construction),
* straggler late completions populate the cache under the same key the
  next query will look up, and
* the batching queue is event-driven: consumers wake immediately on
  enqueue and on close rather than on a poll interval.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from helpers import run_async

import repro.cache.prediction_cache as prediction_cache_module
import repro.core.types as types_module
from repro.batching.queue import BatchingQueue, PendingQuery
from repro.containers.base import ModelContainer
from repro.containers.noop import NoOpContainer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.types import Feedback, Query, hash_input


class SlowContainer(ModelContainer):
    """Sleeps longer than the SLO so every prediction is a straggler."""

    framework = "test"

    def __init__(self, delay_s: float = 0.08, output: int = 7) -> None:
        self.delay_s = delay_s
        self.output = output

    def predict_batch(self, inputs):
        time.sleep(self.delay_s)
        return [self.output] * len(inputs)


def make_clipper(num_models: int = 1, **config_kwargs) -> Clipper:
    defaults = dict(
        app_name="hotpath-test",
        latency_slo_ms=500.0,
        selection_policy="single" if num_models == 1 else "exp4",
    )
    defaults.update(config_kwargs)
    clipper = Clipper(ClipperConfig(**defaults))
    for i in range(num_models):
        clipper.deploy_model(
            ModelDeployment(
                name=f"m{i}",
                container_factory=lambda: NoOpContainer(output=1),
                serialize_rpc=False,
            )
        )
    return clipper


@pytest.fixture()
def hash_calls(monkeypatch):
    """Count every hash_input invocation reachable from the serving path."""
    calls = {"count": 0}
    real = types_module.hash_input

    def counting(x):
        calls["count"] += 1
        return real(x)

    monkeypatch.setattr(types_module, "hash_input", counting)
    monkeypatch.setattr(prediction_cache_module, "hash_input", counting)
    return calls


class TestHashOnce:
    def test_predict_hashes_exactly_once_on_miss_and_on_hit(self, hash_calls):
        async def scenario():
            clipper = make_clipper()
            await clipper.start()
            x = np.arange(16.0)

            hash_calls["count"] = 0
            await clipper.predict(Query(app_name="hotpath-test", input=x))
            assert hash_calls["count"] == 1  # cache miss: fetch + submit + put

            hash_calls["count"] = 0
            await clipper.predict(Query(app_name="hotpath-test", input=x))
            assert hash_calls["count"] == 1  # cache hit

            await clipper.stop()

        run_async(scenario())

    def test_ensemble_predict_hashes_exactly_once(self, hash_calls):
        async def scenario():
            clipper = make_clipper(num_models=3)
            await clipper.start()
            x = np.arange(16.0)
            hash_calls["count"] = 0
            await clipper.predict(Query(app_name="hotpath-test", input=x))
            assert hash_calls["count"] == 1  # one hash for three models
            await clipper.stop()

        run_async(scenario())

    def test_feedback_hashes_exactly_once(self, hash_calls):
        async def scenario():
            clipper = make_clipper(num_models=2)
            await clipper.start()
            x = np.arange(8.0)
            hash_calls["count"] = 0
            await clipper.feedback(
                Feedback(app_name="hotpath-test", input=x, label=1)
            )
            assert hash_calls["count"] == 1
            await clipper.stop()

        run_async(scenario())

    def test_query_input_hash_is_memoised(self, hash_calls):
        x = np.arange(8.0)
        query = Query(app_name="a", input=x)
        hash_calls["count"] = 0
        first = query.input_hash()
        second = query.input_hash()
        assert first == second == hash_input(x)
        # the two input_hash() calls share one memoised computation (the
        # direct hash_input(x) above uses this module's unpatched binding)
        assert hash_calls["count"] == 1

    def test_pending_query_carries_precomputed_hash(self):
        async def scenario():
            clipper = make_clipper()
            await clipper.start()
            record = next(iter(clipper._models.values()))
            captured = []
            original_put_nowait = record.queue.put_nowait

            def capturing_put_nowait(item):
                captured.append(item)
                original_put_nowait(item)

            # The unbounded-queue fast path enqueues via put_nowait.
            record.queue.put_nowait = capturing_put_nowait
            x = np.arange(4.0)
            await clipper.predict(Query(app_name="hotpath-test", input=x))
            assert captured
            assert captured[0].input_hash == hash_input(x)
            await clipper.stop()

        run_async(scenario())


class TestByHashInterop:
    def test_prediction_stored_by_hash_is_found_by_plain_fetch(self):
        async def scenario():
            clipper = make_clipper()
            await clipper.start()
            x = np.arange(12.0)
            await clipper.predict(Query(app_name="hotpath-test", input=x))
            model_key = str(clipper.deployed_models()[0])
            # The predict path stored via put_by_hash; both lookup styles hit.
            assert clipper.cache.fetch(model_key, x) == 1
            assert clipper.cache.fetch_by_hash(model_key, hash_input(x)) == 1
            await clipper.stop()

        run_async(scenario())

    def test_straggler_late_completion_populates_cache_under_same_key(self):
        async def scenario():
            clipper = Clipper(
                ClipperConfig(
                    app_name="hotpath-test",
                    latency_slo_ms=15.0,
                    selection_policy="single",
                    default_output=-1,
                )
            )
            clipper.deploy_model(
                ModelDeployment(
                    name="slow",
                    container_factory=lambda: SlowContainer(delay_s=0.08, output=7),
                    serialize_rpc=False,
                )
            )
            await clipper.start()
            x = np.arange(6.0)
            prediction = await clipper.predict(Query(app_name="hotpath-test", input=x))
            assert prediction.default_used
            assert prediction.models_missing == ("slow:1",)

            # Let the straggler finish; its late completion must land in the
            # cache under the key a fresh query (hashing the raw input) uses.
            deadline = time.monotonic() + 2.0
            while (
                clipper.cache.fetch("slow:1", x) is None
                and time.monotonic() < deadline
            ):
                await asyncio.sleep(0.02)
            assert clipper.cache.fetch("slow:1", x) == 7
            await clipper.stop()

        run_async(scenario())


class TestEventDrivenQueue:
    def test_close_wakes_blocked_consumer_immediately(self):
        async def scenario():
            queue = BatchingQueue()
            consumer = asyncio.get_running_loop().create_task(
                queue.get_batch(max_batch_size=4)
            )
            await asyncio.sleep(0.01)  # let the consumer park
            start = time.perf_counter()
            queue.close()
            batch = await consumer
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            assert batch == []
            assert elapsed_ms < 40.0  # no 50 ms poll tick

        run_async(scenario())

    def test_put_wakes_blocked_consumer_immediately(self):
        async def scenario():
            queue = BatchingQueue()
            consumer = asyncio.get_running_loop().create_task(
                queue.get_batch(max_batch_size=4)
            )
            await asyncio.sleep(0.01)
            start = time.perf_counter()
            queue.put_nowait(
                PendingQuery(
                    input=1, future=asyncio.get_running_loop().create_future()
                )
            )
            batch = await consumer
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            assert [item.input for item in batch] == [1]
            assert elapsed_ms < 40.0

        run_async(scenario())

    def test_wake_all_returns_empty_batch_to_parked_consumer(self):
        async def scenario():
            queue = BatchingQueue()
            consumer = asyncio.get_running_loop().create_task(
                queue.get_batch(max_batch_size=4)
            )
            await asyncio.sleep(0.01)
            queue.wake_all()
            assert await consumer == []
            assert not queue.closed  # wake_all is not close

        run_async(scenario())

    def test_wake_all_interrupts_delayed_batching_wait(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            queue = BatchingQueue()
            queue.put_nowait(PendingQuery(input=0, future=loop.create_future()))
            consumer = loop.create_task(
                queue.get_batch(max_batch_size=8, batch_wait_timeout_ms=500.0)
            )
            await asyncio.sleep(0.01)  # consumer is now topping up the batch
            start = time.perf_counter()
            queue.wake_all()
            batch = await consumer
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            assert [item.input for item in batch] == [0]  # partial batch flushed
            assert elapsed_ms < 100.0  # did not ride out the 500 ms timer

        run_async(scenario())

    def test_bounded_queue_applies_backpressure(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            queue = BatchingQueue(maxsize=2)
            for i in range(2):
                await queue.put(PendingQuery(input=i, future=loop.create_future()))
            blocked = loop.create_task(
                queue.put(PendingQuery(input=2, future=loop.create_future()))
            )
            await asyncio.sleep(0.01)
            assert not blocked.done()
            batch = await queue.get_batch(max_batch_size=2)
            assert len(batch) == 2
            await blocked  # space freed -> the parked put completes
            assert queue.qsize() == 1

        run_async(scenario())
