"""Unit tests for the routing layer's splits and table.

Covers the weighted-split determinism and statistics required by the
routing issue — the same query key always routes to the same arm, and over
10k seeded keys the observed weights sit within 2% of the configured ones —
plus the table's atomic-snapshot semantics and the version-resolution logic
that moved out of the serving engine.
"""

import pytest

from repro.core.exceptions import DeploymentError, RoutingError
from repro.core.metrics import MetricsRegistry
from repro.routing import (
    RoutingTable,
    TrafficSplit,
    assignment_fraction,
    parse_namespace_keys,
    selection_namespace,
)


class TestAssignmentFraction:
    def test_deterministic_and_in_range(self):
        values = [assignment_fraction(0, f"user-{i}") for i in range(200)]
        assert values == [assignment_fraction(0, f"user-{i}") for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_seed_repartitions_keys(self):
        keys = [f"user-{i}" for i in range(500)]
        a = [assignment_fraction(0, k) for k in keys]
        b = [assignment_fraction(1, k) for k in keys]
        assert a != b


class TestTrafficSplit:
    def test_single_split_routes_everything_to_one_arm(self):
        split = TrafficSplit.single("m:1")
        assert split.is_degenerate
        assert split.canary is None
        assert all(split.arm_for(f"k{i}") == "m:1" for i in range(50))

    def test_same_key_always_lands_on_the_same_arm(self):
        split = TrafficSplit.canary_split("m:1", "m:2", weight=0.3, seed=7)
        first = {f"user-{i}": split.arm_for(f"user-{i}") for i in range(1000)}
        for _ in range(3):
            for key, arm in first.items():
                assert split.arm_for(key) == arm
        # A rebuilt split with identical parameters assigns identically
        # (process-independent hash, not Python's salted hash()).
        rebuilt = TrafficSplit.canary_split("m:1", "m:2", weight=0.3, seed=7)
        assert all(rebuilt.arm_for(k) == arm for k, arm in first.items())

    @pytest.mark.parametrize("weight", [0.1, 0.25, 0.5, 0.9])
    def test_observed_weights_within_two_percent_over_10k_keys(self, weight):
        split = TrafficSplit.canary_split("m:1", "m:2", weight=weight, seed=42)
        hits = sum(split.arm_for(f"query-{i}") == "m:2" for i in range(10_000))
        assert abs(hits / 10_000 - weight) < 0.02

    def test_adjusting_weight_moves_a_superset_of_keys(self):
        """Growing the canary weight keeps every already-canaried key on the
        canary (the assignment fraction is per-key, the boundary moves)."""
        small = TrafficSplit.canary_split("m:1", "m:2", weight=0.1, seed=3)
        large = small.with_weight(0.5)
        canaried_small = {
            f"u{i}" for i in range(2000) if small.arm_for(f"u{i}") == "m:2"
        }
        canaried_large = {
            f"u{i}" for i in range(2000) if large.arm_for(f"u{i}") == "m:2"
        }
        assert canaried_small <= canaried_large
        assert len(canaried_large) > len(canaried_small)

    def test_weight_validation(self):
        with pytest.raises(RoutingError):
            TrafficSplit.canary_split("m:1", "m:2", weight=0.0)
        with pytest.raises(RoutingError):
            TrafficSplit.canary_split("m:1", "m:2", weight=1.5)
        with pytest.raises(RoutingError):
            TrafficSplit.canary_split("m:1", "m:1", weight=0.5)

    def test_full_weight_canary_takes_all_traffic(self):
        split = TrafficSplit.canary_split("m:1", "m:2", weight=1.0)
        assert all(split.arm_for(f"k{i}") == "m:2" for i in range(100))

    def test_record_round_trip(self):
        split = TrafficSplit.canary_split("m:1", "m:2", weight=0.25, seed=9)
        rebuilt = TrafficSplit.from_record(split.to_record())
        assert rebuilt == split
        assert rebuilt.weight_of("m:2") == 0.25
        assert rebuilt.keys() == ("m:1", "m:2")

    def test_namespace_round_trip(self):
        namespace = selection_namespace("app", ["a:1", "b:2"])
        assert parse_namespace_keys(namespace, "app") == ["a:1", "b:2"]
        assert parse_namespace_keys(namespace, "other-app") is None
        assert parse_namespace_keys("unrelated-namespace", "app") is None


class TestRoutingTableLifecycle:
    def make_table(self):
        return RoutingTable(metrics=MetricsRegistry(), seed=0)

    def test_activate_and_previous_tracking(self):
        table = self.make_table()
        table.activate("m", "m:1")
        assert table.active_key("m") == "m:1"
        assert table.previous_key("m") is None
        table.activate("m", "m:2")
        assert table.active_key("m") == "m:2"
        assert table.previous_key("m") == "m:1"

    def test_rollback_swaps_active_and_previous(self):
        table = self.make_table()
        table.activate("m", "m:1")
        table.activate("m", "m:2")
        assert table.rollback("m") == "m:1"
        assert table.active_key("m") == "m:1"
        assert table.previous_key("m") == "m:2"
        with pytest.raises(RoutingError):
            self.make_table().rollback("m")

    def test_canary_lifecycle_promote(self):
        table = self.make_table()
        table.activate("m", "m:1")
        split = table.start_canary("m", "m:2", weight=0.2)
        assert split.canary == "m:2"
        assert table.canaries() == {"m": split}
        adjusted = table.adjust_canary("m", weight=0.6)
        assert adjusted.canary_weight == 0.6
        assert table.promote("m") == "m:2"
        assert table.active_key("m") == "m:2"
        assert table.previous_key("m") == "m:1"
        assert table.canaries() == {}

    def test_canary_lifecycle_abort(self):
        table = self.make_table()
        table.activate("m", "m:1")
        table.activate("m", "m:2")  # previous = m:1
        table.start_canary("m", "m:3", weight=0.5)
        assert table.abort("m") == "m:3"
        assert table.active_key("m") == "m:2"
        # The rollback target is untouched by an aborted canary.
        assert table.previous_key("m") == "m:1"

    def test_canary_misuse_rejected(self):
        table = self.make_table()
        with pytest.raises(RoutingError):
            table.start_canary("m", "m:2", weight=0.5)  # nothing serving
        table.activate("m", "m:1")
        table.start_canary("m", "m:2", weight=0.5)
        with pytest.raises(RoutingError):
            table.start_canary("m", "m:3", weight=0.5)  # one already in flight
        table.promote("m")
        with pytest.raises(RoutingError):
            table.adjust_canary("m", weight=0.9)
        with pytest.raises(RoutingError):
            table.abort("m")
        with pytest.raises(RoutingError):
            table.promote("m")

    def test_serving_keys_cover_all_arms(self):
        table = self.make_table()
        table.activate("a", "a:1")
        table.activate("b", "b:1")
        table.start_canary("b", "b:2", weight=0.3)
        assert table.serving_keys() == ["a:1", "b:1", "b:2"]
        assert table.reachable_keys() == {"a:1", "b:1", "b:2"}

    def test_plans_are_cached_and_consistent_per_key(self):
        table = self.make_table()
        table.activate("a", "a:1")
        table.activate("b", "b:1")
        table.start_canary("b", "b:2", weight=0.5)
        plans = {table.plan_for(f"user-{i}").namespace for i in range(200)}
        assert plans == {
            selection_namespace("", ["a:1", "b:1"]),
            selection_namespace("", ["a:1", "b:2"]),
        }
        one = table.plan_for("user-3")
        assert table.plan_for("user-3") is one  # snapshot-level plan cache
        # Only split arms are tracked for attribution.
        assert [key for key, _ in one.tracked_arms] in (["b:1"], ["b:2"])

    def test_swap_is_atomic_for_held_plans(self):
        """A plan resolved before a table swap stays internally consistent."""
        table = self.make_table()
        table.activate("m", "m:1")
        before = table.plan_for("user-1")
        table.activate("m", "m:2")
        assert before.serving_keys == ["m:1"]  # old snapshot untouched
        assert table.plan_for("user-1").serving_keys == ["m:2"]

    def test_forget_and_drop_previous(self):
        table = self.make_table()
        table.activate("m", "m:1")
        table.activate("m", "m:2")
        table.drop_previous("m")
        assert table.previous_key("m") is None
        table.forget("m")
        assert table.active_key("m") is None
        assert table.names() == []


class TestResolveKey:
    def make_table(self):
        table = RoutingTable(metrics=MetricsRegistry())
        table.activate("m", "m:2")
        return table

    def test_exact_key_wins(self):
        table = self.make_table()
        assert table.resolve_key("m:1", ["m:1", "m:2"]) == "m:1"

    def test_bare_name_resolves_to_active_version(self):
        table = self.make_table()
        assert table.resolve_key("m", ["m:1", "m:2"]) == "m:2"

    def test_unroutable_name_with_single_deployment_resolves(self):
        table = self.make_table()
        assert table.resolve_key("other", ["m:2", "other:1"]) == "other:1"

    def test_ambiguous_name_rejected(self):
        table = RoutingTable(metrics=MetricsRegistry())
        with pytest.raises(DeploymentError, match="ambiguous"):
            table.resolve_key("m", ["m:1", "m:2"])

    def test_unknown_model_rejected(self):
        table = self.make_table()
        with pytest.raises(DeploymentError, match="not deployed"):
            table.resolve_key("ghost", ["m:1", "m:2"])
