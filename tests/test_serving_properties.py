"""Cross-cutting property-based tests on serving-path invariants."""

import asyncio

import numpy as np
from hypothesis import given, settings, strategies as st

from helpers import run_async
from repro.batching.aimd import AIMDController
from repro.batching.queue import BatchingQueue, PendingQuery
from repro.cache.prediction_cache import PredictionCache
from repro.core.types import ModelId
from repro.selection.exp3 import Exp3Policy
from repro.selection.exp4 import Exp4Policy


class TestBatchingQueueProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=16),
    )
    def test_fifo_order_and_exact_coverage(self, values, max_batch):
        """Draining the queue preserves FIFO order and loses nothing."""

        async def scenario():
            queue = BatchingQueue()
            loop = asyncio.get_event_loop()
            for value in values:
                await queue.put(PendingQuery(input=value, future=loop.create_future()))
            drained = []
            while queue.qsize() > 0:
                batch = await queue.get_batch(max_batch_size=max_batch)
                assert 1 <= len(batch) <= max_batch
                drained.extend(item.input for item in batch)
            return drained

        drained = run_async(scenario())
        assert drained == values


class TestPredictionCacheProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=30), st.integers(0, 5)),
            min_size=1,
            max_size=150,
        ),
        st.integers(min_value=1, max_value=16),
        st.sampled_from(["clock", "lru"]),
    )
    def test_cache_never_returns_stale_or_foreign_values(self, ops, capacity, eviction):
        """Whatever the access pattern, a hit returns the value last stored."""
        cache = PredictionCache(capacity=capacity, eviction=eviction)
        reference = {}
        for item, model in ops:
            model_key = f"model-{model}:1"
            x = np.array([float(item)])
            cached = cache.fetch(model_key, x)
            if cached is not None:
                assert cached == reference[(model_key, item)]
            value = (item, model)
            cache.put(model_key, x, value)
            reference[(model_key, item)] = value
            assert len(cache) <= capacity


class TestControllerProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=0.01, max_value=2.0),
        st.floats(min_value=5.0, max_value=50.0),
    )
    def test_aimd_steady_state_respects_slo_capacity(self, per_item_ms, slo_ms):
        """After convergence the chosen batch never wildly exceeds capacity."""
        controller = AIMDController(slo_ms=slo_ms, initial_batch_size=1, additive_increase=2)
        capacity = slo_ms / per_item_ms
        for _ in range(400):
            batch = controller.current_batch_size()
            controller.observe(batch, per_item_ms * batch)
        # Steady state: at most one additive step above, or one backoff below,
        # the true capacity (never more than ~35% off, and never below 1).
        final = controller.current_batch_size()
        assert final >= 1
        assert final <= max(capacity * 1.35, capacity + 3)


class TestSelectionPolicyProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from([0, 1]), min_size=1, max_size=200))
    def test_exp4_weights_are_always_a_valid_distribution(self, outcomes):
        policy = Exp4Policy(eta=0.5)
        models = [ModelId("a"), ModelId("b"), ModelId("c")]
        state = policy.init(models)
        for outcome in outcomes:
            predictions = {"a:1": outcome, "b:1": 1 - outcome, "c:1": outcome}
            state = policy.observe(state, None, 1, predictions)
            weights = policy.model_weights(state)
            assert abs(sum(weights.values()) - 1.0) < 1e-9
            assert all(0.0 <= w <= 1.0 for w in weights.values())

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_exp3_selection_probabilities_normalized_for_any_seed(self, seed):
        policy = Exp3Policy(eta=0.3, exploration=0.1, seed=seed)
        state = policy.init([ModelId("a"), ModelId("b"), ModelId("c")])
        keys, probs = policy._probabilities(state)
        assert sorted(keys) == ["a:1", "b:1", "c:1"]
        assert abs(probs.sum() - 1.0) < 1e-9
        assert np.all(probs > 0)
