"""Tests for the operator-facing management frontend."""

import numpy as np
import pytest

from helpers import run_async
from repro.containers.noop import NoOpContainer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.exceptions import ManagementError
from repro.core.types import Query
from repro.core.frontend import QueryFrontend
from repro.management import ManagementFrontend
from repro.management.records import VERSION_SERVING, VERSION_STAGED


def make_app(name, output=1, policy="single"):
    clipper = Clipper(
        ClipperConfig(app_name=name, selection_policy=policy, latency_slo_ms=500.0)
    )
    clipper.deploy_model(
        ModelDeployment(name="noop", container_factory=lambda: NoOpContainer(output=output))
    )
    return clipper


class TestRegistration:
    def test_register_backfills_existing_deployments(self):
        mgmt = ManagementFrontend(monitor_health=False)
        mgmt.register_application(make_app("vision"))
        info = mgmt.model_info("vision", "noop")
        assert info["active_version"] == 1
        assert info["versions"]["1"]["state"] == VERSION_SERVING
        assert mgmt.applications() == ["vision"]
        assert mgmt.registry.applications() == ["vision"]

    def test_duplicate_registration_rejected(self):
        mgmt = ManagementFrontend(monitor_health=False)
        mgmt.register_application(make_app("vision"))
        with pytest.raises(ManagementError):
            mgmt.register_application(make_app("vision"))

    def test_unknown_application_rejected(self):
        async def scenario():
            mgmt = ManagementFrontend(monitor_health=False)
            with pytest.raises(ManagementError):
                await mgmt.set_num_replicas("ghost", "noop", 2)

        run_async(scenario())


class TestOperations:
    def test_deploy_rollout_rollback_recorded_in_registry(self):
        async def scenario():
            mgmt = ManagementFrontend(monitor_health=False)
            clipper = make_app("vision")
            mgmt.register_application(clipper)
            await mgmt.start()

            model_id = await mgmt.deploy_model(
                "vision",
                ModelDeployment(
                    name="noop",
                    container_factory=lambda: NoOpContainer(output=2),
                    version=2,
                ),
            )
            assert str(model_id) == "noop:2"
            info = mgmt.model_info("vision", "noop")
            assert info["versions"]["2"]["state"] == VERSION_STAGED

            await mgmt.rollout("vision", "noop", 2)
            assert mgmt.registry.active_version("vision", "noop") == 2
            assert [str(m) for m in clipper.serving_models()] == ["noop:2"]

            await mgmt.rollback("vision", "noop")
            assert mgmt.registry.active_version("vision", "noop") == 1
            assert [str(m) for m in clipper.serving_models()] == ["noop:1"]
            await mgmt.stop()

        run_async(scenario())

    def test_scale_and_undeploy_recorded_in_registry(self):
        async def scenario():
            mgmt = ManagementFrontend(monitor_health=False)
            clipper = make_app("vision")
            mgmt.register_application(clipper)
            await mgmt.start()
            await mgmt.deploy_model(
                "vision",
                ModelDeployment(
                    name="extra", container_factory=lambda: NoOpContainer(output=9)
                ),
            )

            assert await mgmt.set_num_replicas("vision", "extra", 3) == 3
            assert (
                mgmt.model_info("vision", "extra")["versions"]["1"]["num_replicas"] == 3
            )

            await mgmt.undeploy_model("vision", "extra")
            info = mgmt.model_info("vision", "extra")
            assert info["versions"]["1"]["state"] == "undeployed"
            assert info["active_version"] is None
            assert [str(m) for m in clipper.deployed_models()] == ["noop:1"]
            await mgmt.stop()

        run_async(scenario())

    def test_describe_snapshot(self):
        async def scenario():
            mgmt = ManagementFrontend(
                health_kwargs=dict(probe_interval_s=0.01, failure_threshold=2)
            )
            clipper = make_app("vision")
            mgmt.register_application(clipper)
            await mgmt.start()
            monitor = mgmt.health_monitor("vision")
            await monitor.probe_once()
            snapshot = mgmt.describe("vision")
            assert snapshot["started"] is True
            assert snapshot["serving"] == ["noop:1"]
            assert snapshot["replicas"] == {"noop:1": 1}
            assert snapshot["health"] == {"noop:1[0]": "healthy"}
            await mgmt.stop()

        run_async(scenario())


class TestCoexistenceWithQueryFrontend:
    def test_both_frontends_share_the_same_applications(self):
        async def scenario():
            clipper = make_app("vision", output=7)
            query = QueryFrontend()
            query.register_application(clipper)
            mgmt = ManagementFrontend(monitor_health=False)
            mgmt.register_application(clipper)

            await query.start()
            await mgmt.start()  # idempotent: the app is already running
            prediction = await query.predict("vision", np.zeros(1))
            assert prediction.output == 7

            await mgmt.deploy_model(
                "vision",
                ModelDeployment(
                    name="noop",
                    container_factory=lambda: NoOpContainer(output=8),
                    version=2,
                ),
            )
            await mgmt.rollout("vision", "noop", 2)
            prediction = await query.predict("vision", np.ones(1))
            assert prediction.output == 8
            await mgmt.stop()

        run_async(scenario())


class TestConsistencyUnderRefusal:
    def test_registry_rejection_unwinds_live_deploy(self):
        async def scenario():
            mgmt = ManagementFrontend(monitor_health=False)
            clipper = make_app("vision")
            mgmt.register_application(clipper)
            await mgmt.start()
            dep = ModelDeployment(
                name="noop", container_factory=lambda: NoOpContainer(output=2), version=2
            )
            await mgmt.deploy_model("vision", dep)
            await mgmt.undeploy_model("vision", "noop:2")
            # Version numbers are immutable: redeploying v2 is refused by the
            # registry, and the live deploy must be unwound, not leaked.
            with pytest.raises(ManagementError):
                await mgmt.deploy_model("vision", dep)
            assert [str(m) for m in clipper.deployed_models()] == ["noop:1"]
            await mgmt.stop()

        run_async(scenario())

    def test_rollout_of_unregistered_version_unwinds_traffic_switch(self):
        async def scenario():
            mgmt = ManagementFrontend(monitor_health=False)
            clipper = make_app("vision")
            mgmt.register_application(clipper)
            await mgmt.start()
            # Deploy v2 directly on the clipper, bypassing the frontend.
            await clipper.deploy_model_async(
                ModelDeployment(
                    name="noop",
                    container_factory=lambda: NoOpContainer(output=2),
                    version=2,
                )
            )
            with pytest.raises(ManagementError):
                await mgmt.rollout("vision", "noop", 2)
            # Traffic still serves the registered version.
            assert [str(m) for m in clipper.serving_models()] == ["noop:1"]
            await mgmt.stop()

        run_async(scenario())

    def test_undeploy_of_unregistered_version_rejected_before_teardown(self):
        async def scenario():
            mgmt = ManagementFrontend(monitor_health=False)
            clipper = make_app("vision")
            mgmt.register_application(clipper)
            await mgmt.start()
            await clipper.deploy_model_async(
                ModelDeployment(
                    name="noop",
                    container_factory=lambda: NoOpContainer(output=2),
                    version=2,
                )
            )
            with pytest.raises(ManagementError):
                await mgmt.undeploy_model("vision", "noop:2")
            # The live machinery was not torn down by the refused op.
            assert "noop:2" in [str(m) for m in clipper.deployed_models()]
            await mgmt.stop()

        run_async(scenario())

    def test_register_then_restart_brings_up_late_application(self):
        async def scenario():
            mgmt = ManagementFrontend(monitor_health=False)
            mgmt.register_application(make_app("vision"))
            await mgmt.start()
            late = make_app("speech", output=9)
            mgmt.register_application(late)
            await mgmt.start()  # idempotent; brings up the late registration
            assert late.is_started
            prediction = await late.predict(
                Query(app_name="speech", input=np.zeros(1))
            )
            assert prediction.output == 9
            await mgmt.stop()

        run_async(scenario())
