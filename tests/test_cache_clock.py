"""Tests for the CLOCK eviction cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.clock import ClockCache
from repro.cache.lru import LRUCache
from repro.core.exceptions import CacheError


class TestClockCacheBasics:
    def test_put_get_round_trip(self):
        cache = ClockCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_get_missing_returns_default(self):
        cache = ClockCache(4)
        assert cache.get("missing") is None
        assert cache.get("missing", 42) == 42

    def test_update_existing_key_keeps_size(self):
        cache = ClockCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(CacheError):
            ClockCache(0)

    def test_clear(self):
        cache = ClockCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert "a" not in cache


class TestClockEviction:
    def test_never_exceeds_capacity(self):
        cache = ClockCache(8)
        for i in range(100):
            cache.put(i, i)
        assert len(cache) == 8
        assert cache.evictions == 92

    def test_second_chance_protects_referenced_entries(self):
        cache = ClockCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        # Reference "a" so its bit is set; inserting "c" should evict "b"
        # because the hand clears "a"'s bit first then finds "b" unreferenced.
        assert cache.get("a") == 1
        cache.put("c", 3)
        assert "a" in cache
        assert "c" in cache
        assert "b" not in cache

    def test_hot_key_survives_scan(self):
        cache = ClockCache(4)
        cache.put("hot", 0)
        for i in range(50):
            cache.get("hot")
            cache.put(("cold", i), i)
            cache.get("hot")
        assert "hot" in cache

    def test_keys_reflect_contents(self):
        cache = ClockCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        assert sorted(cache.keys()) == ["a", "b", "c"]


class TestClockVsLRUProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from("abcdefgh"), st.booleans()),
            min_size=1,
            max_size=200,
        )
    )
    def test_clock_contents_always_bounded_and_consistent(self, operations):
        """CLOCK never exceeds capacity and always returns what was stored."""
        cache = ClockCache(4)
        reference = {}
        for key, is_put in operations:
            if is_put:
                cache.put(key, key.upper())
                reference[key] = key.upper()
            else:
                value = cache.get(key)
                if value is not None:
                    assert value == reference[key]
            assert len(cache) <= 4

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from("abcdef"), min_size=1, max_size=100))
    def test_clock_and_lru_agree_on_repeated_single_key(self, keys):
        """With capacity >= distinct keys, both policies retain everything."""
        clock = ClockCache(6)
        lru = LRUCache(6)
        for key in keys:
            clock.put(key, key)
            lru.put(key, key)
        for key in set(keys):
            assert clock.get(key) == lru.get(key) == key
