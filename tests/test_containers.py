"""Tests for model containers: base interface, adapters, no-op, overhead wrappers."""

import time

import numpy as np
import pytest

from repro.containers.adapters import ClassifierContainer, HMMContainer
from repro.containers.base import FunctionContainer, ModelContainer
from repro.containers.noop import NoOpContainer
from repro.containers.overhead import LanguageOverheadContainer, SimulatedLatencyContainer
from repro.mlkit.hmm import HMMPhonemeClassifier


class TestFunctionContainer:
    def test_wraps_batch_function(self):
        container = FunctionContainer(lambda xs: [x * 2 for x in xs])
        assert container.predict_batch([1, 2, 3]) == [2, 4, 6]

    def test_predict_single_input(self):
        container = FunctionContainer(lambda xs: [sum(x) for x in xs])
        assert container.predict([1, 2, 3]) == 6

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            FunctionContainer(42)

    def test_wrong_output_length_raises(self):
        container = FunctionContainer(lambda xs: [0])
        with pytest.raises(ValueError):
            container.predict_batch([1, 2])

    def test_base_class_predict_batch_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ModelContainer().predict_batch([1])


class TestNoOpContainer:
    def test_returns_constant_output(self):
        container = NoOpContainer(output=5)
        assert container.predict_batch([np.ones(3)] * 4) == [5, 5, 5, 5]

    def test_counts_batches(self):
        container = NoOpContainer()
        container.predict_batch([1])
        container.predict_batch([1, 2])
        assert container.batches_served == 2

    def test_touch_inputs_mode(self):
        container = NoOpContainer(touch_inputs=True)
        outputs = container.predict_batch([np.ones(10), np.zeros(0)])
        assert outputs == [0, 0]


class TestClassifierContainer:
    def test_serves_labels(self, trained_svm, mnist_like_small):
        container = ClassifierContainer(trained_svm)
        ds = mnist_like_small
        outputs = container.predict_batch([ds.X_test[i] for i in range(5)])
        assert len(outputs) == 5
        assert all(isinstance(o, (int, float)) for o in outputs)

    def test_matches_direct_model_predictions(self, trained_svm, mnist_like_small):
        ds = mnist_like_small
        container = ClassifierContainer(trained_svm)
        direct = trained_svm.predict(ds.X_test[:8])
        served = container.predict_batch([ds.X_test[i] for i in range(8)])
        np.testing.assert_array_equal(np.asarray(served), direct)

    def test_proba_mode_returns_vectors(self, trained_svm, mnist_like_small):
        ds = mnist_like_small
        container = ClassifierContainer(trained_svm, return_proba=True)
        outputs = container.predict_batch([ds.X_test[0]])
        assert outputs[0].shape == (10,)
        assert np.isclose(outputs[0].sum(), 1.0)

    def test_empty_batch(self, trained_svm):
        assert ClassifierContainer(trained_svm).predict_batch([]) == []

    def test_requires_predict_method(self):
        with pytest.raises(TypeError):
            ClassifierContainer(object())


class TestHMMContainer:
    def test_serves_utterances(self, rng):
        sequences, labels = [], []
        for label in (0, 1):
            for _ in range(6):
                offset = label * 3.0
                sequences.append(rng.normal(offset, 1.0, size=(12, 4)))
                labels.append(label)
        model = HMMPhonemeClassifier(n_states=3, n_features=4, random_state=0).fit(
            sequences, labels
        )
        container = HMMContainer(model)
        outputs = container.predict_batch(sequences[:4])
        assert len(outputs) == 4
        assert set(outputs) <= {0, 1}


class TestLanguageOverheadContainer:
    def test_adds_measurable_overhead(self):
        inner = NoOpContainer()
        slow = LanguageOverheadContainer(inner, per_batch_overhead_ms=5.0)
        start = time.perf_counter()
        slow.predict_batch([1])
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        assert elapsed_ms >= 4.0

    def test_outputs_pass_through(self):
        inner = NoOpContainer(output=7)
        wrapped = LanguageOverheadContainer(inner, per_batch_overhead_ms=0.0)
        assert wrapped.predict_batch([1, 2]) == [7, 7]

    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            LanguageOverheadContainer(NoOpContainer(), per_batch_overhead_ms=-1)


class TestSimulatedLatencyContainer:
    def test_latency_scales_with_batch_size(self):
        container = SimulatedLatencyContainer(
            base_latency_ms=1.0, per_item_latency_ms=0.5, random_state=0
        )
        assert container.sample_delay_ms(10) == pytest.approx(6.0)

    def test_straggler_tail(self):
        container = SimulatedLatencyContainer(
            base_latency_ms=1.0,
            straggler_probability=1.0,
            straggler_extra_ms=100.0,
            random_state=0,
        )
        delay = container.sample_delay_ms(1)
        assert delay >= 51.0

    def test_sleeps_for_configured_latency(self):
        container = SimulatedLatencyContainer(base_latency_ms=10.0, random_state=0)
        start = time.perf_counter()
        outputs = container.predict_batch([1, 2])
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        assert elapsed_ms >= 8.0
        assert outputs == [0, 0]

    def test_wraps_inner_container_outputs(self):
        container = SimulatedLatencyContainer(
            inner=NoOpContainer(output=3), base_latency_ms=0.0
        )
        assert container.predict_batch([1]) == [3]

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedLatencyContainer(base_latency_ms=-1)
        with pytest.raises(ValueError):
            SimulatedLatencyContainer(straggler_probability=2.0)
