"""Tests for the Gaussian HMM and the HMM-based utterance classifier."""

import numpy as np
import pytest

from repro.mlkit.hmm import GaussianHMM, HMMPhonemeClassifier


def make_sequences(rng, mean, n_sequences=8, length=15, n_features=4):
    return [rng.normal(mean, 1.0, size=(length, n_features)) for _ in range(n_sequences)]


class TestGaussianHMM:
    def test_supervised_fit_recovers_state_means(self, rng):
        hmm = GaussianHMM(n_states=2, n_features=3, random_state=0)
        frames, states = [], []
        for _ in range(10):
            seq_states = np.array([0] * 10 + [1] * 10)
            seq_frames = np.where(
                seq_states[:, None] == 0,
                rng.normal(-2.0, 0.5, size=(20, 3)),
                rng.normal(3.0, 0.5, size=(20, 3)),
            )
            frames.append(seq_frames)
            states.append(seq_states)
        hmm.fit_supervised(frames, states)
        assert hmm.means_[0].mean() < 0
        assert hmm.means_[1].mean() > 0

    def test_viterbi_recovers_state_sequence(self, rng):
        hmm = GaussianHMM(n_states=2, n_features=2, random_state=0)
        states_true = np.array([0] * 8 + [1] * 8)
        frames = np.where(
            states_true[:, None] == 0,
            rng.normal(-3.0, 0.5, size=(16, 2)),
            rng.normal(3.0, 0.5, size=(16, 2)),
        )
        hmm.fit_supervised([frames], [states_true])
        decoded = hmm.viterbi(frames)
        assert (decoded == states_true).mean() > 0.9

    def test_log_likelihood_prefers_matching_sequence(self, rng):
        hmm = GaussianHMM(n_states=2, n_features=3, random_state=0)
        seqs = make_sequences(rng, mean=0.0, n_features=3)
        states = [np.zeros(len(s), dtype=int) for s in seqs]
        hmm.fit_supervised(seqs, states)
        matching = rng.normal(0.0, 1.0, size=(15, 3))
        far = rng.normal(8.0, 1.0, size=(15, 3))
        assert hmm.log_likelihood(matching) > hmm.log_likelihood(far)

    def test_shape_validation(self, rng):
        hmm = GaussianHMM(n_states=2, n_features=3, random_state=0)
        with pytest.raises(ValueError):
            hmm.fit_supervised([rng.normal(size=(5, 3))], [np.zeros(4, dtype=int)])
        with pytest.raises(ValueError):
            hmm.log_likelihood(rng.normal(size=(5, 2)))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            GaussianHMM(n_states=0, n_features=3)
        with pytest.raises(ValueError):
            GaussianHMM(n_states=2, n_features=0)


class TestHMMPhonemeClassifier:
    def test_classifies_well_separated_utterance_classes(self, rng):
        sequences, labels = [], []
        for label, mean in [(0, -2.0), (1, 2.0), (2, 6.0)]:
            for seq in make_sequences(rng, mean, n_sequences=6):
                sequences.append(seq)
                labels.append(label)
        model = HMMPhonemeClassifier(n_states=3, n_features=4, random_state=0).fit(
            sequences, labels
        )
        assert model.score(sequences, labels) > 0.9

    def test_predict_proba_shape_and_normalisation(self, rng):
        sequences, labels = [], []
        for label, mean in [(0, -2.0), (1, 2.0)]:
            for seq in make_sequences(rng, mean, n_sequences=4):
                sequences.append(seq)
                labels.append(label)
        model = HMMPhonemeClassifier(n_states=2, n_features=4, random_state=0).fit(
            sequences, labels
        )
        proba = model.predict_proba(sequences[:3])
        assert proba.shape == (3, 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_requires_two_classes(self, rng):
        sequences = make_sequences(rng, 0.0, n_sequences=4)
        with pytest.raises(ValueError):
            HMMPhonemeClassifier(n_features=4).fit(sequences, [0, 0, 0, 0])

    def test_misaligned_inputs_raise(self, rng):
        sequences = make_sequences(rng, 0.0, n_sequences=4)
        with pytest.raises(ValueError):
            HMMPhonemeClassifier(n_features=4).fit(sequences, [0, 1])
