"""Tests for the core value types (Query, Prediction, Feedback, ModelId)."""

import numpy as np
import pytest

from repro.core.types import (
    Feedback,
    ModelId,
    Prediction,
    Query,
    hash_input,
    next_query_id,
)


class TestModelId:
    def test_str_includes_name_and_version(self):
        assert str(ModelId("svm", 3)) == "svm:3"

    def test_default_version_is_one(self):
        assert ModelId("svm").version == 1

    def test_parse_round_trips(self):
        model_id = ModelId("forest", 7)
        assert ModelId.parse(str(model_id)) == model_id

    def test_parse_without_version_defaults_to_one(self):
        assert ModelId.parse("plain-name") == ModelId("plain-name", 1)

    def test_is_hashable_and_usable_as_dict_key(self):
        lookup = {ModelId("a", 1): "x", ModelId("a", 2): "y"}
        assert lookup[ModelId("a", 2)] == "y"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ModelId("a").name = "b"


class TestHashInput:
    def test_identical_arrays_hash_equal(self):
        x = np.arange(10, dtype=np.float64)
        assert hash_input(x) == hash_input(x.copy())

    def test_different_values_hash_differently(self):
        x = np.arange(10, dtype=np.float64)
        y = x.copy()
        y[0] += 1
        assert hash_input(x) != hash_input(y)

    def test_dtype_is_part_of_the_hash(self):
        x = np.arange(10, dtype=np.float64)
        assert hash_input(x) != hash_input(x.astype(np.float32))

    def test_shape_is_part_of_the_hash(self):
        x = np.arange(12, dtype=np.float64)
        assert hash_input(x) != hash_input(x.reshape(3, 4))

    def test_strings_bytes_and_lists_supported(self):
        assert hash_input("abc") == hash_input("abc")
        assert hash_input(b"abc") == hash_input(b"abc")
        assert hash_input([1, 2, 3]) == hash_input([1, 2, 3])
        assert hash_input([1, 2, 3]) != hash_input([1, 2, 4])

    def test_non_contiguous_array_matches_contiguous_copy(self):
        x = np.arange(20, dtype=np.float64).reshape(4, 5)
        strided = x[:, ::2]
        assert hash_input(strided) == hash_input(np.ascontiguousarray(strided))


class TestQuery:
    def test_query_ids_are_unique_and_increasing(self):
        q1 = Query(app_name="app", input=1)
        q2 = Query(app_name="app", input=2)
        assert q2.query_id > q1.query_id

    def test_next_query_id_monotonic(self):
        assert next_query_id() < next_query_id()

    def test_input_hash_matches_feedback_hash(self):
        x = np.ones(5)
        query = Query(app_name="app", input=x)
        feedback = Feedback(app_name="app", input=x, label=1)
        assert query.input_hash() == feedback.input_hash()

    def test_defaults(self):
        query = Query(app_name="app", input=0)
        assert query.user_id is None
        assert query.latency_slo_ms is None
        assert query.metadata == {}


class TestPrediction:
    def test_is_confident_property(self):
        assert Prediction(query_id=1, app_name="a", output=0, confidence=1.0).is_confident
        assert not Prediction(query_id=1, app_name="a", output=0, confidence=0.8).is_confident

    def test_default_flags(self):
        prediction = Prediction(query_id=1, app_name="a", output=3)
        assert not prediction.default_used
        assert not prediction.from_cache
        assert prediction.models_missing == ()
