"""Tests for the contextualized selection-state manager (§5.3)."""


from repro.core.types import ModelId
from repro.selection.exp3 import Exp3Policy
from repro.selection.exp4 import Exp4Policy
from repro.selection.manager import DEFAULT_CONTEXT, SelectionStateManager
from repro.state.kvstore import KeyValueStore

MODELS = [ModelId("a"), ModelId("b")]


class TestStateLifecycle:
    def test_state_created_lazily_per_context(self):
        manager = SelectionStateManager(Exp4Policy(), MODELS)
        assert manager.contexts() == []
        manager.get_state("user-1")
        manager.get_state("user-2")
        assert sorted(manager.contexts()) == ["user-1", "user-2"]

    def test_default_context_used_when_none(self):
        manager = SelectionStateManager(Exp4Policy(), MODELS)
        manager.get_state(None)
        assert manager.contexts() == [DEFAULT_CONTEXT]

    def test_states_are_independent_across_contexts(self):
        manager = SelectionStateManager(Exp4Policy(eta=1.0), MODELS)
        manager.observe(None, 1, {"a:1": 0, "b:1": 1}, context="alice")
        alice = manager.get_state("alice")
        bob = manager.get_state("bob")
        assert alice["weights"]["a:1"] < alice["weights"]["b:1"]
        assert bob["weights"]["a:1"] == bob["weights"]["b:1"]

    def test_reset_single_context(self):
        manager = SelectionStateManager(Exp4Policy(eta=1.0), MODELS)
        manager.observe(None, 1, {"a:1": 0, "b:1": 1}, context="alice")
        manager.reset("alice")
        fresh = manager.get_state("alice")
        assert fresh["weights"]["a:1"] == fresh["weights"]["b:1"]

    def test_reset_all_contexts(self):
        manager = SelectionStateManager(Exp4Policy(), MODELS)
        manager.get_state("u1")
        manager.get_state("u2")
        manager.reset()
        assert manager.contexts() == []

    def test_external_store_is_used(self):
        store = KeyValueStore()
        manager = SelectionStateManager(Exp4Policy(), MODELS, store=store)
        manager.get_state("user-9")
        assert store.keys("selection-state") == ["user-9"]


class TestPrune:
    def test_prune_keeps_only_named_contexts(self):
        manager = SelectionStateManager(Exp4Policy(), MODELS)
        for user in ("alice", "bob", "carol"):
            manager.get_state(user)
        dropped = manager.prune(keep_contexts=["bob"])
        assert sorted(dropped) == ["alice", "carol"]
        assert manager.contexts() == ["bob"]

    def test_prune_maps_none_to_default_context(self):
        manager = SelectionStateManager(Exp4Policy(), MODELS)
        manager.get_state(None)
        manager.get_state("alice")
        dropped = manager.prune(keep_contexts=[None])
        assert dropped == ["alice"]
        assert manager.contexts() == [DEFAULT_CONTEXT]

    def test_prune_everything_clears_the_namespace(self):
        store = KeyValueStore()
        manager = SelectionStateManager(Exp4Policy(), MODELS, store=store)
        for user in ("alice", "bob"):
            manager.get_state(user)
        assert len(manager.prune(())) == 2
        assert manager.contexts() == []
        assert store.keys(manager.namespace) == []

    def test_prune_leaves_other_namespaces_alone(self):
        store = KeyValueStore()
        keep = SelectionStateManager(Exp4Policy(), MODELS, store=store, namespace="ns-a")
        victim = SelectionStateManager(Exp4Policy(), MODELS, store=store, namespace="ns-b")
        keep.get_state("alice")
        victim.get_state("alice")
        victim.prune(())
        assert keep.contexts() == ["alice"]


class TestPolicyOperations:
    def test_select_combine_observe_round_trip(self):
        manager = SelectionStateManager(Exp4Policy(), MODELS)
        selected = manager.select(x=0, context="u")
        assert sorted(selected) == ["a:1", "b:1"]
        output, confidence = manager.combine(0, {"a:1": 1, "b:1": 1}, context="u")
        assert output == 1
        assert confidence == 1.0
        state = manager.observe(0, 1, {"a:1": 1, "b:1": 0}, context="u")
        assert state["n_feedback"] == 1

    def test_select_persists_bookkeeping_mutations(self):
        manager = SelectionStateManager(Exp3Policy(seed=0), MODELS)
        manager.select(x=0, context="u")
        state = manager.get_state("u")
        assert sum(state["plays"].values()) == 1

    def test_personalization_diverges_between_users(self):
        """Each user's feedback shapes only that user's selection state."""
        manager = SelectionStateManager(Exp4Policy(eta=0.8), MODELS)
        for _ in range(50):
            manager.observe(0, 1, {"a:1": 1, "b:1": 0}, context="likes-a")
            manager.observe(0, 1, {"a:1": 0, "b:1": 1}, context="likes-b")
        state_a = manager.get_state("likes-a")
        state_b = manager.get_state("likes-b")
        assert state_a["weights"]["a:1"] > state_a["weights"]["b:1"]
        assert state_b["weights"]["b:1"] > state_b["weights"]["a:1"]
