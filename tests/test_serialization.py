"""Tests for the binary RPC serialization format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.exceptions import SerializationError
from repro.rpc.serialization import deserialize, serialize


class TestScalarRoundTrips:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, -1, 2**40, 3.14159, -1e300, "", "héllo wörld", b"", b"\x00\xff"],
    )
    def test_round_trip(self, value):
        assert deserialize(serialize(value)) == value

    def test_bool_is_not_confused_with_int(self):
        assert deserialize(serialize(True)) is True
        assert deserialize(serialize(1)) == 1
        assert not isinstance(deserialize(serialize(1)), bool)

    def test_numpy_scalars_become_python_scalars(self):
        assert deserialize(serialize(np.int64(7))) == 7
        assert deserialize(serialize(np.float64(2.5))) == 2.5


class TestContainers:
    def test_list_round_trip(self):
        value = [1, "a", None, 2.5, [True, b"x"]]
        assert deserialize(serialize(value)) == value

    def test_tuple_decodes_as_list(self):
        assert deserialize(serialize((1, 2))) == [1, 2]

    def test_dict_round_trip(self):
        value = {"a": 1, "nested": {"b": [1, 2]}, "s": "text"}
        assert deserialize(serialize(value)) == value

    def test_dict_keys_must_be_strings(self):
        with pytest.raises(SerializationError):
            serialize({1: "a"})

    def test_unsupported_type_raises(self):
        with pytest.raises(SerializationError):
            serialize(object())

    def test_deep_nesting_rejected(self):
        value = [0]
        for _ in range(64):
            value = [value]
        with pytest.raises(SerializationError):
            serialize(value)


class TestNdarrays:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int64, np.int32, np.uint8, np.bool_])
    def test_dtype_round_trip(self, dtype):
        array = np.arange(12).astype(dtype).reshape(3, 4)
        decoded = deserialize(serialize(array))
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        np.testing.assert_array_equal(decoded, array)

    def test_empty_array(self):
        array = np.zeros((0, 5))
        decoded = deserialize(serialize(array))
        assert decoded.shape == (0, 5)

    def test_non_contiguous_array(self):
        array = np.arange(20.0).reshape(4, 5)[:, ::2]
        decoded = deserialize(serialize(array))
        np.testing.assert_array_equal(decoded, array)

    def test_object_array_rejected(self):
        with pytest.raises(SerializationError):
            serialize(np.array([object()]))

    def test_array_inside_dict(self):
        value = {"inputs": [np.ones(3), np.zeros(2)], "count": 2}
        decoded = deserialize(serialize(value))
        np.testing.assert_array_equal(decoded["inputs"][0], np.ones(3))
        assert decoded["count"] == 2


class TestCorruptInput:
    def test_truncated_buffer_raises(self):
        data = serialize({"a": np.ones(100)})
        with pytest.raises(SerializationError):
            deserialize(data[: len(data) // 2])

    def test_trailing_garbage_raises(self):
        data = serialize(42)
        with pytest.raises(SerializationError):
            deserialize(data + b"junk")

    def test_unknown_tag_raises(self):
        with pytest.raises(SerializationError):
            deserialize(b"\xfe")

    def test_empty_buffer_raises(self):
        with pytest.raises(SerializationError):
            deserialize(b"")


class TestPropertyBased:
    json_like = st.recursive(
        st.none()
        | st.booleans()
        | st.integers(min_value=-(2**62), max_value=2**62)
        | st.floats(allow_nan=False, allow_infinity=True)
        | st.text(max_size=20)
        | st.binary(max_size=20),
        lambda children: st.lists(children, max_size=5)
        | st.dictionaries(st.text(max_size=8), children, max_size=5),
        max_leaves=20,
    )

    @settings(max_examples=100, deadline=None)
    @given(json_like)
    def test_json_like_values_round_trip(self, value):
        decoded = deserialize(serialize(value))
        assert decoded == _normalize(value)

    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(max_dims=3, max_side=8),
            elements=st.floats(-1e6, 1e6),
        )
    )
    def test_float_arrays_round_trip(self, array):
        decoded = deserialize(serialize(array))
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        np.testing.assert_array_equal(decoded, array)

    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.int64,
            shape=hnp.array_shapes(max_dims=2, max_side=8),
            elements=st.integers(-(2**40), 2**40),
        )
    )
    def test_int_arrays_round_trip(self, array):
        decoded = deserialize(serialize(array))
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        np.testing.assert_array_equal(decoded, array)


def _normalize(value):
    """Tuples decode as lists; apply the same normalisation to expectations."""
    if isinstance(value, tuple):
        return [_normalize(v) for v in value]
    if isinstance(value, list):
        return [_normalize(v) for v in value]
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    if isinstance(value, bytearray):
        return bytes(value)
    return value
