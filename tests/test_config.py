"""Tests for configuration validation."""

import pytest

from repro.containers.noop import NoOpContainer
from repro.core.config import BatchingConfig, ClipperConfig, ModelDeployment
from repro.core.exceptions import ConfigurationError


class TestBatchingConfig:
    def test_defaults_are_valid(self):
        config = BatchingConfig()
        assert config.policy == "aimd"
        assert config.initial_batch_size == 1

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(policy="magic")

    def test_rejects_nonpositive_initial_batch(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(initial_batch_size=0)

    def test_rejects_bad_backoff(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(backoff_fraction=0.0)
        with pytest.raises(ConfigurationError):
            BatchingConfig(backoff_fraction=1.5)

    def test_rejects_max_batch_below_initial(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(initial_batch_size=10, max_batch_size=5)

    def test_rejects_negative_wait_timeout(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(batch_wait_timeout_ms=-1)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(quantile=1.0)

    @pytest.mark.parametrize("policy", ["aimd", "quantile", "fixed", "none"])
    def test_all_policies_accepted(self, policy):
        assert BatchingConfig(policy=policy).policy == policy


class TestModelDeployment:
    def test_requires_name(self):
        with pytest.raises(ConfigurationError):
            ModelDeployment(name="", container_factory=NoOpContainer)

    def test_requires_positive_replicas(self):
        with pytest.raises(ConfigurationError):
            ModelDeployment(name="m", container_factory=NoOpContainer, num_replicas=0)

    def test_defaults(self):
        deployment = ModelDeployment(name="m", container_factory=NoOpContainer)
        assert deployment.num_replicas == 1
        assert deployment.version == 1
        assert deployment.batching.policy == "aimd"


class TestClipperConfig:
    def test_defaults_are_valid(self):
        config = ClipperConfig()
        assert config.latency_slo_ms == 20.0
        assert config.cache_eviction == "clock"

    def test_rejects_nonpositive_slo(self):
        with pytest.raises(ConfigurationError):
            ClipperConfig(latency_slo_ms=0)

    def test_rejects_negative_cache(self):
        with pytest.raises(ConfigurationError):
            ClipperConfig(cache_size=-1)

    def test_rejects_unknown_eviction(self):
        with pytest.raises(ConfigurationError):
            ClipperConfig(cache_eviction="fifo")

    def test_rejects_bad_confidence_threshold(self):
        with pytest.raises(ConfigurationError):
            ClipperConfig(confidence_threshold=1.5)

    def test_rejects_bad_slo_fraction(self):
        with pytest.raises(ConfigurationError):
            ClipperConfig(slo_fraction_for_batching=0.0)

    def test_batch_latency_budget_scales_with_fraction(self):
        config = ClipperConfig(latency_slo_ms=40.0, slo_fraction_for_batching=0.5)
        assert config.batch_latency_budget_ms == pytest.approx(20.0)
