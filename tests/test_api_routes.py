"""Tests for the versioned route table and the handler surface it exposes."""

import pytest

from helpers import run_async
from repro.api.errors import MethodNotAllowedError, RouteNotFoundError
from repro.api.handlers import build_route_table
from repro.api.routes import API_PREFIX, ApiResponse, RouteTable
from repro.containers.noop import NoOpContainer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.frontend import QueryFrontend
from repro.management.frontend import ManagementFrontend


async def echo(params, body):
    return ApiResponse(200, {"params": params, "body": body})


class TestRouteTable:
    def test_literal_and_param_matching(self):
        table = RouteTable()
        table.add("GET", "/api/v1/health", "health", echo)
        table.add("POST", "/api/v1/{app}/predict", "predict", echo)
        route, params = table.match("GET", "/api/v1/health")
        assert route.name == "health" and params == {}
        route, params = table.match("POST", "/api/v1/digits/predict")
        assert route.name == "predict" and params == {"app": "digits"}

    def test_unmatched_path_is_route_not_found(self):
        table = RouteTable()
        table.add("POST", "/api/v1/{app}/predict", "predict", echo)
        with pytest.raises(RouteNotFoundError):
            table.match("POST", "/api/v1/digits/nonsense")
        with pytest.raises(RouteNotFoundError):
            table.match("POST", "/api/v2/digits/predict")

    def test_wrong_method_is_method_not_allowed(self):
        table = RouteTable()
        table.add("POST", "/api/v1/{app}/predict", "predict", echo)
        with pytest.raises(MethodNotAllowedError) as excinfo:
            table.match("GET", "/api/v1/digits/predict")
        assert excinfo.value.detail["allowed"] == ["POST"]

    def test_duplicate_route_rejected(self):
        table = RouteTable()
        table.add("POST", "/api/v1/{app}/predict", "predict", echo)
        with pytest.raises(ValueError):
            table.add("POST", "/api/v1/{x}/predict", "other", echo)

    def test_dispatch_invokes_handler(self):
        table = RouteTable()
        table.add("POST", "/api/v1/{app}/update", "update", echo)
        response = run_async(
            table.dispatch("POST", "/api/v1/digits/update", {"label": 1})
        )
        assert response.body == {
            "params": {"app": "digits"},
            "body": {"label": 1},
        }

    def test_query_string_not_part_of_matching(self):
        # Path splitting happens upstream in the HTTP layer; the table sees
        # clean paths.  An empty param segment never matches.
        table = RouteTable()
        table.add("GET", "/api/v1/{app}/schema", "schema", echo)
        with pytest.raises(RouteNotFoundError):
            table.match("GET", "/api/v1//schema")


class TestBuiltSurface:
    def make_frontends(self):
        clipper = Clipper(ClipperConfig(app_name="demo", selection_policy="single"))
        clipper.deploy_model(
            ModelDeployment(name="noop", container_factory=NoOpContainer)
        )
        query = QueryFrontend()
        query.register_application(clipper)
        admin = ManagementFrontend(monitor_health=False, manage_canaries=False)
        admin.register_application(clipper)
        return query, admin

    def test_full_verb_set_registered(self):
        query, admin = self.make_frontends()
        table = build_route_table(query=query, admin=admin)
        names = {route.name for route in table.routes()}
        assert {
            "health",
            "routes",
            "applications",
            "schema",
            "predict",
            "update",
            "admin.applications",
            "admin.deploy",
            "admin.undeploy",
            "admin.scale",
            "admin.rollout",
            "admin.rollback",
            "admin.start_canary",
            "admin.adjust_canary",
            "admin.promote",
            "admin.abort_canary",
            "admin.models",
            "admin.model_info",
            "admin.health",
            "admin.metrics",
            "admin.routing",
        } <= names
        # Every route is versioned under the prefix.
        assert all(route.pattern.startswith(API_PREFIX) for route in table.routes())

    def test_query_only_table_has_no_admin_routes(self):
        query, _ = self.make_frontends()
        table = build_route_table(query=query)
        assert not any(r.name.startswith("admin.") for r in table.routes())

    def test_table_requires_a_frontend(self):
        with pytest.raises(ValueError):
            build_route_table()

    def test_describe_lists_method_path_name(self):
        query, _ = self.make_frontends()
        table = build_route_table(query=query)
        listing = table.describe()
        assert {"method": "POST", "path": f"{API_PREFIX}/{{app}}/predict", "name": "predict"} in listing
