"""Client SDK retry: backoff policy, retry budgets, and what never retries."""

from __future__ import annotations

import asyncio
import json
import random

import pytest

from helpers import run_async
from repro.client.client import (
    RetryBudgetExceeded,
    RetryPolicy,
    TransportError,
    _HttpConnection,
)


def fast_policy(max_attempts=3):
    return RetryPolicy(max_attempts=max_attempts, base_delay_s=0.001, jitter=0.0)


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.delay_for(i, rng) for i in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_only_shrinks_within_bound(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.5)
        rng = random.Random(7)
        for _ in range(100):
            delay = policy.delay_for(0, rng)
            assert 0.5 <= delay <= 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class _FlakyServer:
    """Accepts connections, closing the first N without a response byte.

    Models the idle keep-alive race / a server dying between accept and
    answer.  After the budgeted failures it answers any request with a
    minimal HTTP 200 JSON body.
    """

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.connections = 0
        self.requests_answered = 0
        self._server = None
        self.port = None

    async def __aenter__(self):
        self._server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc_info):
        self._server.close()
        await self._server.wait_closed()

    async def _handle(self, reader, writer):
        self.connections += 1
        if self.connections <= self.failures:
            # Read the request head so the client's send succeeds, then slam
            # the connection shut before any response byte.
            try:
                await reader.readline()
            except ConnectionError:
                pass
            writer.close()
            return
        try:
            while await reader.readline() not in (b"\r\n", b"\n", b""):
                pass
            body = json.dumps({"ok": True}).encode()
            writer.write(
                b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            await writer.drain()
            self.requests_answered += 1
        finally:
            writer.close()


class TestConnectionRetry:
    def test_get_retries_stale_connections_until_success(self):
        async def scenario():
            async with _FlakyServer(failures=2) as server:
                conn = _HttpConnection(
                    "127.0.0.1", server.port, retry_policy=fast_policy(4)
                )
                status, payload = await conn.request("GET", "/api/v1/health")
                await conn.close()
                return status, payload, server.connections

        status, payload, connections = run_async(scenario())
        assert status == 200
        assert payload == {"ok": True}
        assert connections == 3  # two stale failures + the success

    def test_get_budget_exhaustion_is_typed(self):
        async def scenario():
            async with _FlakyServer(failures=100) as server:
                conn = _HttpConnection(
                    "127.0.0.1", server.port, retry_policy=fast_policy(3)
                )
                with pytest.raises(RetryBudgetExceeded) as excinfo:
                    await conn.request("GET", "/api/v1/health")
                await conn.close()
                return excinfo.value, server.connections

        error, connections = run_async(scenario())
        assert error.attempts == 3
        assert connections == 3
        assert isinstance(error, TransportError)  # old handlers keep working
        assert isinstance(error.last_error, TransportError)

    def test_post_never_retried_after_send(self):
        async def scenario():
            async with _FlakyServer(failures=100) as server:
                conn = _HttpConnection(
                    "127.0.0.1", server.port, retry_policy=fast_policy(5)
                )
                with pytest.raises(TransportError) as excinfo:
                    await conn.request("POST", "/api/v1/app/update", {"x": 1})
                await conn.close()
                return excinfo.value, server.connections

        error, connections = run_async(scenario())
        # The request reached the wire: exactly one attempt, no silent rerun.
        assert connections == 1
        assert not isinstance(error, RetryBudgetExceeded)

    def test_post_retries_connect_failures(self):
        async def scenario():
            # Bind-then-close to learn a port that refuses connections.
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()

            conn = _HttpConnection("127.0.0.1", port, retry_policy=fast_policy(3))
            attempts = 0
            original = conn.connect

            async def counting_connect():
                nonlocal attempts
                attempts += 1
                await original()

            conn.connect = counting_connect
            with pytest.raises(RetryBudgetExceeded) as excinfo:
                await conn.request("POST", "/api/v1/app/update", {"x": 1})
            return excinfo.value, attempts

        error, attempts = run_async(scenario())
        # Nothing was ever sent, so the POST is safe to retry each time.
        assert attempts == 3
        assert error.attempts == 3

    def test_single_attempt_policy_surfaces_plain_transport_error(self):
        async def scenario():
            async with _FlakyServer(failures=100) as server:
                conn = _HttpConnection(
                    "127.0.0.1", server.port, retry_policy=fast_policy(1)
                )
                with pytest.raises(TransportError) as excinfo:
                    await conn.request("GET", "/api/v1/health")
                await conn.close()
                return excinfo.value

        error = run_async(scenario())
        assert not isinstance(error, RetryBudgetExceeded)


class _SheddingServer:
    """Answers the first N requests with a 429 + ``Retry-After``, then 200.

    Models an overloaded server shedding under admission control: the shed
    response is complete and well-formed, so re-issuing (even a POST) is
    safe — the server never executed the request.
    """

    def __init__(self, sheds: int, retry_after: str = "0", status: int = 429) -> None:
        self.sheds = sheds
        self.retry_after = retry_after
        self.status = status
        self.requests = 0
        self._server = None
        self.port = None

    async def __aenter__(self):
        self._server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc_info):
        self._server.close()
        await self._server.wait_closed()

    async def _handle(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                length = 0
                while True:
                    header = await reader.readline()
                    if header in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = header.decode().partition(":")
                    if name.strip().lower() == "content-length":
                        length = int(value.strip())
                if length:
                    await reader.readexactly(length)
                self.requests += 1
                if self.requests <= self.sheds:
                    body = json.dumps(
                        {"error": {"code": "overloaded", "status": self.status,
                                   "message": "shed", "detail": {}}}
                    ).encode()
                    reason = {429: "Too Many Requests", 503: "Service Unavailable"}
                    writer.write(
                        f"HTTP/1.1 {self.status} {reason.get(self.status, 'Error')}\r\n"
                        f"Retry-After: {self.retry_after}\r\n"
                        "Content-Type: application/json\r\n"
                        f"Content-Length: {len(body)}\r\n\r\n".encode() + body
                    )
                else:
                    body = json.dumps({"ok": True}).encode()
                    writer.write(
                        b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
                        + f"Content-Length: {len(body)}\r\n\r\n".encode()
                        + body
                    )
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()


class TestRetryAfter:
    def test_post_retries_429_until_success(self):
        """A shed POST is safe to re-issue: the server answered without
        executing it.  The client honors Retry-After and succeeds."""

        async def scenario():
            async with _SheddingServer(sheds=2, retry_after="0") as server:
                conn = _HttpConnection(
                    "127.0.0.1", server.port, retry_policy=fast_policy(4)
                )
                status, payload = await conn.request(
                    "POST", "/api/v1/app/predict", {"input": [1.0]}
                )
                await conn.close()
                return status, payload, server.requests

        status, payload, requests = run_async(scenario())
        assert status == 200
        assert payload == {"ok": True}
        assert requests == 3

    def test_503_with_retry_after_also_retries(self):
        async def scenario():
            async with _SheddingServer(
                sheds=1, retry_after="0", status=503
            ) as server:
                conn = _HttpConnection(
                    "127.0.0.1", server.port, retry_policy=fast_policy(3)
                )
                status, _ = await conn.request("GET", "/api/v1/health")
                await conn.close()
                return status, server.requests

        status, requests = run_async(scenario())
        assert status == 200
        assert requests == 2

    def test_retry_after_capped_at_policy_max_delay(self):
        """A pathological Retry-After (hours) must not stall the caller
        beyond the policy's own max delay."""

        async def scenario():
            async with _SheddingServer(sheds=1, retry_after="3600") as server:
                policy = RetryPolicy(
                    max_attempts=2, base_delay_s=0.001,
                    max_delay_s=0.05, jitter=0.0,
                )
                conn = _HttpConnection("127.0.0.1", server.port, retry_policy=policy)
                import time as _time

                t0 = _time.perf_counter()
                status, _ = await conn.request("GET", "/api/v1/health")
                elapsed = _time.perf_counter() - t0
                await conn.close()
                return status, elapsed

        status, elapsed = run_async(scenario())
        assert status == 200
        assert elapsed < 2.0  # not the 3600 s the server asked for

    def test_exhausted_budget_surfaces_final_429(self):
        """When every attempt is shed, the caller gets the last 429 payload
        (mapped to ServiceOverloaded at the client layer), not a hang."""

        async def scenario():
            async with _SheddingServer(sheds=100, retry_after="0") as server:
                conn = _HttpConnection(
                    "127.0.0.1", server.port, retry_policy=fast_policy(3)
                )
                status, payload = await conn.request("GET", "/api/v1/health")
                await conn.close()
                return status, payload, server.requests

        status, payload, requests = run_async(scenario())
        assert status == 429
        assert requests == 3  # the full budget, then surface the response
        from repro.client.client import ServiceOverloaded, error_from_response

        error = error_from_response(status, payload)
        assert isinstance(error, ServiceOverloaded)
        assert error.code == "overloaded"

    def test_unparsable_retry_after_falls_back_to_backoff(self):
        async def scenario():
            async with _SheddingServer(sheds=1, retry_after="soon") as server:
                conn = _HttpConnection(
                    "127.0.0.1", server.port, retry_policy=fast_policy(3)
                )
                status, _ = await conn.request("GET", "/api/v1/health")
                await conn.close()
                return status

        assert run_async(scenario()) == 200
