"""Integration tests for the full Clipper serving engine."""

import asyncio
import time

import numpy as np
import pytest

from helpers import run_async
from repro.containers.adapters import ClassifierContainer
from repro.containers.noop import NoOpContainer
from repro.containers.overhead import SimulatedLatencyContainer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.exceptions import ClipperError, DeploymentError, PredictionTimeoutError
from repro.core.types import Feedback, Query


def build_clipper(containers, policy="exp4", slo_ms=100.0, cache_size=1024, **config_kwargs):
    clipper = Clipper(
        ClipperConfig(
            app_name="test-app",
            latency_slo_ms=slo_ms,
            selection_policy=policy,
            cache_size=cache_size,
            **config_kwargs,
        )
    )
    for name, factory in containers.items():
        clipper.deploy_model(ModelDeployment(name=name, container_factory=factory))
    return clipper


class TestDeployment:
    def test_deploy_returns_model_ids(self):
        clipper = Clipper(ClipperConfig())
        model_id = clipper.deploy_model(
            ModelDeployment(name="noop", container_factory=NoOpContainer)
        )
        assert str(model_id) == "noop:1"
        assert clipper.deployed_models() == [model_id]

    def test_duplicate_deployment_rejected(self):
        clipper = Clipper(ClipperConfig())
        clipper.deploy_model(ModelDeployment(name="noop", container_factory=NoOpContainer))
        with pytest.raises(DeploymentError):
            clipper.deploy_model(ModelDeployment(name="noop", container_factory=NoOpContainer))

    def test_start_without_models_rejected(self):
        async def scenario():
            clipper = Clipper(ClipperConfig())
            with pytest.raises(ClipperError):
                await clipper.start()

        run_async(scenario())

    def test_predict_before_start_rejected(self):
        async def scenario():
            clipper = Clipper(ClipperConfig())
            clipper.deploy_model(ModelDeployment(name="noop", container_factory=NoOpContainer))
            with pytest.raises(ClipperError):
                await clipper.predict(Query(app_name="test-app", input=np.zeros(1)))

        run_async(scenario())


class TestPredictionPath:
    def test_end_to_end_accuracy_with_real_models(self, trained_svm, trained_logreg, mnist_like_small):
        ds = mnist_like_small

        async def scenario():
            clipper = build_clipper(
                {
                    "svm": lambda: ClassifierContainer(trained_svm),
                    "logreg": lambda: ClassifierContainer(trained_logreg),
                }
            )
            await clipper.start()
            correct = 0
            n = 40
            for i in range(n):
                prediction = await clipper.predict(
                    Query(app_name="test-app", input=ds.X_test[i])
                )
                correct += int(prediction.output == ds.y_test[i])
                assert 0.0 <= prediction.confidence <= 1.0
                assert prediction.latency_ms > 0
            await clipper.stop()
            return correct / n

        accuracy = run_async(scenario())
        assert accuracy > 0.9

    def test_single_policy_uses_one_model(self):
        async def scenario():
            clipper = build_clipper(
                {"a": lambda: NoOpContainer(output=1), "b": lambda: NoOpContainer(output=2)},
                policy="single",
            )
            await clipper.start()
            prediction = await clipper.predict(Query(app_name="test-app", input=np.zeros(1)))
            await clipper.stop()
            assert prediction.output == 1
            assert len(prediction.models_used) == 1

        run_async(scenario())

    def test_exp4_policy_queries_all_models(self):
        async def scenario():
            clipper = build_clipper(
                {"a": lambda: NoOpContainer(output=1), "b": lambda: NoOpContainer(output=1)},
                policy="exp4",
            )
            await clipper.start()
            prediction = await clipper.predict(Query(app_name="test-app", input=np.zeros(1)))
            await clipper.stop()
            assert sorted(prediction.models_used) == ["a:1", "b:1"]
            assert prediction.confidence == 1.0

        run_async(scenario())

    def test_concurrent_queries(self):
        async def scenario():
            clipper = build_clipper({"noop": lambda: NoOpContainer(output=5)}, policy="single")
            await clipper.start()
            queries = [Query(app_name="test-app", input=np.array([float(i)])) for i in range(64)]
            predictions = await asyncio.gather(*[clipper.predict(q) for q in queries])
            await clipper.stop()
            assert all(p.output == 5 for p in predictions)

        run_async(scenario())

    def test_batching_actually_groups_queries(self):
        async def scenario():
            clipper = build_clipper(
                {"noop": lambda: NoOpContainer(output=0)},
                policy="single",
                cache_size=0,
            )
            await clipper.start()
            queries = [Query(app_name="test-app", input=np.array([float(i)])) for i in range(128)]
            await asyncio.gather(*[clipper.predict(q) for q in queries])
            await clipper.stop()
            sizes = clipper.metrics.histogram("model.noop:1.batch_size").values()
            assert max(sizes) > 1

        run_async(scenario())


class TestCachingBehaviour:
    def test_repeated_query_hits_cache(self):
        async def scenario():
            clipper = build_clipper({"noop": lambda: NoOpContainer(output=9)}, policy="single")
            await clipper.start()
            x = np.ones(4)
            first = await clipper.predict(Query(app_name="test-app", input=x))
            second = await clipper.predict(Query(app_name="test-app", input=x))
            await clipper.stop()
            assert not first.from_cache
            assert second.from_cache
            assert clipper.cache.stats.hits >= 1

        run_async(scenario())

    def test_cache_disabled_never_hits(self):
        async def scenario():
            clipper = build_clipper(
                {"noop": lambda: NoOpContainer(output=9)}, policy="single", cache_size=0
            )
            await clipper.start()
            x = np.ones(4)
            await clipper.predict(Query(app_name="test-app", input=x))
            second = await clipper.predict(Query(app_name="test-app", input=x))
            await clipper.stop()
            assert not second.from_cache
            assert clipper.cache.stats.hits == 0

        run_async(scenario())


class TestFeedbackPath:
    def test_feedback_updates_selection_weights(self):
        async def scenario():
            clipper = build_clipper(
                {
                    "always-right": lambda: NoOpContainer(output=1),
                    "always-wrong": lambda: NoOpContainer(output=0),
                },
                policy="exp4",
            )
            await clipper.start()
            for i in range(30):
                x = np.array([float(i)])
                await clipper.predict(Query(app_name="test-app", input=x))
                await clipper.feedback(Feedback(app_name="test-app", input=x, label=1))
            await clipper.stop()
            state = clipper.selection_manager.get_state(None)
            assert state["weights"]["always-right:1"] > state["weights"]["always-wrong:1"]

        run_async(scenario())

    def test_feedback_joins_against_cache_without_reevaluation(self):
        async def scenario():
            clipper = build_clipper({"noop": lambda: NoOpContainer(output=1)}, policy="exp4")
            await clipper.start()
            x = np.ones(3)
            await clipper.predict(Query(app_name="test-app", input=x))
            misses_before = clipper.cache.stats.misses
            await clipper.feedback(Feedback(app_name="test-app", input=x, label=1))
            await clipper.stop()
            # The feedback lookup hit the cache: no additional misses.
            assert clipper.cache.stats.misses == misses_before

        run_async(scenario())

    def test_per_user_contextual_state(self):
        async def scenario():
            clipper = build_clipper(
                {"a": lambda: NoOpContainer(output=1), "b": lambda: NoOpContainer(output=0)},
                policy="exp4",
            )
            await clipper.start()
            for i in range(20):
                x = np.array([float(i)])
                await clipper.feedback(
                    Feedback(app_name="test-app", input=x, label=1, user_id="alice")
                )
            await clipper.stop()
            alice = clipper.selection_manager.get_state("alice")
            fresh = clipper.selection_manager.get_state("bob")
            assert alice["weights"]["a:1"] > alice["weights"]["b:1"]
            assert fresh["weights"]["a:1"] == fresh["weights"]["b:1"]

        run_async(scenario())


class TestStragglerMitigation:
    def test_slow_model_does_not_block_prediction(self):
        async def scenario():
            clipper = build_clipper(
                {
                    "fast": lambda: NoOpContainer(output=1),
                    "slow": lambda: SimulatedLatencyContainer(
                        base_latency_ms=500.0, default_output=1, random_state=0
                    ),
                },
                policy="exp4",
                slo_ms=80.0,
            )
            await clipper.start()
            start = time.perf_counter()
            prediction = await clipper.predict(Query(app_name="test-app", input=np.zeros(1)))
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            await clipper.stop()
            assert elapsed_ms < 400.0
            assert "slow:1" in prediction.models_missing
            assert prediction.confidence < 1.0

        run_async(scenario())

    def test_without_mitigation_prediction_waits_for_all(self):
        async def scenario():
            clipper = build_clipper(
                {
                    "fast": lambda: NoOpContainer(output=1),
                    "slow": lambda: SimulatedLatencyContainer(
                        base_latency_ms=150.0, default_output=1, random_state=0
                    ),
                },
                policy="exp4",
                slo_ms=50.0,
                straggler_mitigation=False,
            )
            await clipper.start()
            prediction = await clipper.predict(Query(app_name="test-app", input=np.zeros(1)))
            await clipper.stop()
            assert prediction.models_missing == ()
            assert prediction.latency_ms >= 100.0

        run_async(scenario())

    def test_default_output_when_every_model_misses_deadline(self):
        async def scenario():
            clipper = build_clipper(
                {
                    "slow": lambda: SimulatedLatencyContainer(
                        base_latency_ms=300.0, default_output=0, random_state=0
                    )
                },
                policy="single",
                slo_ms=30.0,
                default_output=-1,
            )
            await clipper.start()
            prediction = await clipper.predict(Query(app_name="test-app", input=np.zeros(1)))
            await clipper.stop()
            assert prediction.default_used
            assert prediction.output == -1
            assert prediction.confidence == 0.0

        run_async(scenario())

    def test_timeout_error_when_no_default_configured(self):
        async def scenario():
            clipper = build_clipper(
                {
                    "slow": lambda: SimulatedLatencyContainer(
                        base_latency_ms=300.0, default_output=0, random_state=0
                    )
                },
                policy="single",
                slo_ms=30.0,
            )
            await clipper.start()
            with pytest.raises(PredictionTimeoutError):
                await clipper.predict(Query(app_name="test-app", input=np.zeros(1)))
            await clipper.stop()

        run_async(scenario())


class TestReplication:
    def test_multiple_replicas_share_the_queue(self):
        async def scenario():
            # A generous SLO keeps this timing-sensitive test robust on a
            # loaded CI machine; replica sharing, not latency, is under test.
            clipper = Clipper(
                ClipperConfig(
                    app_name="test-app", selection_policy="single", latency_slo_ms=500.0
                )
            )
            clipper.deploy_model(
                ModelDeployment(
                    name="noop",
                    container_factory=lambda: NoOpContainer(output=1),
                    num_replicas=3,
                )
            )
            await clipper.start()
            queries = [Query(app_name="test-app", input=np.array([float(i)])) for i in range(60)]
            predictions = await asyncio.gather(*[clipper.predict(q) for q in queries])
            await clipper.stop()
            assert all(p.output == 1 for p in predictions)

        run_async(scenario())


class TestSyncWrappers:
    def test_sync_lifecycle_and_prediction(self, trained_svm, mnist_like_small):
        ds = mnist_like_small
        clipper = build_clipper({"svm": lambda: ClassifierContainer(trained_svm)}, policy="single")
        clipper.start_sync()
        prediction = clipper.predict_sync(Query(app_name="test-app", input=ds.X_test[0]))
        clipper.feedback_sync(
            Feedback(app_name="test-app", input=ds.X_test[0], label=int(ds.y_test[0]))
        )
        clipper.stop_sync()
        assert prediction.output in set(np.unique(ds.y_train))
