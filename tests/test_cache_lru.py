"""Tests for the exact-LRU cache."""

import pytest

from repro.cache.lru import LRUCache
from repro.core.exceptions import CacheError


class TestLRUCache:
    def test_put_get_round_trip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(CacheError):
            LRUCache(0)

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # make "a" most recently used
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.evictions == 1

    def test_update_moves_key_to_most_recent(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # update, making "a" most recent
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_keys_ordered_from_lru_to_mru(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.get("a")
        assert cache.keys() == ["b", "c", "a"]

    def test_never_exceeds_capacity(self):
        cache = LRUCache(5)
        for i in range(50):
            cache.put(i, i)
        assert len(cache) == 5
        assert set(cache.keys()) == {45, 46, 47, 48, 49}

    def test_clear(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
