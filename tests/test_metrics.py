"""Tests for the metrics registry (counters, meters, histograms)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import (
    Counter,
    Histogram,
    Meter,
    MetricsRegistry,
    summarize_latencies,
    throughput_qps,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_reset(self):
        counter = Counter("c")
        counter.increment(3)
        counter.reset()
        assert counter.value == 0


class TestMeter:
    def test_rate_counts_events_over_time(self):
        times = iter([0.0, 10.0])
        meter = Meter("m", clock=lambda: next(times, 10.0))
        meter.mark(100)
        assert meter.rate() == pytest.approx(10.0)

    def test_zero_elapsed_rate_is_zero(self):
        meter = Meter("m", clock=lambda: 5.0)
        meter.mark(10)
        assert meter.rate() == 0.0


class TestHistogram:
    def test_percentiles_and_mean(self):
        hist = Histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.mean() == pytest.approx(50.5)
        assert hist.p50() == pytest.approx(50.5)
        assert hist.p99() == pytest.approx(99.01, rel=1e-2)
        assert hist.max() == 100.0
        assert hist.count == 100

    def test_window_bounds_memory(self):
        hist = Histogram("h", window_size=10)
        for value in range(100):
            hist.observe(float(value))
        assert len(hist.values()) == 10
        assert min(hist.values()) == 90.0
        assert hist.count == 100

    def test_empty_histogram_returns_nan(self):
        hist = Histogram("h")
        assert math.isnan(hist.mean())
        assert math.isnan(hist.p99())

    def test_empty_reservoir_quantiles_all_nan(self):
        hist = Histogram("h")
        assert math.isnan(hist.p50())
        assert math.isnan(hist.p95())
        assert math.isnan(hist.max())
        assert hist.count == 0
        assert hist.values() == []

    def test_single_sample_quantiles_collapse_to_it(self):
        hist = Histogram("h")
        hist.observe(7.5)
        assert hist.p50() == 7.5
        assert hist.p95() == 7.5
        assert hist.p99() == 7.5
        assert hist.mean() == 7.5
        assert hist.max() == 7.5
        assert hist.count == 1

    def test_nan_observations_are_rejected(self):
        hist = Histogram("h")
        hist.observe(float("nan"))
        assert hist.count == 0
        hist.observe(1.0)
        hist.observe(float("nan"))
        assert hist.count == 1
        assert hist.values() == [1.0]
        assert hist.p50() == 1.0


class TestRegistry:
    def test_same_name_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.meter("m") is registry.meter("m")

    def test_snapshot_contains_all_metrics(self):
        registry = MetricsRegistry()
        registry.counter("queries").increment(4)
        registry.histogram("latency").observe(1.5)
        registry.meter("rate").mark(2)
        snapshot = registry.snapshot()
        assert snapshot.counters["queries"] == 4
        assert snapshot.histograms["latency"]["count"] == 1.0
        assert "rate" in snapshot.meters
        assert "counter queries = 4" in snapshot.describe()

    def test_reset_clears_values_but_keeps_names(self):
        registry = MetricsRegistry()
        registry.counter("queries").increment(4)
        registry.reset()
        assert registry.counter("queries").value == 0


class TestMetricFamily:
    def test_labels_memoises_children(self):
        registry = MetricsRegistry()
        family = registry.histogram_family("predict.stage_ms", label="stage")
        child = family.labels("rpc.send")
        assert family.labels("rpc.send") is child
        assert family.labels("queue_wait") is not child

    def test_child_names_carry_inline_label(self):
        registry = MetricsRegistry()
        family = registry.counter_family("events", label="kind")
        child = family.labels("retry")
        assert child.name == 'events{kind="retry"}'

    def test_children_register_in_main_registry(self):
        registry = MetricsRegistry()
        family = registry.histogram_family("stage_ms", label="stage")
        family.labels("combine").observe(1.0)
        snapshot = registry.snapshot()
        assert 'stage_ms{stage="combine"}' in snapshot.histograms
        # The child IS the registry's histogram under that composed name.
        assert family.labels("combine") is registry.histogram('stage_ms{stage="combine"}')

    def test_same_family_returned_for_same_name(self):
        registry = MetricsRegistry()
        assert registry.histogram_family("f", label="stage") is registry.histogram_family(
            "f", label="stage"
        )
        assert registry.meter_family("f2").labels("a") is registry.meter_family(
            "f2"
        ).labels("a")


class TestHelpers:
    def test_summarize_latencies(self):
        summary = summarize_latencies([1.0, 2.0, 3.0, 4.0])
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["max"] == 4.0

    def test_summarize_empty(self):
        summary = summarize_latencies([])
        assert summary["count"] == 0
        assert math.isnan(summary["mean"])

    def test_throughput(self):
        assert throughput_qps(100, 2.0) == 50.0
        assert throughput_qps(0, 0.0) == 0.0
        assert math.isinf(throughput_qps(10, 0.0))

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
    def test_summary_percentiles_are_ordered(self, values):
        summary = summarize_latencies(values)
        assert summary["p50"] <= summary["p95"] + 1e-9
        assert summary["p95"] <= summary["p99"] + 1e-9
        assert summary["p99"] <= summary["max"] + 1e-9
        assert min(values) - 1e-9 <= summary["mean"] <= max(values) + 1e-9
