"""Cold-start recovery: registry records back into a live serving instance."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import run_async
from repro.api.handlers import build_route_table
from repro.containers.chaos import CorruptingContainer, FlakyContainer
from repro.containers.noop import NoOpContainer
from repro.core.clipper import Clipper
from repro.core.config import BatchingConfig, ClipperConfig, ModelDeployment
from repro.core.exceptions import ManagementError
from repro.core.types import Query
from repro.management.frontend import ManagementFrontend
from repro.management.recovery import deploy_spec, deployment_from_record
from repro.state.durable import DurableKeyValueStore


def noop_factory():
    return NoOpContainer(output=1)


FACTORIES = {"noop": noop_factory}


def make_config(**kwargs):
    kwargs.setdefault("app_name", "app")
    kwargs.setdefault("latency_slo_ms", 250.0)
    kwargs.setdefault("selection_policy", "single")
    return ClipperConfig(**kwargs)


def make_store(tmp_path):
    return DurableKeyValueStore(str(tmp_path), fsync="never")


def make_frontend(store):
    return ManagementFrontend(
        store=store, monitor_health=False, manage_canaries=False
    )


async def run_lifecycle(store):
    """Deploy two versions, scale, and start a canary; then 'crash'."""
    mgmt = make_frontend(store)
    clipper = Clipper(make_config())
    clipper.deploy_model(
        ModelDeployment("m", noop_factory, factory_name="noop")
    )
    mgmt.register_application(clipper)
    await mgmt.start()
    await mgmt.deploy_model(
        "app",
        ModelDeployment(
            "m",
            noop_factory,
            version=2,
            factory_name="noop",
            num_replicas=2,
            batching=BatchingConfig(policy="fixed", initial_batch_size=4),
            max_batch_retries=5,
        ),
    )
    await mgmt.start_canary("app", "m", 2, weight=0.25)
    await mgmt.stop()
    # No clean shutdown of the store: a durable WAL needs none.


async def restore(store, factories=FACTORIES, config=None):
    mgmt = make_frontend(store)
    clipper = Clipper(config or make_config())
    report = await mgmt.restore_application(clipper, factories=factories)
    return mgmt, clipper, report


class TestRestoreApplication:
    def test_full_restore_of_versions_routing_and_canary(self, tmp_path):
        async def scenario():
            await run_lifecycle(make_store(tmp_path))
            mgmt, clipper, report = await restore(make_store(tmp_path))
            await mgmt.start()
            try:
                prediction = await clipper.predict(
                    Query(app_name="app", input=np.zeros(4))
                )
            finally:
                await mgmt.stop()
            return clipper, report, prediction

        clipper, report, prediction = run_async(scenario())
        assert report.complete
        assert report.versions_restored == 2
        assert report.routes_restored == 1
        assert report.canaries_resumed == 1
        # Routing resumed exactly where the dead process stopped.
        routing = clipper.routing.describe()["m"]
        assert routing["stable"] == "m:1"
        assert routing["canary"] == "m:2"
        assert dict((k, w) for k, w in routing["arms"])["m:2"] == 0.25
        # Replica counts and deploy spec round-tripped.
        records = {str(r.model_id): r for r in clipper.model_records()}
        assert len(records["m:2"].replica_set) == 2
        assert records["m:2"].deployment.batching.policy == "fixed"
        assert records["m:2"].deployment.max_batch_retries == 5
        assert prediction.output == 1

    def test_restored_registry_accepts_further_operations(self, tmp_path):
        async def scenario():
            await run_lifecycle(make_store(tmp_path))
            mgmt, clipper, _ = await restore(make_store(tmp_path))
            await mgmt.start()
            try:
                await mgmt.promote("app", "m")
            finally:
                await mgmt.stop()
            return mgmt, clipper

        mgmt, clipper = run_async(scenario())
        assert clipper.routing.describe()["m"]["stable"] == "m:2"
        assert mgmt.traffic_split("app", "m") is None
        assert mgmt.registry.active_version("app", "m") == 2

    def test_missing_factory_is_reported_not_fatal(self, tmp_path):
        async def scenario():
            await run_lifecycle(make_store(tmp_path))
            mgmt, clipper, report = await restore(make_store(tmp_path), factories={})
            return mgmt, clipper, report

        mgmt, clipper, report = run_async(scenario())
        assert not report.complete
        assert report.versions_restored == 0
        assert len(report.skipped) == 3  # two versions + the routing record
        assert all("m" == item["model"] for item in report.skipped)
        # The health surface tells the operator recovery was partial.
        status = mgmt.recovery_status()["app"]
        assert status["complete"] is False
        assert mgmt.describe("app")["recovery"]["complete"] is False

    def test_undeployed_versions_stay_dead(self, tmp_path):
        async def scenario():
            store = make_store(tmp_path)
            mgmt = make_frontend(store)
            clipper = Clipper(make_config())
            clipper.deploy_model(
                ModelDeployment("m", noop_factory, factory_name="noop")
            )
            mgmt.register_application(clipper)
            await mgmt.start()
            await mgmt.deploy_model(
                "app",
                ModelDeployment("m", noop_factory, version=2, factory_name="noop"),
            )
            await mgmt.undeploy_model("app", "m:2")
            await mgmt.stop()
            return await restore(make_store(tmp_path))

        _, clipper, report = run_async(scenario())
        assert report.complete
        assert [str(m) for m in clipper.deployed_models()] == ["m:1"]

    def test_restore_requires_registered_app_and_fresh_instance(self, tmp_path):
        async def unknown_app():
            store = make_store(tmp_path / "a")
            with pytest.raises(ManagementError):
                await make_frontend(store).restore_application(
                    Clipper(make_config()), factories=FACTORIES
                )

        async def stale_instance():
            store = make_store(tmp_path / "b")
            await run_lifecycle(store)
            dirty = Clipper(make_config())
            dirty.deploy_model(ModelDeployment("m", noop_factory))
            with pytest.raises(ManagementError):
                await make_frontend(store).restore_application(
                    dirty, factories=FACTORIES
                )

        run_async(unknown_app())
        run_async(stale_instance())

    def test_canary_controller_resumes_restored_canary(self, tmp_path):
        async def scenario():
            await run_lifecycle(make_store(tmp_path))
            store = make_store(tmp_path)
            mgmt = ManagementFrontend(
                store=store, monitor_health=False, manage_canaries=True
            )
            clipper = Clipper(make_config())
            await mgmt.restore_application(clipper, factories=FACTORIES)
            controller = mgmt.canary_controller("app")
            await controller.evaluate_once()
            return controller

        controller = run_async(scenario())
        # The controller began a watch for the restored split without any
        # operator involvement — the resume is automatic.
        assert "m" in controller._watches

    def test_health_api_reports_recovery(self, tmp_path):
        async def scenario():
            await run_lifecycle(make_store(tmp_path))
            mgmt, _, _ = await restore(make_store(tmp_path))
            table = build_route_table(admin=mgmt, factories=FACTORIES)
            response = await table.dispatch("GET", "/api/v1/health")
            return response

        response = run_async(scenario())
        assert response.status == 200
        recovery = response.body["recovery"]["app"]
        assert recovery["complete"] is True
        assert recovery["versions_restored"] == 2
        assert recovery["store"]["clean"] is True

    def test_rest_deploy_spec_round_trips(self, tmp_path):
        """A version deployed over REST restores via the same factory name."""

        async def scenario():
            store = make_store(tmp_path)
            mgmt = make_frontend(store)
            clipper = Clipper(make_config())
            clipper.deploy_model(
                ModelDeployment("noop", noop_factory, factory_name="noop")
            )
            mgmt.register_application(clipper)
            await mgmt.start()
            table = build_route_table(admin=mgmt, factories=FACTORIES)
            response = await table.dispatch(
                "POST",
                "/api/v1/admin/app/deploy",
                {"model_name": "noop", "factory": "noop", "version": 2,
                 "num_replicas": 2},
            )
            assert response.status == 200
            await mgmt.stop()
            return await restore(make_store(tmp_path))

        _, clipper, report = run_async(scenario())
        assert report.complete
        records = {str(r.model_id): r for r in clipper.model_records()}
        assert set(records) == {"noop:1", "noop:2"}
        assert records["noop:2"].deployment.factory_name == "noop"
        assert len(records["noop:2"].replica_set) == 2


class TestDeploySpecHelpers:
    def test_spec_round_trip_preserves_deployment_shape(self):
        deployment = ModelDeployment(
            "m",
            noop_factory,
            num_replicas=3,
            version=7,
            serialize_rpc=False,
            max_batch_retries=1,
            factory_name="noop",
            batching=BatchingConfig(policy="quantile", quantile=0.95),
        )
        record = {
            "version": 7,
            "num_replicas": 3,
            "state": "staged",
            "batching_policy": "quantile",
            "metadata": {"deploy_spec": deploy_spec(deployment)},
        }
        rebuilt = deployment_from_record("m", record, FACTORIES)
        assert rebuilt.version == 7
        assert rebuilt.num_replicas == 3
        assert rebuilt.serialize_rpc is False
        assert rebuilt.max_batch_retries == 1
        assert rebuilt.factory_name == "noop"
        assert rebuilt.batching.policy == "quantile"
        assert rebuilt.batching.quantile == 0.95
        assert rebuilt.container_factory is noop_factory

    def test_missing_factory_raises(self):
        record = {"version": 1, "num_replicas": 1, "state": "staged",
                  "metadata": {}}
        with pytest.raises(ManagementError):
            deployment_from_record("ghost", record, {})

    def test_bare_model_name_fallback(self):
        """Pre-durability records (no spec) resolve by bare model name."""
        record = {"version": 1, "num_replicas": 2, "state": "serving",
                  "batching_policy": "aimd", "metadata": {}}
        rebuilt = deployment_from_record("noop", record, FACTORIES)
        assert rebuilt.container_factory is noop_factory
        assert rebuilt.num_replicas == 2


class TestFaultPointContainers:
    def test_flaky_container_dies_after_budget(self):
        container = FlakyContainer(healthy_predictions=3, output=5)
        assert container.predict_batch([1, 2]) == [5, 5]
        assert container.healthy()
        assert container.predict_batch([3]) == [5]
        assert not container.healthy()
        with pytest.raises(RuntimeError):
            container.predict_batch([4])

    def test_corrupting_container_garbage_mode(self):
        container = CorruptingContainer(
            output=1, corrupt_output=-1, healthy_predictions=2
        )
        assert container.predict_batch([1, 2]) == [1, 1]
        assert container.predict_batch([3, 4]) == [-1, -1]
        assert container.healthy()  # probes cannot tell
        assert container.corrupted_batches == 1

    def test_corrupting_container_short_mode(self):
        container = CorruptingContainer(output=1, mode="short")
        assert len(container.predict_batch([1, 2, 3])) == 2

    def test_short_batch_surfaces_as_failure_not_misalignment(self):
        """The replica layer must reject a short batch outright."""

        async def scenario():
            clipper = Clipper(make_config(app_name="sick", straggler_mitigation=False))
            clipper.deploy_model(
                ModelDeployment(
                    "bad",
                    lambda: CorruptingContainer(output=1, mode="short"),
                    max_batch_retries=0,
                )
            )
            await clipper.start()
            try:
                with pytest.raises(Exception):
                    await clipper.predict(
                        Query(app_name="sick", input=np.zeros(4), latency_slo_ms=200.0)
                    )
            finally:
                await clipper.stop()

        run_async(scenario())
