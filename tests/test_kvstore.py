"""Tests for the in-memory key-value state store (Redis stand-in)."""

import pytest

from repro.core.exceptions import StateStoreError
from repro.state.kvstore import KeyValueStore


class TestBasicOperations:
    def test_put_get_round_trip(self):
        store = KeyValueStore()
        store.put("ns", "key", {"weights": [1, 2]})
        assert store.get("ns", "key") == {"weights": [1, 2]}

    def test_get_missing_returns_default(self):
        store = KeyValueStore()
        assert store.get("ns", "missing") is None
        assert store.get("ns", "missing", default=5) == 5

    def test_namespaces_are_isolated(self):
        store = KeyValueStore()
        store.put("a", "k", 1)
        store.put("b", "k", 2)
        assert store.get("a", "k") == 1
        assert store.get("b", "k") == 2

    def test_delete(self):
        store = KeyValueStore()
        store.put("ns", "k", 1)
        assert store.delete("ns", "k") is True
        assert store.delete("ns", "k") is False
        assert not store.contains("ns", "k")

    def test_keys_and_namespaces(self):
        store = KeyValueStore()
        store.put("ns", "b", 1)
        store.put("ns", "a", 2)
        store.put("other", "z", 3)
        assert store.keys("ns") == ["a", "b"]
        assert store.namespaces() == ["ns", "other"]
        assert store.size() == 3

    def test_clear_namespace_only(self):
        store = KeyValueStore()
        store.put("ns", "a", 1)
        store.put("other", "b", 2)
        store.clear("ns")
        assert store.keys("ns") == []
        assert store.get("other", "b") == 2

    def test_validation_errors(self):
        store = KeyValueStore()
        with pytest.raises(StateStoreError):
            store.put("", "k", 1)
        with pytest.raises(StateStoreError):
            store.get("ns", "")


class TestVersioning:
    def test_versions_increment_on_put(self):
        store = KeyValueStore()
        assert store.put("ns", "k", 1) == 1
        assert store.put("ns", "k", 2) == 2
        value, version = store.get_with_version("ns", "k")
        assert (value, version) == (2, 2)

    def test_put_if_version_succeeds_on_match(self):
        store = KeyValueStore()
        store.put("ns", "k", 1)
        assert store.put_if_version("ns", "k", 2, expected_version=1) is True
        assert store.get("ns", "k") == 2

    def test_put_if_version_fails_on_mismatch(self):
        store = KeyValueStore()
        store.put("ns", "k", 1)
        store.put("ns", "k", 2)
        assert store.put_if_version("ns", "k", 3, expected_version=1) is False
        assert store.get("ns", "k") == 2

    def test_put_if_version_none_means_insert_only(self):
        store = KeyValueStore()
        assert store.put_if_version("ns", "new", 1, expected_version=None) is True
        assert store.put_if_version("ns", "new", 2, expected_version=None) is False


class TestTTL:
    def test_entry_expires_after_ttl(self):
        clock = {"now": 0.0}
        store = KeyValueStore(clock=lambda: clock["now"])
        store.put("ns", "k", 1, ttl_s=10.0)
        assert store.get("ns", "k") == 1
        clock["now"] = 11.0
        assert store.get("ns", "k") is None
        assert store.keys("ns") == []

    def test_ttl_must_be_positive(self):
        store = KeyValueStore()
        with pytest.raises(StateStoreError):
            store.put("ns", "k", 1, ttl_s=0.0)

    def test_unexpired_entry_survives(self):
        clock = {"now": 0.0}
        store = KeyValueStore(clock=lambda: clock["now"])
        store.put("ns", "k", 1, ttl_s=10.0)
        clock["now"] = 5.0
        assert store.get("ns", "k") == 1


class TestTTLVersionInteraction:
    """An entry expiring between get_with_version and put_if_version.

    Versions are drawn from one store-wide monotonic sequence, so a stale
    version can never match again after the entry expired (or was deleted)
    and the key was re-created — the ABA hazard of per-key counters that
    restart at 1.
    """

    def make(self):
        clock = {"now": 0.0}
        return clock, KeyValueStore(clock=lambda: clock["now"])

    def test_cas_against_expired_entry_fails(self):
        clock, store = self.make()
        store.put("ns", "k", "old", ttl_s=10.0)
        _, version = store.get_with_version("ns", "k")
        clock["now"] = 11.0  # expires mid-read-modify-write
        assert store.put_if_version("ns", "k", "new", version) is False
        assert store.get("ns", "k") is None

    def test_insert_after_expiry_succeeds_with_larger_version(self):
        clock, store = self.make()
        store.put("ns", "k", "old", ttl_s=10.0)
        _, old_version = store.get_with_version("ns", "k")
        clock["now"] = 11.0
        # The key counts as absent now: an expected_version=None insert wins.
        assert store.put_if_version("ns", "k", "new", None) is True
        _, new_version = store.get_with_version("ns", "k")
        assert new_version > old_version

    def test_stale_version_never_matches_recreated_entry(self):
        clock, store = self.make()
        store.put("ns", "k", "v1", ttl_s=10.0)
        _, stale = store.get_with_version("ns", "k")
        clock["now"] = 11.0
        store.put("ns", "k", "v2", ttl_s=10.0)  # re-created after expiry
        # The ABA case: with per-key versions restarting at 1 this stale CAS
        # would wrongly succeed against the unrelated re-created entry.
        assert store.put_if_version("ns", "k", "v3", stale) is False
        assert store.get("ns", "k") == "v2"

    def test_stale_version_never_matches_after_delete_and_reinsert(self):
        _, store = self.make()
        store.put("ns", "k", "v1")
        _, stale = store.get_with_version("ns", "k")
        store.delete("ns", "k")
        store.put("ns", "k", "v2")
        assert store.put_if_version("ns", "k", "v3", stale) is False
        assert store.get("ns", "k") == "v2"

    def test_cas_update_preserves_remaining_ttl(self):
        clock, store = self.make()
        store.put("ns", "k", "old", ttl_s=10.0)
        clock["now"] = 5.0
        _, version = store.get_with_version("ns", "k")
        assert store.put_if_version("ns", "k", "new", version) is True
        clock["now"] = 9.0
        assert store.get("ns", "k") == "new"  # original deadline still holds
        clock["now"] = 11.0
        assert store.get("ns", "k") is None


class TestConcurrentOptimisticWriters:
    def test_interleaved_cas_loses_no_updates(self):
        """Two management writers CAS-incrementing one record stay linearizable."""
        import threading

        store = KeyValueStore()
        store.put("mgmt", "counter", 0)
        increments_per_writer = 200
        barrier = threading.Barrier(2)

        def writer():
            barrier.wait()
            for _ in range(increments_per_writer):
                while True:
                    value, version = store.get_with_version("mgmt", "counter")
                    if store.put_if_version("mgmt", "counter", value + 1, version):
                        break

        threads = [threading.Thread(target=writer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        value, version = store.get_with_version("mgmt", "counter")
        assert value == 2 * increments_per_writer
        # One initial put plus exactly one version bump per successful CAS.
        assert version == 1 + 2 * increments_per_writer

    def test_same_snapshot_cas_admits_exactly_one_winner(self):
        store = KeyValueStore()
        store.put("mgmt", "record", {"owner": None})
        _, version = store.get_with_version("mgmt", "record")
        outcomes = [
            store.put_if_version("mgmt", "record", {"owner": "a"}, version),
            store.put_if_version("mgmt", "record", {"owner": "b"}, version),
        ]
        assert sorted(outcomes) == [False, True]
        assert store.get("mgmt", "record") == {"owner": "a"}
