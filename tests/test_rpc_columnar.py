"""Tests for the columnar batch wire format, zero-copy decoding, writev-style
framing and the pipelined RPC client/dispatcher path."""

import asyncio
import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from helpers import run_async
from repro.batching.dispatcher import ReplicaDispatcher
from repro.batching.queue import BatchingQueue, PendingQuery
from repro.containers.base import FunctionContainer, ModelContainer
from repro.containers.replica import ContainerReplica
from repro.core.exceptions import ContainerError, SerializationError
from repro.core.types import ModelId
from repro.batching.controllers import FixedBatchSizeController
from repro.rpc.client import RpcClient
from repro.rpc.protocol import encode_message, encode_message_buffers
from repro.rpc.serialization import (
    _TAG_LIST,
    _TAG_NDARRAY_BATCH,
    deserialize,
    serialize,
    serialize_buffers,
)
from repro.rpc.server import ContainerRpcServer
from repro.rpc.transport import InProcessTransport


class TestColumnarRoundTrip:
    @pytest.mark.parametrize(
        "dtype", [np.float64, np.float32, np.int64, np.int32, np.uint8, np.bool_]
    )
    @pytest.mark.parametrize("shape", [(4,), (3, 5), (2, 3, 4)])
    @pytest.mark.parametrize("count", [2, 3, 17])
    def test_dtypes_shapes_batch_sizes(self, dtype, shape, count):
        rng = np.random.default_rng(0)
        batch = [
            (rng.standard_normal(shape) * 10).astype(dtype) for _ in range(count)
        ]
        encoded = serialize(batch)
        assert encoded[0] == _TAG_NDARRAY_BATCH
        decoded = deserialize(encoded)
        assert isinstance(decoded, list) and len(decoded) == count
        for original, copy in zip(batch, decoded):
            assert copy.dtype == original.dtype
            assert copy.shape == original.shape
            np.testing.assert_array_equal(copy, original)

    def test_homogeneous_batch_is_smaller_than_tagged(self):
        batch = [np.zeros(64, dtype=np.float32) for _ in range(16)]
        columnar = serialize(batch)
        tagged = b"".join(serialize(a) for a in batch)
        # One shared header instead of 16 per-element headers.
        assert len(columnar) < len(tagged)

    def test_single_element_list_stays_tagged(self):
        encoded = serialize([np.zeros(3)])
        assert encoded[0] == _TAG_LIST

    def test_zero_d_arrays_stay_tagged(self):
        encoded = serialize([np.array(1.5), np.array(2.5)])
        assert encoded[0] == _TAG_LIST
        decoded = deserialize(encoded)
        # 0-d inputs have always round-tripped as shape-(1,) arrays (the
        # encoder's ascontiguousarray promotes 0-d); values are preserved.
        assert [a.item() for a in decoded] == [1.5, 2.5]

    def test_non_contiguous_elements_round_trip(self):
        base = np.arange(40.0).reshape(4, 10)
        batch = [base[i, ::2] for i in range(4)]  # strided views
        decoded = deserialize(serialize(batch))
        for original, copy in zip(batch, decoded):
            np.testing.assert_array_equal(copy, original)

    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float32,
            shape=hnp.array_shapes(min_dims=2, max_dims=3, max_side=6),
            elements=st.floats(-1e6, 1e6, width=32),
        )
    )
    def test_property_stacked_rows_round_trip(self, stacked):
        batch = list(stacked)  # homogeneous rows of one array
        decoded = deserialize(serialize(batch))
        np.testing.assert_array_equal(np.stack(decoded), stacked)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=1, max_value=9))
    def test_property_count_and_width(self, count, width):
        batch = [np.full(width, i, dtype=np.int32) for i in range(count)]
        decoded = deserialize(serialize(batch))
        assert len(decoded) == count
        for i, copy in enumerate(decoded):
            np.testing.assert_array_equal(copy, np.full(width, i, dtype=np.int32))


class TestHeterogeneousFallback:
    @pytest.mark.parametrize(
        "batch",
        [
            [np.zeros(3, dtype=np.float64), np.zeros(3, dtype=np.float32)],  # dtype
            [np.zeros(3), np.zeros(4)],  # shape
            [np.zeros(3), "not an array"],  # type
            [np.zeros((2, 2)), np.zeros(4)],  # ndim
        ],
    )
    def test_mixed_batches_use_tagged_encoding(self, batch):
        encoded = serialize(batch)
        assert encoded[0] == _TAG_LIST
        decoded = deserialize(encoded)
        assert len(decoded) == len(batch)
        for original, copy in zip(batch, decoded):
            if isinstance(original, np.ndarray):
                np.testing.assert_array_equal(copy, original)
            else:
                assert copy == original

    def test_batch_nested_in_request_payload(self):
        payload = {
            "type": 1,
            "request_id": 9,
            "inputs": [np.arange(6, dtype=np.float32) for _ in range(5)],
        }
        decoded = deserialize(serialize(payload))
        assert decoded["request_id"] == 9
        for i in range(5):
            np.testing.assert_array_equal(
                decoded["inputs"][i], np.arange(6, dtype=np.float32)
            )


class TestZeroCopyDecode:
    def test_decoded_single_array_is_readonly_view(self):
        frame = serialize(np.arange(100.0))
        decoded = deserialize(frame)
        assert decoded.flags.writeable is False
        assert decoded.base is not None  # a view, not an owning copy
        with pytest.raises(ValueError):
            decoded[0] = 1.0

    def test_decoded_batch_rows_are_readonly_views(self):
        batch = [np.arange(64, dtype=np.float32) + i for i in range(4)]
        decoded = deserialize(serialize(batch))
        for row in decoded:
            assert row.flags.writeable is False
            with pytest.raises(ValueError):
                row[0] = 0.0

    def test_copy_on_demand(self):
        decoded = deserialize(serialize(np.arange(10.0)))
        writable = decoded.copy()
        writable[0] = 42.0
        assert writable[0] == 42.0


class TestCorruptColumnarFrames:
    def _batch_frame(self):
        return serialize([np.arange(32, dtype=np.float32) for _ in range(4)])

    def test_truncated_payload_raises(self):
        frame = self._batch_frame()
        with pytest.raises(SerializationError):
            deserialize(frame[: len(frame) // 2])

    def test_truncated_header_raises(self):
        frame = self._batch_frame()
        with pytest.raises(SerializationError):
            deserialize(frame[:3])

    def test_trailing_garbage_raises(self):
        with pytest.raises(SerializationError):
            deserialize(self._batch_frame() + b"x")

    def test_corrupt_count_raises(self):
        frame = bytearray(self._batch_frame())
        # dtype "<f4": tag(1) + len(1) + name(3) + ndim(1) + dim(8) → count at 14.
        struct.pack_into("<I", frame, 14, 2**31)
        with pytest.raises(SerializationError):
            deserialize(bytes(frame))

    def test_corrupt_string_length_raises(self):
        frame = bytearray(serialize("hello"))
        struct.pack_into("<I", frame, 1, 2**20)
        with pytest.raises(SerializationError):
            deserialize(bytes(frame))

    def test_truncated_bytes_payload_raises(self):
        frame = serialize(b"payload-bytes")
        with pytest.raises(SerializationError):
            deserialize(frame[:-2])


class TestBufferListFraming:
    def test_segments_join_to_serialize_output(self):
        payload = {
            "type": 1,
            "request_id": 3,
            "inputs": [np.arange(512, dtype=np.float64) for _ in range(3)],
            "metadata": {"k": "v"},
        }
        assert b"".join(serialize_buffers(payload)) == serialize(payload)

    def test_large_payload_segments_are_zero_copy_views(self):
        array = np.arange(1024, dtype=np.float64)
        segments = serialize_buffers({"type": 1, "request_id": 0, "a": array})
        views = [s for s in segments if isinstance(s, memoryview)]
        assert views, "large array payload should be a standalone memoryview"
        assert all(v.readonly for v in views)
        assert sum(v.nbytes for v in views) == array.nbytes

    def test_encode_message_buffers_matches_encode_message(self):
        payload = {"type": 2, "request_id": 1, "outputs": [np.ones(300), np.ones(300)]}
        assert b"".join(encode_message_buffers(payload)) == encode_message(payload)

    def test_length_prefix_covers_all_segments(self):
        payload = {"type": 1, "request_id": 7, "inputs": [np.zeros(700), np.zeros(700)]}
        segments = encode_message_buffers(payload)
        (length,) = struct.unpack("<I", bytes(segments[0]))
        assert length == sum(len(s) for s in segments[1:])


class TestPipelinedClient:
    def test_concurrent_predicts_map_to_right_responses(self):
        class EchoFirst(ModelContainer):
            def predict_batch(self, inputs):
                return [float(np.asarray(x).ravel()[0]) for x in inputs]

        async def scenario():
            pair = InProcessTransport()
            server = ContainerRpcServer(EchoFirst(), pair.server_side)
            client = RpcClient(pair.client_side, timeout_s=5.0)
            server.start()
            batches = [[np.full(4, float(i))] for i in range(8)]
            responses = await asyncio.gather(
                *(client.predict("echo:1", batch) for batch in batches)
            )
            for i, response in enumerate(responses):
                assert response.ok
                assert response.outputs == [float(i)]
            await server.stop()
            await client.close()

        run_async(scenario())

    def test_heartbeat_interleaves_with_inflight_predicts(self):
        class Slowish(ModelContainer):
            def predict_batch(self, inputs):
                return [1] * len(inputs)

        async def scenario():
            pair = InProcessTransport()
            server = ContainerRpcServer(Slowish(), pair.server_side)
            client = RpcClient(pair.client_side, timeout_s=5.0)
            server.start()
            predict_task = asyncio.ensure_future(
                client.predict("m:1", [np.zeros(2)] * 3)
            )
            assert await client.heartbeat(timeout_s=2.0) is True
            response = await predict_task
            assert response.outputs == [1, 1, 1]
            await server.stop()
            await client.close()

        run_async(scenario())

    def test_heartbeat_timeout_bounds_blocked_send(self):
        """The probe deadline covers lock wait + send, not just the recv."""

        class WedgedTransport:
            closed = False

            async def send(self, payload):
                await asyncio.Event().wait()  # never completes

            async def recv(self):
                await asyncio.Event().wait()

            async def close(self):
                pass

        async def scenario():
            client = RpcClient(WedgedTransport(), timeout_s=30.0)
            start = asyncio.get_event_loop().time()
            assert await client.heartbeat(timeout_s=0.2) is False
            assert asyncio.get_event_loop().time() - start < 5.0

        run_async(scenario())

    def test_close_fails_inflight_waiters(self):
        async def scenario():
            pair = InProcessTransport()
            client = RpcClient(pair.client_side, timeout_s=5.0)
            task = asyncio.ensure_future(client.predict("m:1", [np.zeros(1)]))
            await asyncio.sleep(0.01)  # let the request hit the wire
            await client.close()
            from repro.core.exceptions import RpcError

            with pytest.raises(RpcError):
                await task

        run_async(scenario())


class TestPipelinedDispatcher:
    def _item(self, value):
        return PendingQuery(
            input=np.full(4, float(value)),
            future=asyncio.get_event_loop().create_future(),
        )

    def test_results_map_to_right_futures_with_window_2(self):
        class EchoFirst(ModelContainer):
            def predict_batch(self, inputs):
                return [float(np.asarray(x).ravel()[0]) for x in inputs]

        async def scenario():
            replica = ContainerReplica(ModelId("echo"), 0, EchoFirst())
            queue = BatchingQueue()
            dispatcher = ReplicaDispatcher(
                replica,
                queue,
                FixedBatchSizeController(batch_size=3),
                pipeline_window=2,
            )
            await replica.start()
            dispatcher.start()
            items = [self._item(i) for i in range(30)]
            for item in items:
                await queue.put(item)
            results = await asyncio.gather(*[item.future for item in items])
            assert results == [float(i) for i in range(30)]
            # the pipelined loop really split this into several batches
            assert len(dispatcher.batch_history) >= 5
            await dispatcher.stop()
            await replica.stop()

        run_async(scenario())

    def test_retries_resolve_right_futures_under_pipelining(self):
        class FlakyContainer(ModelContainer):
            """Fails its first two batches, then echoes inputs."""

            def __init__(self):
                self.calls = 0

            def predict_batch(self, inputs):
                self.calls += 1
                if self.calls <= 2:
                    raise RuntimeError("transient failure")
                return [float(np.asarray(x).ravel()[0]) for x in inputs]

        async def scenario():
            replica = ContainerReplica(ModelId("flaky"), 0, FlakyContainer())
            queue = BatchingQueue()
            dispatcher = ReplicaDispatcher(
                replica,
                queue,
                FixedBatchSizeController(batch_size=4),
                max_retries=3,
                failure_cooldown_ms=1.0,
                pipeline_window=2,
            )
            await replica.start()
            dispatcher.start()
            items = [self._item(i) for i in range(12)]
            for item in items:
                await queue.put(item)
            results = await asyncio.wait_for(
                asyncio.gather(*[item.future for item in items]), timeout=5.0
            )
            assert results == [float(i) for i in range(12)]
            assert dispatcher.batches_failed >= 2
            await dispatcher.stop()
            await replica.stop()

        run_async(scenario())

    def test_exhausted_retries_fail_futures_with_window_2(self):
        class AlwaysFailing(ModelContainer):
            def predict_batch(self, inputs):
                raise RuntimeError("dead")

        async def scenario():
            replica = ContainerReplica(ModelId("dead"), 0, AlwaysFailing())
            queue = BatchingQueue()
            dispatcher = ReplicaDispatcher(
                replica,
                queue,
                FixedBatchSizeController(batch_size=4),
                max_retries=1,
                failure_cooldown_ms=1.0,
                pipeline_window=2,
            )
            await replica.start()
            dispatcher.start()
            items = [self._item(i) for i in range(4)]
            for item in items:
                await queue.put(item)
            done = await asyncio.wait_for(
                asyncio.gather(
                    *[item.future for item in items], return_exceptions=True
                ),
                timeout=5.0,
            )
            assert all(isinstance(r, ContainerError) for r in done)
            await dispatcher.stop()
            await replica.stop()

        run_async(scenario())

    def test_window_1_preserves_serial_dispatch(self):
        observed = []

        class Recorder(ModelContainer):
            def predict_batch(self, inputs):
                observed.append(len(inputs))
                return [0] * len(inputs)

        async def scenario():
            replica = ContainerReplica(ModelId("rec"), 0, Recorder(), use_executor=False)
            queue = BatchingQueue()
            dispatcher = ReplicaDispatcher(
                replica,
                queue,
                FixedBatchSizeController(batch_size=8),
                pipeline_window=1,
            )
            await replica.start()
            dispatcher.start()
            items = [self._item(i) for i in range(16)]
            for item in items:
                await queue.put(item)
            await asyncio.gather(*[item.future for item in items])
            await dispatcher.stop()
            await replica.stop()
            assert sum(observed) == 16

        run_async(scenario())

    def test_serialized_batch_through_full_rpc_stack(self):
        """Columnar encode → transport → zero-copy decode → container."""

        async def scenario():
            container = FunctionContainer(
                lambda xs: [float(np.sum(x)) for x in xs]
            )
            replica = ContainerReplica(
                ModelId("sum"), 0, container, serialize_messages=True
            )
            queue = BatchingQueue()
            dispatcher = ReplicaDispatcher(
                replica, queue, FixedBatchSizeController(batch_size=8),
                pipeline_window=2,
            )
            await replica.start()
            dispatcher.start()
            items = [
                PendingQuery(
                    input=np.full(8, float(i), dtype=np.float32),
                    future=asyncio.get_event_loop().create_future(),
                )
                for i in range(24)
            ]
            for item in items:
                await queue.put(item)
            results = await asyncio.gather(*[item.future for item in items])
            assert results == [8.0 * i for i in range(24)]
            await dispatcher.stop()
            await replica.stop()

        run_async(scenario())
