"""Tests for the synthetic dataset generators and registries (Table 1 / Table 2)."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_REGISTRY,
    dataset_table,
    load_cifar_like,
    load_imagenet_like,
    load_mnist_like,
    load_timit_like,
    make_classification,
)
from repro.datasets.registry import model_zoo_table
from repro.datasets.speech import utterances_to_fixed_features
from repro.mlkit import LinearSVM


class TestMakeClassification:
    def test_shapes_and_splits(self):
        ds = make_classification(n_samples=200, n_features=30, n_classes=4, random_state=0)
        assert ds.X_train.shape[1] == 30
        assert ds.X_train.shape[0] + ds.X_test.shape[0] == 200
        assert ds.n_classes == 4
        assert ds.n_features == 30
        assert set(np.unique(ds.y_train)) <= set(range(4))

    def test_deterministic_given_seed(self):
        a = make_classification(n_samples=100, n_features=10, n_classes=3, random_state=5)
        b = make_classification(n_samples=100, n_features=10, n_classes=3, random_state=5)
        np.testing.assert_array_equal(a.X_train, b.X_train)
        np.testing.assert_array_equal(a.y_test, b.y_test)

    def test_different_seeds_differ(self):
        a = make_classification(n_samples=100, n_features=10, n_classes=3, random_state=1)
        b = make_classification(n_samples=100, n_features=10, n_classes=3, random_state=2)
        assert not np.array_equal(a.X_train, b.X_train)

    def test_difficulty_orders_learnability(self):
        easy = make_classification(n_samples=800, n_features=32, n_classes=5, difficulty=0.3, random_state=0)
        hard = make_classification(n_samples=800, n_features=32, n_classes=5, difficulty=3.0, random_state=0)
        easy_acc = LinearSVM(epochs=5, random_state=0).fit(easy.X_train, easy.y_train).score(easy.X_test, easy.y_test)
        hard_acc = LinearSVM(epochs=5, random_state=0).fit(hard.X_train, hard.y_train).score(hard.X_test, hard.y_test)
        assert easy_acc > hard_acc

    def test_label_noise_bounds_accuracy(self):
        noisy = make_classification(
            n_samples=800, n_features=16, n_classes=2, difficulty=0.2,
            label_noise=0.4, random_state=0,
        )
        acc = LinearSVM(epochs=5, random_state=0).fit(noisy.X_train, noisy.y_train).score(noisy.X_test, noisy.y_test)
        assert acc < 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            make_classification(n_samples=3, n_features=4, n_classes=2)
        with pytest.raises(ValueError):
            make_classification(n_samples=100, n_features=4, n_classes=1)
        with pytest.raises(ValueError):
            make_classification(n_samples=100, n_features=4, n_classes=2, test_fraction=0.0)
        with pytest.raises(ValueError):
            make_classification(n_samples=100, n_features=4, n_classes=2, label_noise=1.0)

    def test_describe(self):
        ds = make_classification(n_samples=100, n_features=8, n_classes=2, name="demo", random_state=0)
        assert "demo" in ds.describe()


class TestImageLoaders:
    def test_mnist_like_dimensions_match_table1(self):
        ds = load_mnist_like(n_samples=300)
        assert ds.n_features == 28 * 28
        assert ds.n_classes == 10
        assert ds.input_shape == (28, 28)

    def test_cifar_like_dimensions_match_table1(self):
        ds = load_cifar_like(n_samples=300)
        assert ds.n_features == 32 * 32 * 3
        assert ds.n_classes == 10

    def test_imagenet_like_has_many_classes(self):
        ds = load_imagenet_like(n_samples=600, n_classes=50)
        assert ds.n_classes == 50
        assert ds.n_features == 2048

    def test_reduced_feature_variants_for_fast_tests(self):
        ds = load_mnist_like(n_samples=200, n_features=64)
        assert ds.n_features == 64

    def test_difficulty_ordering_mnist_vs_cifar(self):
        mnist = load_mnist_like(n_samples=900, n_features=64, random_state=0)
        cifar = load_cifar_like(n_samples=900, n_features=64, random_state=0)
        mnist_acc = LinearSVM(epochs=5, random_state=0).fit(mnist.X_train, mnist.y_train).score(mnist.X_test, mnist.y_test)
        cifar_acc = LinearSVM(epochs=5, random_state=0).fit(cifar.X_train, cifar.y_train).score(cifar.X_test, cifar.y_test)
        assert mnist_acc > cifar_acc


class TestTimitLike:
    def test_corpus_structure(self):
        corpus = load_timit_like(n_speakers=16, utterances_per_speaker=4, random_state=0)
        assert corpus.n_dialects == 8
        assert len(corpus.train) + len(corpus.test) == 16 * 4
        assert len(corpus.test_speakers()) >= 8

    def test_dialects_cover_all_eight(self):
        corpus = load_timit_like(n_speakers=16, utterances_per_speaker=2, random_state=0)
        dialects = {u.dialect for u in corpus.train} | {u.dialect for u in corpus.test}
        assert dialects == set(range(8))

    def test_utterances_have_mfcc_frames(self):
        corpus = load_timit_like(n_speakers=16, utterances_per_speaker=2, random_state=0)
        utterance = corpus.train[0]
        assert utterance.frames.ndim == 2
        assert utterance.frames.shape[1] == corpus.n_features

    def test_speaker_streams(self):
        corpus = load_timit_like(n_speakers=16, utterances_per_speaker=3, random_state=0)
        speaker = corpus.test_speakers()[0]
        utterances = corpus.utterances_for_speaker(speaker)
        assert len(utterances) == 3
        assert all(u.speaker_id == speaker for u in utterances)

    def test_fixed_features_shape(self):
        corpus = load_timit_like(n_speakers=16, utterances_per_speaker=2, random_state=0)
        X, y = utterances_to_fixed_features(corpus.train)
        assert X.shape[0] == len(corpus.train)
        assert X.shape[1] == corpus.n_features * 4
        assert y.shape[0] == X.shape[0]

    def test_dialect_shift_makes_cross_dialect_harder(self):
        """The property Figure 10 needs: per-dialect structure in the data."""
        corpus = load_timit_like(
            n_speakers=32, utterances_per_speaker=8, dialect_shift=3.0, random_state=0
        )
        from repro.mlkit import LogisticRegression

        d0_train = corpus.utterances_for_dialect(0, "train")
        d1_train = corpus.utterances_for_dialect(1, "train")
        d0_test = corpus.utterances_for_dialect(0, "test")
        X0, y0 = utterances_to_fixed_features(d0_train)
        X1, y1 = utterances_to_fixed_features(d1_train)
        X0t, y0t = utterances_to_fixed_features(d0_test)
        own = LogisticRegression(epochs=30, learning_rate=0.1, random_state=0).fit(X0, y0)
        other = LogisticRegression(epochs=30, learning_rate=0.1, random_state=0).fit(X1, y1)
        assert own.score(X0t, y0t) >= other.score(X0t, y0t)

    def test_validation(self):
        with pytest.raises(ValueError):
            load_timit_like(n_speakers=4)


class TestRegistries:
    def test_dataset_table_has_four_rows(self):
        rows = dataset_table()
        assert len(rows) == 4
        assert [row["dataset"] for row in rows] == ["MNIST", "CIFAR", "ImageNet", "Speech (TIMIT)"]
        assert rows[0]["features"] == "28x28"
        assert rows[2]["labels"] == 1000

    def test_registry_keys(self):
        assert set(DATASET_REGISTRY) == {"mnist", "cifar", "imagenet", "speech"}

    def test_model_zoo_table_matches_table2(self):
        rows = model_zoo_table()
        assert len(rows) == 5
        frameworks = {row["framework"] for row in rows}
        assert frameworks == {"Caffe", "TensorFlow"}
