"""Tests for the TF-Serving-like baseline and the non-adaptive selection baselines."""

import asyncio

import numpy as np
import pytest

from helpers import run_async
from repro.baselines.selection import ABTestingSelection, StaticSelection
from repro.baselines.tfserving import TFServingLikeServer
from repro.containers.base import ModelContainer
from repro.containers.noop import NoOpContainer
from repro.core.exceptions import ClipperError


class TestTFServingLikeServer:
    def test_serves_predictions(self):
        async def scenario():
            server = TFServingLikeServer(NoOpContainer(output=3), batch_size=4)
            await server.start()
            results = await asyncio.gather(*[server.predict(np.zeros(2)) for _ in range(10)])
            await server.stop()
            assert results == [3] * 10

        run_async(scenario())

    def test_batches_are_bounded_by_static_size(self):
        async def scenario():
            server = TFServingLikeServer(NoOpContainer(), batch_size=4, batch_timeout_ms=20.0)
            await server.start()
            await asyncio.gather(*[server.predict(np.zeros(1)) for _ in range(32)])
            await server.stop()
            sizes = server.metrics.histogram("batch.size").values()
            assert max(sizes) <= 4

        run_async(scenario())

    def test_timeout_dispatches_partial_batches(self):
        async def scenario():
            server = TFServingLikeServer(NoOpContainer(), batch_size=1024, batch_timeout_ms=5.0)
            await server.start()
            result = await asyncio.wait_for(server.predict(np.zeros(1)), timeout=2.0)
            await server.stop()
            assert result == 0

        run_async(scenario())

    def test_predict_before_start_raises(self):
        async def scenario():
            server = TFServingLikeServer(NoOpContainer())
            with pytest.raises(ClipperError):
                await server.predict(np.zeros(1))

        run_async(scenario())

    def test_container_failure_propagates_but_server_survives(self):
        class Flaky(ModelContainer):
            def __init__(self):
                self.calls = 0

            def predict_batch(self, inputs):
                self.calls += 1
                if self.calls == 1:
                    raise RuntimeError("first batch fails")
                return [1] * len(inputs)

        async def scenario():
            server = TFServingLikeServer(Flaky(), batch_size=2, batch_timeout_ms=1.0)
            await server.start()
            with pytest.raises(RuntimeError):
                await server.predict(np.zeros(1))
            assert await server.predict(np.zeros(1)) == 1
            await server.stop()

        run_async(scenario())

    def test_latency_summary_reports_measurements(self):
        async def scenario():
            server = TFServingLikeServer(NoOpContainer(), batch_size=2)
            await server.start()
            await asyncio.gather(*[server.predict(np.zeros(1)) for _ in range(6)])
            await server.stop()
            summary = server.latency_summary()
            assert summary["count"] == 6
            assert summary["mean"] > 0

        run_async(scenario())

    def test_validation(self):
        with pytest.raises(ValueError):
            TFServingLikeServer(NoOpContainer(), batch_size=0)
        with pytest.raises(ValueError):
            TFServingLikeServer(NoOpContainer(), batch_timeout_ms=-1)


class TestStaticSelection:
    def test_picks_best_offline_model(self):
        selection = StaticSelection(["a", "b", "c"])
        choice = selection.fit_offline({"a": 0.7, "b": 0.9, "c": 0.8})
        assert choice == "b"
        assert selection.select() == "b"

    def test_ignores_online_feedback(self):
        selection = StaticSelection(["a", "b"])
        selection.fit_offline({"a": 0.9, "b": 0.5})
        for _ in range(100):
            selection.observe("a", loss=1.0)  # the chosen model is now terrible
        assert selection.current_choice() == "a"

    def test_missing_scores_raise(self):
        with pytest.raises(ValueError):
            StaticSelection(["a", "b"]).fit_offline({"a": 0.5})

    def test_empty_model_list_rejected(self):
        with pytest.raises(ValueError):
            StaticSelection([])


class TestABTestingSelection:
    def test_explores_until_minimum_samples_then_commits(self):
        ab = ABTestingSelection(["a", "b"], min_samples_per_arm=20, random_state=0)
        rng = np.random.default_rng(0)
        while not ab.experiment_complete:
            arm = ab.select()
            loss = 0.1 if arm == "b" else 0.6
            ab.observe(arm, loss if rng.random() < 0.9 else 1 - loss)
        assert ab.current_choice() == "b"

    def test_no_adaptation_after_commit(self):
        ab = ABTestingSelection(["a", "b"], min_samples_per_arm=5, random_state=0)
        for arm, loss in [("a", 0.0), ("b", 1.0)] * 5:
            ab.observe(arm, loss)
        assert ab.current_choice() == "a"
        for _ in range(50):
            ab.observe("a", 1.0)  # "a" degrades, but the test is over
        assert ab.current_choice() == "a"

    def test_mean_losses_reporting(self):
        ab = ABTestingSelection(["a", "b"], min_samples_per_arm=100, random_state=0)
        ab.observe("a", 1.0)
        ab.observe("a", 0.0)
        losses = ab.mean_losses()
        assert losses["a"] == pytest.approx(0.5)
        assert np.isnan(losses["b"])

    def test_unknown_arm_raises(self):
        ab = ABTestingSelection(["a"], min_samples_per_arm=1)
        with pytest.raises(ValueError):
            ab.observe("z", 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ABTestingSelection([])
        with pytest.raises(ValueError):
            ABTestingSelection(["a"], min_samples_per_arm=0)
