"""Tests for the application-facing query frontend."""

import numpy as np
import pytest

from helpers import run_async
from repro.containers.noop import NoOpContainer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.exceptions import (
    ClipperError,
    DuplicateApplicationError,
    UnknownApplicationError,
    ValidationError,
)
from repro.core.frontend import QueryFrontend, start_applications, stop_applications


def make_app(name, output=1):
    clipper = Clipper(ClipperConfig(app_name=name, selection_policy="single"))
    clipper.deploy_model(
        ModelDeployment(name="noop", container_factory=lambda: NoOpContainer(output=output))
    )
    return clipper


class TestRegistration:
    def test_register_and_list_applications(self):
        frontend = QueryFrontend()
        frontend.register_application(make_app("vision"))
        frontend.register_application(make_app("speech"))
        assert frontend.applications() == ["speech", "vision"]

    def test_duplicate_registration_rejected(self):
        frontend = QueryFrontend()
        frontend.register_application(make_app("vision"))
        with pytest.raises(ClipperError):
            frontend.register_application(make_app("vision"))

    def test_unknown_application_rejected(self):
        async def scenario():
            frontend = QueryFrontend()
            with pytest.raises(ClipperError):
                await frontend.predict("ghost", np.zeros(1))

        run_async(scenario())


class TestRouting:
    def test_predict_routes_to_the_named_application(self):
        async def scenario():
            frontend = QueryFrontend()
            frontend.register_application(make_app("vision", output=10))
            frontend.register_application(make_app("speech", output=20))
            await frontend.start()
            vision = await frontend.predict("vision", np.zeros(1))
            speech = await frontend.predict("speech", np.zeros(1))
            await frontend.stop()
            assert vision.output == 10
            assert speech.output == 20

        run_async(scenario())

    def test_update_sends_feedback(self):
        async def scenario():
            frontend = QueryFrontend()
            clipper = make_app("vision")
            frontend.register_application(clipper)
            await frontend.start()
            x = np.ones(2)
            await frontend.predict("vision", x)
            await frontend.update("vision", x, label=1)
            await frontend.stop()
            return clipper.metrics.counter("feedback.count").value

        assert run_async(scenario()) == 1

    def test_metrics_exposed_per_application(self):
        async def scenario():
            frontend = QueryFrontend()
            frontend.register_application(make_app("vision"))
            await frontend.start()
            await frontend.predict("vision", np.zeros(1))
            await frontend.stop()
            snapshot = frontend.app_metrics("vision")
            assert snapshot.counters["predict.count"] == 1

        run_async(scenario())

    def test_per_query_slo_override(self):
        async def scenario():
            frontend = QueryFrontend()
            frontend.register_application(make_app("vision"))
            await frontend.start()
            prediction = await frontend.predict("vision", np.zeros(1), latency_slo_ms=500.0)
            await frontend.stop()
            assert prediction.output == 1

        run_async(scenario())


class TestPartialStartAndStop:
    def test_failed_start_stops_already_started_applications(self):
        async def scenario():
            frontend = QueryFrontend()
            healthy = make_app("vision")
            frontend.register_application(healthy)
            # An application with no deployed models refuses to start.
            frontend.register_application(Clipper(ClipperConfig(app_name="broken")))
            with pytest.raises(ClipperError):
                await frontend.start()
            # The application started before the failure was stopped again.
            assert healthy._started is False

        run_async(scenario())

    def test_stop_failure_does_not_strand_other_applications(self):
        async def scenario():
            frontend = QueryFrontend()
            failing = make_app("vision")
            healthy = make_app("speech")
            frontend.register_application(failing)
            frontend.register_application(healthy)
            await frontend.start()

            async def explode():
                raise RuntimeError("boom")

            failing.stop = explode
            with pytest.raises(ClipperError, match="vision"):
                await frontend.stop()
            assert healthy._started is False

        run_async(scenario())

    def test_clean_start_stop_unaffected(self):
        async def scenario():
            frontend = QueryFrontend()
            frontend.register_application(make_app("vision"))
            frontend.register_application(make_app("speech"))
            await frontend.start()
            await frontend.stop()

        run_async(scenario())


class TestLifecycleHelpers:
    def test_start_and_stop_share_signature_and_deterministic_order(self):
        async def scenario():
            order = []
            apps = {}
            for name in ("zebra", "alpha", "mango"):
                clipper = make_app(name)
                original_start, original_stop = clipper.start, clipper.stop

                def record(event, inner, n=name):
                    async def wrapped():
                        order.append((event, n))
                        await inner()

                    return wrapped

                clipper.start = record("start", original_start)
                clipper.stop = record("stop", original_stop)
                apps[name] = clipper
            # Both helpers take the same name→instance mapping.
            await start_applications(apps)
            await stop_applications(apps)
            return order

        order = run_async(scenario())
        assert order == [
            ("start", "alpha"),
            ("start", "mango"),
            ("start", "zebra"),
            ("stop", "zebra"),
            ("stop", "mango"),
            ("stop", "alpha"),
        ]


class TestSchemaValidation:
    def make_typed_app(self):
        clipper = Clipper(
            ClipperConfig(
                app_name="typed",
                selection_policy="single",
                input_type="doubles",
                input_shape=(3,),
                # Generous SLO: these tests assert validation behaviour, and
                # the default 20 ms deadline flakes on a loaded CI machine.
                latency_slo_ms=500.0,
            )
        )
        clipper.deploy_model(
            ModelDeployment(name="noop", container_factory=NoOpContainer)
        )
        return clipper

    def test_in_process_predict_validates_against_schema(self):
        # The same 422 error path HTTP callers hit: validation lives in the
        # frontend, not in the HTTP binding.
        async def scenario():
            frontend = QueryFrontend()
            frontend.register_application(self.make_typed_app())
            await frontend.start()
            try:
                with pytest.raises(ValidationError) as excinfo:
                    await frontend.predict("typed", "not a vector")
                assert excinfo.value.http_status == 422
                with pytest.raises(ValidationError):
                    await frontend.predict("typed", np.zeros(7))
                with pytest.raises(ValidationError):
                    await frontend.update("typed", np.zeros(7), label=1)
                # Conforming input is coerced to the declared dtype.
                prediction = await frontend.predict("typed", [1, 2, 3])
                assert prediction.output == 0
            finally:
                await frontend.stop()

        run_async(scenario())

    def test_typed_registration_errors(self):
        frontend = QueryFrontend()
        frontend.register_application(make_app("vision"))
        with pytest.raises(DuplicateApplicationError):
            frontend.register_application(make_app("vision"))
        with pytest.raises(UnknownApplicationError):
            frontend.schema("ghost")
        assert frontend.schema("vision").input_type is None
