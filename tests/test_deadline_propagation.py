"""Deadline propagation: absolute deadlines ride the queue, the dispatcher
and the RPC wire so containers never evaluate already-expired entries."""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, List, Sequence

import pytest

from helpers import run_async
from repro.containers.base import ModelContainer
from repro.containers.replica import ContainerReplica
from repro.core.clipper import Clipper
from repro.core.config import BatchingConfig, ClipperConfig, ModelDeployment
from repro.core.exceptions import RpcError
from repro.core.types import ModelId, Query
from repro.rpc.client import RpcClient
from repro.rpc.protocol import MessageType, RpcRequest, RpcResponse
from repro.rpc.shm import HAS_SHARED_MEMORY
from repro.rpc.transport import InProcessTransport

TRANSPORTS = ["inprocess", "tcp"] + (["shm"] if HAS_SHARED_MEMORY else [])


class CountingContainer(ModelContainer):
    """Doubles each input; records everything it was asked to evaluate."""

    def __init__(self) -> None:
        self.calls = 0
        self.seen: List[Any] = []

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        self.calls += 1
        self.seen.extend(list(inputs))
        return [float(x) * 2 for x in inputs]


class GateContainer(ModelContainer):
    """Blocks every batch on a shared event; records what it evaluated."""

    def __init__(self, gate: threading.Event) -> None:
        self.gate = gate
        self.calls = 0
        self.seen: List[Any] = []

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        self.gate.wait(timeout=10.0)
        self.calls += 1
        self.seen.extend(list(inputs))
        return [1 for _ in inputs]


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------


class TestWireFormat:
    def test_deadline_free_request_pays_zero_wire_bytes(self):
        request = RpcRequest(request_id=1, model_name="m", inputs=[1.0])
        payload = request.to_payload()
        assert "deadlines" not in payload
        assert RpcRequest.from_payload(payload).deadlines == ()

    def test_deadlines_round_trip(self):
        request = RpcRequest(
            request_id=2, model_name="m", inputs=[1.0, 2.0], deadlines=(0.0, 12.5)
        )
        payload = request.to_payload()
        assert payload["deadlines"] == [0.0, 12.5]
        assert RpcRequest.from_payload(payload).deadlines == (0.0, 12.5)

    def test_skip_free_response_pays_zero_wire_bytes(self):
        response = RpcResponse(request_id=1, outputs=[2.0])
        payload = response.to_payload()
        assert "skipped" not in payload
        assert RpcResponse.from_payload(payload).skipped == ()

    def test_skipped_round_trips(self):
        response = RpcResponse(request_id=3, outputs=[2.0], skipped=(0, 2))
        payload = response.to_payload()
        assert payload["skipped"] == [0, 2]
        assert RpcResponse.from_payload(payload).skipped == (0, 2)

    def test_client_rejects_misaligned_outputs_plus_skips(self):
        """outputs + skipped must partition the batch exactly."""

        async def scenario():
            pair = InProcessTransport(serialize_messages=False)
            client_end, server_end = pair.endpoints()

            async def bad_server():
                payload = await server_end.recv()
                await server_end.send(
                    {
                        "type": int(MessageType.PREDICT_RESPONSE),
                        "request_id": payload["request_id"],
                        "outputs": [2.0],  # one output + one skip for three inputs
                        "error": None,
                        "container_latency_ms": 0.0,
                        "skipped": [2],
                    }
                )

            server_task = asyncio.ensure_future(bad_server())
            client = RpcClient(client_end)
            try:
                with pytest.raises(RpcError, match="1 outputs and 1 skips"):
                    await client.predict("m", [1.0, 2.0, 3.0])
            finally:
                await server_task
                await client.close()

        run_async(scenario())


# ---------------------------------------------------------------------------
# Replica transports honour per-entry deadlines server-side
# ---------------------------------------------------------------------------


class TestReplicaSkipsExpiredEntries:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_expired_entries_are_skipped_not_evaluated(self, transport):
        async def scenario():
            container = CountingContainer()
            replica = ContainerReplica(
                ModelId("count"), 0, container, transport=transport
            )
            await replica.start()
            try:
                now = time.monotonic()
                response = await replica.predict_batch(
                    [1.0, 2.0, 3.0],
                    deadlines=[now - 10.0, 0.0, now + 100.0],
                )
                assert response.ok
                assert response.skipped == (0,)
                assert response.outputs == [4.0, 6.0]
                # The expired entry never reached the model.
                assert container.seen == [2.0, 3.0]
            finally:
                await replica.stop()

        run_async(scenario())

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_fully_expired_batch_never_touches_the_container(self, transport):
        async def scenario():
            container = CountingContainer()
            replica = ContainerReplica(
                ModelId("count"), 0, container, transport=transport
            )
            await replica.start()
            try:
                expired = time.monotonic() - 10.0
                response = await replica.predict_batch(
                    [1.0, 2.0, 3.0], deadlines=[expired] * 3
                )
                assert response.ok
                assert response.skipped == (0, 1, 2)
                assert response.outputs == []
                assert container.calls == 0
            finally:
                await replica.stop()

        run_async(scenario())

    def test_no_deadlines_means_no_skipping(self):
        async def scenario():
            container = CountingContainer()
            replica = ContainerReplica(ModelId("count"), 0, container)
            await replica.start()
            try:
                response = await replica.predict_batch([1.0, 2.0])
                assert response.ok
                assert response.skipped == ()
                assert response.outputs == [2.0, 4.0]
            finally:
                await replica.stop()

        run_async(scenario())


# ---------------------------------------------------------------------------
# End to end: a query that expires in the queue is never evaluated
# ---------------------------------------------------------------------------


class TestDeadlinesEndToEnd:
    def test_expired_queries_never_reach_the_container(self):
        """Queries whose SLO lapses while queued are answered with the
        default and dropped before dispatch — the container only ever sees
        the one query that was actually in flight."""

        async def scenario():
            gate = threading.Event()
            container = GateContainer(gate)
            clipper = Clipper(
                ClipperConfig(
                    app_name="demo",
                    selection_policy="single",
                    latency_slo_ms=250.0,
                    default_output=0,
                )
            )
            clipper.deploy_model(
                ModelDeployment(
                    name="gated",
                    container_factory=lambda: container,
                    # Serial dispatch so the later queries wait in the queue
                    # (and expire there) while the first batch blocks.
                    batching=BatchingConfig(pipeline_window=1),
                )
            )
            await clipper.start()
            try:
                loop = asyncio.get_event_loop()
                tasks = [
                    loop.create_task(
                        clipper.predict(Query(app_name="demo", input=[1.0]))
                    )
                ]
                await asyncio.sleep(0.1)  # first batch pulled, blocked on gate
                for x in (2.0, 3.0, 4.0):
                    tasks.append(
                        loop.create_task(
                            clipper.predict(Query(app_name="demo", input=[x]))
                        )
                    )
                # Everyone's 250 ms SLO lapses while the gate is closed.
                await asyncio.sleep(0.6)
                gate.set()
                results = await asyncio.gather(*tasks)
                # Every query got an answer — the deadline-missed ones with
                # the application default.
                assert len(results) == 4
                assert all(r.default_used for r in results)
                # Give the dispatcher time to drain the expired remainder.
                await asyncio.sleep(0.3)
                # Only the in-flight query was ever evaluated; the three that
                # expired in the queue were dropped before dispatch.
                assert container.seen == [[1.0]]
                assert container.calls == 1
            finally:
                gate.set()
                await clipper.stop()

        run_async(scenario())
