"""Cluster tier (``pytest --cluster``): the full fleet as real processes.

Spawns ``scripts/cluster_up.py`` (supervisor → 2 worker daemons + 1 ingress,
every one its own OS process), drives the quickstart lifecycle over plain
HTTP — deploy, predict, scale, staged rollout, canary, promote — checks the
replicas actually spread across both workers, then SIGTERMs the supervisor
and asserts a clean drain.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import threading

import pytest

pytestmark = pytest.mark.cluster

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.abspath(os.path.join(HERE, "..", ".."))
SRC = os.path.join(REPO, "src")
CLUSTER_UP = os.path.join(REPO, "scripts", "cluster_up.py")

sys.path.insert(0, SRC) if SRC not in sys.path else None

from repro.client import AsyncAdminClient, AsyncClipperClient  # noqa: E402

APP = "default-app"


class ClusterProcess:
    """scripts/cluster_up.py as a child, with a stdout pump."""

    def __init__(self, workers=2):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, CLUSTER_UP, "--workers", str(workers)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.lines = []
        self._ready = threading.Event()
        self._pump = threading.Thread(target=self._pump_lines, daemon=True)
        self._pump.start()

    def _pump_lines(self):
        for raw in self.proc.stdout:
            self.lines.append(raw.rstrip("\n"))
            if raw.startswith("CLUSTER_READY"):
                self._ready.set()
        self._ready.set()

    def wait_ready(self, timeout_s=60.0):
        assert self._ready.wait(timeout_s), f"no CLUSTER_READY; output: {self.lines}"
        ready = [l for l in self.lines if l.startswith("CLUSTER_READY")]
        assert ready, f"cluster died before ready; output: {self.lines}"
        return int(ready[0].split()[1])

    def terminate_and_wait(self, timeout_s=30.0):
        self.proc.send_signal(signal.SIGTERM)
        code = self.proc.wait(timeout=timeout_s)
        self._pump.join(timeout=5.0)
        return code


def test_cluster_smoke_lifecycle():
    cluster = ClusterProcess(workers=2)
    try:
        port = cluster.wait_ready()

        async def lifecycle():
            async with AsyncAdminClient("127.0.0.1", port) as admin:
                await admin.deploy(APP, "m", factory="echo", version=1, num_replicas=2)
                async with AsyncClipperClient("127.0.0.1", port) as client:
                    for _ in range(20):
                        prediction = await client.predict(APP, [0.0, 0.0])
                        assert prediction.output == 1
                # The two replicas landed on distinct worker daemons.  The
                # per-replica health map fills in on the monitor's first
                # probe sweep, so poll for it briefly.
                import time

                deadline = time.monotonic() + 30.0
                replica_names = set()
                while time.monotonic() < deadline:
                    description = await admin.health(APP)
                    replica_names = set(description["health"])
                    if replica_names:
                        break
                    await asyncio.sleep(0.25)
                assert replica_names, "health monitor never probed the replicas"
                homes = {name.rsplit("@", 1)[1] for name in replica_names}
                assert homes == {"worker-0", "worker-1"}

                # Scale up, staged rollout, canary, promote — all over HTTP,
                # all placing onto remote workers.
                await admin.scale(APP, "m", 3)
                await admin.deploy(
                    APP, "m", factory="noop", version=2, activate=False
                )
                await admin.start_canary(APP, "m", version=2, weight=0.5)
                await admin.promote(APP, "m")
                description = await admin.health(APP)
                assert "m:2" in description["serving"]
                async with AsyncClipperClient("127.0.0.1", port) as client:
                    prediction = await client.predict(APP, [0.0, 0.0])
                    assert prediction.output == 0  # the promoted noop answers

        asyncio.run(lifecycle())
    finally:
        code = cluster.terminate_and_wait()
    assert code == 0, f"cluster exited {code}; output: {cluster.lines}"
    assert any(l.startswith("CLUSTER_STOPPED") for l in cluster.lines)
    # Every worker drained gracefully (the supervisor printed their markers
    # through its own stdout is not guaranteed, but the exit code above plus
    # CLUSTER_STOPPED proves the drain path ran to completion).


def test_cluster_restarts_dead_worker():
    cluster = ClusterProcess(workers=2)
    try:
        port = cluster.wait_ready()

        async def check():
            # Deploy so the fleet is doing something, then murder a worker
            # out from under the supervisor and wait for the replacement.
            async with AsyncAdminClient("127.0.0.1", port) as admin:
                await admin.deploy(APP, "m", factory="echo", version=1)
                async with AsyncClipperClient("127.0.0.1", port) as client:
                    prediction = await client.predict(APP, [0.0])
                    assert prediction.output == 1

        asyncio.run(check())

        # Find a worker child pid: the supervisor's children are our
        # grandchildren, so go through /proc (Linux CI) or pgrep.
        out = subprocess.run(
            ["pgrep", "-f", "repro.cluster.worker.*worker-0"],
            capture_output=True,
            text=True,
        )
        pids = [int(p) for p in out.stdout.split()]
        assert pids, "worker-0 process not found"
        os.kill(pids[0], signal.SIGKILL)

        # The supervisor respawns it; within a few poll intervals a fresh
        # worker-0 process exists with a different pid.
        import time

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            out = subprocess.run(
                ["pgrep", "-f", "repro.cluster.worker.*worker-0"],
                capture_output=True,
                text=True,
            )
            fresh = [int(p) for p in out.stdout.split() if int(p) != pids[0]]
            if fresh:
                break
            time.sleep(0.25)
        assert fresh, "supervisor never restarted worker-0"
    finally:
        code = cluster.terminate_and_wait()
    assert code == 0, f"cluster exited {code}; output: {cluster.lines}"
