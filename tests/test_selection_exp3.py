"""Tests for the Exp3 single-model selection policy."""

import numpy as np
import pytest

from repro.core.exceptions import SelectionPolicyError
from repro.core.types import ModelId
from repro.selection.exp3 import Exp3Policy

MODELS = [ModelId("good"), ModelId("bad"), ModelId("mediocre")]


class TestExp3Basics:
    def test_init_state_has_uniform_weights(self):
        policy = Exp3Policy(seed=0)
        state = policy.init(MODELS)
        assert set(state["weights"]) == {"good:1", "bad:1", "mediocre:1"}
        assert all(w == 1.0 for w in state["weights"].values())

    def test_init_rejects_empty_and_duplicate_models(self):
        policy = Exp3Policy()
        with pytest.raises(SelectionPolicyError):
            policy.init([])
        with pytest.raises(SelectionPolicyError):
            policy.init([ModelId("a"), ModelId("a")])

    def test_select_returns_single_deployed_model(self):
        policy = Exp3Policy(seed=0)
        state = policy.init(MODELS)
        selected = policy.select(state, x=None)
        assert len(selected) == 1
        assert selected[0] in state["weights"]

    def test_combine_returns_the_single_prediction(self):
        policy = Exp3Policy(seed=0)
        state = policy.init(MODELS)
        output, confidence = policy.combine(state, None, {"good:1": 7})
        assert output == 7
        assert confidence == 1.0

    def test_combine_with_no_predictions_raises(self):
        policy = Exp3Policy(seed=0)
        state = policy.init(MODELS)
        with pytest.raises(SelectionPolicyError):
            policy.combine(state, None, {})

    def test_invalid_hyperparameters(self):
        with pytest.raises(SelectionPolicyError):
            Exp3Policy(eta=0)
        with pytest.raises(SelectionPolicyError):
            Exp3Policy(exploration=1.0)


class TestExp3Learning:
    def _run_bandit(self, policy, accuracies, n_steps=2000, seed=0):
        """Replay a bandit stream where each model is correct with its accuracy."""
        rng = np.random.default_rng(seed)
        state = policy.init(list(accuracies.keys()))
        plays = {str(m): 0 for m in accuracies}
        for _ in range(n_steps):
            selected = policy.select(state, None)[0]
            plays[selected] += 1
            model_name = selected.split(":", 1)[0]
            correct = rng.random() < accuracies[ModelId(model_name)]
            prediction = 1 if correct else 0
            state = policy.observe(state, None, 1, {selected: prediction})
        return state, plays

    def test_converges_to_best_model(self):
        policy = Exp3Policy(eta=0.3, exploration=0.05, seed=1)
        accuracies = {ModelId("good"): 0.9, ModelId("bad"): 0.4, ModelId("mediocre"): 0.6}
        state, plays = self._run_bandit(policy, accuracies)
        assert state["weights"]["good:1"] == max(state["weights"].values())
        assert plays["good:1"] > plays["bad:1"]
        assert plays["good:1"] > plays["mediocre:1"]

    def test_weight_drops_after_losses(self):
        policy = Exp3Policy(eta=0.5, seed=0)
        state = policy.init(MODELS)
        before = state["weights"]["good:1"]
        state = policy.observe(state, None, 1, {"good:1": 0})  # wrong prediction
        # After renormalisation the losing model must have the lowest weight.
        assert state["weights"]["good:1"] < state["weights"]["bad:1"]

    def test_weight_unchanged_ratio_after_correct_prediction(self):
        policy = Exp3Policy(eta=0.5, seed=0)
        state = policy.init(MODELS)
        state = policy.observe(state, None, 1, {"good:1": 1})  # correct => zero loss
        weights = state["weights"]
        assert weights["good:1"] == pytest.approx(weights["bad:1"])

    def test_weights_remain_positive_and_finite_under_adversarial_feedback(self):
        policy = Exp3Policy(eta=1.0, exploration=0.0, seed=2)
        state = policy.init(MODELS)
        for _ in range(500):
            selected = policy.select(state, None)[0]
            state = policy.observe(state, None, 1, {selected: 0})
        for weight in state["weights"].values():
            assert np.isfinite(weight)
            assert weight > 0

    def test_recovers_after_model_degradation(self):
        """Mirrors Figure 8: the best model degrades, Exp3 shifts away."""
        policy = Exp3Policy(eta=0.4, exploration=0.1, seed=3)
        rng = np.random.default_rng(3)
        models = [ModelId("m1"), ModelId("m2")]
        state = policy.init(models)
        # Phase 1: m1 is the best.
        for _ in range(800):
            selected = policy.select(state, None)[0]
            acc = 0.95 if selected == "m1:1" else 0.6
            state = policy.observe(state, None, 1, {selected: 1 if rng.random() < acc else 0})
        assert state["weights"]["m1:1"] > state["weights"]["m2:1"]
        # Phase 2: m1 fails badly.
        for _ in range(800):
            selected = policy.select(state, None)[0]
            acc = 0.05 if selected == "m1:1" else 0.6
            state = policy.observe(state, None, 1, {selected: 1 if rng.random() < acc else 0})
        assert state["weights"]["m2:1"] > state["weights"]["m1:1"]
