"""Shared fixtures for the test suite.

Plain helpers (``run_async``) live in :mod:`helpers` so test modules can
import them without relying on conftest module-name resolution.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import run_async  # noqa: F401  (re-exported for convenience)
from repro.datasets import load_mnist_like, make_classification
from repro.mlkit import LinearSVM, LogisticRegression


def pytest_addoption(parser):
    parser.addoption(
        "--chaos",
        action="store_true",
        default=False,
        help="run the chaos tier (crash-injection / kill -9 recovery tests)",
    )
    parser.addoption(
        "--cluster",
        action="store_true",
        default=False,
        help="run the cluster tier (multi-process worker/ingress smoke tests)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "chaos: slow crash-injection test, skipped unless --chaos is given",
    )
    config.addinivalue_line(
        "markers",
        "shm: exercises the shared-memory ring transport; self-skips on "
        "platforms without multiprocessing.shared_memory",
    )
    config.addinivalue_line(
        "markers",
        "cluster: spawns real worker/ingress child processes, skipped unless "
        "--cluster is given",
    )


def pytest_collection_modifyitems(config, items):
    skip_chaos = pytest.mark.skip(reason="needs --chaos option to run")
    skip_cluster = pytest.mark.skip(reason="needs --cluster option to run")
    for item in items:
        if "chaos" in item.keywords and not config.getoption("--chaos"):
            item.add_marker(skip_chaos)
        if "cluster" in item.keywords and not config.getoption("--cluster"):
            item.add_marker(skip_cluster)


@pytest.fixture(scope="session")
def small_dataset():
    """A small, easy synthetic classification dataset (fast model training)."""
    return make_classification(
        n_samples=400,
        n_features=20,
        n_classes=3,
        difficulty=0.5,
        name="unit-test",
        random_state=42,
    )


@pytest.fixture(scope="session")
def mnist_like_small():
    """A reduced-dimension MNIST-like dataset for serving tests."""
    return load_mnist_like(n_samples=600, n_features=64, random_state=0)


@pytest.fixture(scope="session")
def trained_svm(mnist_like_small):
    """A linear SVM trained on the small MNIST-like dataset."""
    ds = mnist_like_small
    return LinearSVM(epochs=4, random_state=0).fit(ds.X_train, ds.y_train)


@pytest.fixture(scope="session")
def trained_logreg(mnist_like_small):
    """A logistic regression trained on the small MNIST-like dataset."""
    ds = mnist_like_small
    return LogisticRegression(epochs=4, random_state=1).fit(ds.X_train, ds.y_train)


@pytest.fixture()
def rng():
    """A deterministic numpy Generator for per-test randomness."""
    return np.random.default_rng(1234)
