"""Tests for the Thompson-sampling selection policy (extension)."""

import numpy as np
import pytest

from repro.core.exceptions import SelectionPolicyError
from repro.core.types import ModelId
from repro.selection.policy import make_policy
from repro.selection.thompson import ThompsonSamplingPolicy

MODELS = [ModelId("good"), ModelId("bad")]


class TestThompsonBasics:
    def test_init_state(self):
        policy = ThompsonSamplingPolicy(seed=0)
        state = policy.init(MODELS)
        assert set(state["successes"]) == {"good:1", "bad:1"}
        assert all(v == 0.0 for v in state["successes"].values())
        assert all(v == 0.0 for v in state["failures"].values())

    def test_select_returns_one_deployed_model(self):
        policy = ThompsonSamplingPolicy(seed=0)
        state = policy.init(MODELS)
        selected = policy.select(state, None)
        assert len(selected) == 1
        assert selected[0] in state["successes"]

    def test_combine_passthrough(self):
        policy = ThompsonSamplingPolicy(seed=0)
        state = policy.init(MODELS)
        assert policy.combine(state, None, {"good:1": 7}) == (7, 1.0)
        with pytest.raises(SelectionPolicyError):
            policy.combine(state, None, {})

    def test_validation(self):
        with pytest.raises(SelectionPolicyError):
            ThompsonSamplingPolicy(prior_successes=0)
        with pytest.raises(SelectionPolicyError):
            ThompsonSamplingPolicy(discount=0)
        with pytest.raises(SelectionPolicyError):
            ThompsonSamplingPolicy(discount=1.5)

    def test_factory_integration(self):
        policy = make_policy("thompson", discount=0.99)
        assert isinstance(policy, ThompsonSamplingPolicy)
        assert policy.discount == 0.99


class TestThompsonLearning:
    def _replay(self, policy, accuracies, n_steps, rng):
        state = policy.init(list(accuracies.keys()))
        plays = {str(m): 0 for m in accuracies}
        for _ in range(n_steps):
            arm = policy.select(state, None)[0]
            plays[arm] += 1
            accuracy = accuracies[ModelId(arm.split(":", 1)[0])]
            correct = rng.random() < accuracy
            state = policy.observe(state, None, 1, {arm: 1 if correct else 0})
        return state, plays

    def test_converges_to_best_model(self):
        policy = ThompsonSamplingPolicy(seed=1)
        rng = np.random.default_rng(1)
        accuracies = {ModelId("good"): 0.9, ModelId("bad"): 0.5}
        state, plays = self._replay(policy, accuracies, 1500, rng)
        assert plays["good:1"] > 3 * plays["bad:1"]
        means = policy.posterior_means(state)
        assert means["good:1"] > means["bad:1"]

    def test_posterior_means_track_observed_accuracy(self):
        policy = ThompsonSamplingPolicy(seed=0)
        state = policy.init(MODELS)
        for _ in range(200):
            state = policy.observe(state, None, 1, {"good:1": 1})
            state = policy.observe(state, None, 1, {"bad:1": 0})
        means = policy.posterior_means(state)
        assert means["good:1"] > 0.95
        assert means["bad:1"] < 0.05

    def test_discounting_recovers_from_degradation(self):
        """With forgetting enabled the policy shifts away from a degraded model."""
        policy = ThompsonSamplingPolicy(discount=0.98, seed=2)
        rng = np.random.default_rng(2)
        state = policy.init(MODELS)
        # Phase 1: "good" really is good.
        for _ in range(500):
            arm = policy.select(state, None)[0]
            accuracy = 0.95 if arm == "good:1" else 0.6
            state = policy.observe(state, None, 1, {arm: 1 if rng.random() < accuracy else 0})
        # Phase 2: "good" fails badly.
        for _ in range(800):
            arm = policy.select(state, None)[0]
            accuracy = 0.05 if arm == "good:1" else 0.6
            state = policy.observe(state, None, 1, {arm: 1 if rng.random() < accuracy else 0})
        means = policy.posterior_means(state)
        assert means["bad:1"] > means["good:1"]

    def test_counts_remain_finite_and_nonnegative(self):
        policy = ThompsonSamplingPolicy(discount=0.9, seed=0)
        state = policy.init(MODELS)
        for _ in range(1000):
            state = policy.observe(state, None, 1, {"good:1": 0, "bad:1": 1})
        for table in (state["successes"], state["failures"]):
            for value in table.values():
                assert np.isfinite(value)
                assert value >= 0.0
