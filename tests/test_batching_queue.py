"""Tests for the batching queue and delayed batching."""

import asyncio
import time

import pytest

from helpers import run_async
from repro.batching.queue import BatchingQueue, PendingQuery


def make_item(value, deadline=None):
    loop = asyncio.get_event_loop()
    return PendingQuery(input=value, future=loop.create_future(), deadline=deadline)


class TestBatchingQueue:
    def test_get_batch_drains_up_to_max(self):
        async def scenario():
            queue = BatchingQueue()
            for i in range(10):
                await queue.put(make_item(i))
            batch = await queue.get_batch(max_batch_size=4)
            assert [item.input for item in batch] == [0, 1, 2, 3]
            assert queue.qsize() == 6

        run_async(scenario())

    def test_get_batch_returns_fewer_when_queue_short(self):
        async def scenario():
            queue = BatchingQueue()
            await queue.put(make_item("only"))
            batch = await queue.get_batch(max_batch_size=8)
            assert len(batch) == 1

        run_async(scenario())

    def test_get_batch_waits_for_first_item(self):
        async def scenario():
            queue = BatchingQueue()

            async def producer():
                await asyncio.sleep(0.05)
                await queue.put(make_item("late"))

            task = asyncio.get_event_loop().create_task(producer())
            batch = await queue.get_batch(max_batch_size=4)
            assert [item.input for item in batch] == ["late"]
            await task

        run_async(scenario())

    def test_invalid_max_batch_size(self):
        async def scenario():
            queue = BatchingQueue()
            with pytest.raises(ValueError):
                await queue.get_batch(max_batch_size=0)

        run_async(scenario())

    def test_closed_queue_rejects_puts_and_returns_empty_batches(self):
        async def scenario():
            queue = BatchingQueue()
            queue.close()
            with pytest.raises(RuntimeError):
                await queue.put(make_item(1))
            batch = await queue.get_batch(max_batch_size=2, poll_interval_ms=10)
            assert batch == []

        run_async(scenario())

    def test_close_still_drains_existing_items(self):
        async def scenario():
            queue = BatchingQueue()
            await queue.put(make_item(1))
            queue.close()
            batch = await queue.get_batch(max_batch_size=4, poll_interval_ms=10)
            assert len(batch) == 1

        run_async(scenario())


class TestDelayedBatching:
    def test_waits_for_more_queries_up_to_timeout(self):
        async def scenario():
            queue = BatchingQueue()
            await queue.put(make_item(0))

            async def producer():
                for i in range(1, 4):
                    await asyncio.sleep(0.01)
                    await queue.put(make_item(i))

            task = asyncio.get_event_loop().create_task(producer())
            batch = await queue.get_batch(max_batch_size=8, batch_wait_timeout_ms=100.0)
            assert len(batch) == 4
            await task

        run_async(scenario())

    def test_zero_timeout_dispatches_immediately(self):
        async def scenario():
            queue = BatchingQueue()
            await queue.put(make_item(0))
            start = time.perf_counter()
            batch = await queue.get_batch(max_batch_size=8, batch_wait_timeout_ms=0.0)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            assert len(batch) == 1
            assert elapsed_ms < 50.0

        run_async(scenario())

    def test_timeout_bounds_the_wait(self):
        async def scenario():
            queue = BatchingQueue()
            await queue.put(make_item(0))
            start = time.perf_counter()
            batch = await queue.get_batch(max_batch_size=8, batch_wait_timeout_ms=30.0)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            assert len(batch) == 1
            assert elapsed_ms < 200.0
            assert elapsed_ms >= 25.0

        run_async(scenario())

    def test_full_batch_does_not_wait(self):
        async def scenario():
            queue = BatchingQueue()
            for i in range(8):
                await queue.put(make_item(i))
            start = time.perf_counter()
            batch = await queue.get_batch(max_batch_size=4, batch_wait_timeout_ms=500.0)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            assert len(batch) == 4
            assert elapsed_ms < 100.0

        run_async(scenario())


class TestPendingQuery:
    def test_expired(self):
        async def scenario():
            item = make_item(1, deadline=time.monotonic() - 1.0)
            assert item.expired()
            fresh = make_item(2, deadline=time.monotonic() + 100.0)
            assert not fresh.expired()
            no_deadline = make_item(3)
            assert not no_deadline.expired()

        run_async(scenario())
