"""Tests for the batching queue and delayed batching."""

import asyncio
import time

import pytest

from helpers import run_async
from repro.batching.queue import BatchingQueue, PendingQuery


def make_item(value, deadline=None):
    loop = asyncio.get_event_loop()
    return PendingQuery(input=value, future=loop.create_future(), deadline=deadline)


class TestBatchingQueue:
    def test_get_batch_drains_up_to_max(self):
        async def scenario():
            queue = BatchingQueue()
            for i in range(10):
                await queue.put(make_item(i))
            batch = await queue.get_batch(max_batch_size=4)
            assert [item.input for item in batch] == [0, 1, 2, 3]
            assert queue.qsize() == 6

        run_async(scenario())

    def test_get_batch_returns_fewer_when_queue_short(self):
        async def scenario():
            queue = BatchingQueue()
            await queue.put(make_item("only"))
            batch = await queue.get_batch(max_batch_size=8)
            assert len(batch) == 1

        run_async(scenario())

    def test_get_batch_waits_for_first_item(self):
        async def scenario():
            queue = BatchingQueue()

            async def producer():
                await asyncio.sleep(0.05)
                await queue.put(make_item("late"))

            task = asyncio.get_event_loop().create_task(producer())
            batch = await queue.get_batch(max_batch_size=4)
            assert [item.input for item in batch] == ["late"]
            await task

        run_async(scenario())

    def test_invalid_max_batch_size(self):
        async def scenario():
            queue = BatchingQueue()
            with pytest.raises(ValueError):
                await queue.get_batch(max_batch_size=0)

        run_async(scenario())

    def test_closed_queue_rejects_puts_and_returns_empty_batches(self):
        async def scenario():
            queue = BatchingQueue()
            queue.close()
            with pytest.raises(RuntimeError):
                await queue.put(make_item(1))
            batch = await queue.get_batch(max_batch_size=2, poll_interval_ms=10)
            assert batch == []

        run_async(scenario())

    def test_close_still_drains_existing_items(self):
        async def scenario():
            queue = BatchingQueue()
            await queue.put(make_item(1))
            queue.close()
            batch = await queue.get_batch(max_batch_size=4, poll_interval_ms=10)
            assert len(batch) == 1

        run_async(scenario())


class TestDelayedBatching:
    def test_waits_for_more_queries_up_to_timeout(self):
        async def scenario():
            queue = BatchingQueue()
            await queue.put(make_item(0))

            async def producer():
                for i in range(1, 4):
                    await asyncio.sleep(0.01)
                    await queue.put(make_item(i))

            task = asyncio.get_event_loop().create_task(producer())
            batch = await queue.get_batch(max_batch_size=8, batch_wait_timeout_ms=100.0)
            assert len(batch) == 4
            await task

        run_async(scenario())

    def test_zero_timeout_dispatches_immediately(self):
        async def scenario():
            queue = BatchingQueue()
            await queue.put(make_item(0))
            start = time.perf_counter()
            batch = await queue.get_batch(max_batch_size=8, batch_wait_timeout_ms=0.0)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            assert len(batch) == 1
            assert elapsed_ms < 50.0

        run_async(scenario())

    def test_timeout_bounds_the_wait(self):
        async def scenario():
            queue = BatchingQueue()
            await queue.put(make_item(0))
            start = time.perf_counter()
            batch = await queue.get_batch(max_batch_size=8, batch_wait_timeout_ms=30.0)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            assert len(batch) == 1
            assert elapsed_ms < 200.0
            assert elapsed_ms >= 25.0

        run_async(scenario())

    def test_full_batch_does_not_wait(self):
        async def scenario():
            queue = BatchingQueue()
            for i in range(8):
                await queue.put(make_item(i))
            start = time.perf_counter()
            batch = await queue.get_batch(max_batch_size=4, batch_wait_timeout_ms=500.0)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            assert len(batch) == 4
            assert elapsed_ms < 100.0

        run_async(scenario())


class TestPendingQuery:
    def test_expired(self):
        async def scenario():
            item = make_item(1, deadline=time.monotonic() - 1.0)
            assert item.expired()
            fresh = make_item(2, deadline=time.monotonic() + 100.0)
            assert not fresh.expired()
            no_deadline = make_item(3)
            assert not no_deadline.expired()

        run_async(scenario())


class TestBoundedQueueClose:
    def test_put_raises_promptly_when_closed_while_waiting(self):
        """Regression: a producer parked on a full bounded queue must raise
        as soon as the queue closes, not wait for space that never frees."""

        async def scenario():
            queue = BatchingQueue(maxsize=1)
            await queue.put(make_item(0))

            async def blocked_put():
                await queue.put(make_item(1))

            task = asyncio.get_event_loop().create_task(blocked_put())
            await asyncio.sleep(0.01)  # let the producer park
            assert not task.done()
            queue.close()
            with pytest.raises(RuntimeError, match="closed"):
                await asyncio.wait_for(task, timeout=1.0)

        run_async(scenario())

    def test_put_raises_when_woken_by_space_on_closed_queue(self):
        async def scenario():
            queue = BatchingQueue(maxsize=1)
            await queue.put(make_item(0))

            async def blocked_put():
                await queue.put(make_item(1))

            task = asyncio.get_event_loop().create_task(blocked_put())
            await asyncio.sleep(0.01)
            # Close first, then free space: the woken producer must still
            # observe closed and raise instead of enqueueing.
            queue.close()
            queue.evict_expiring()
            with pytest.raises(RuntimeError, match="closed"):
                await asyncio.wait_for(task, timeout=1.0)
            assert queue.qsize() == 0

        run_async(scenario())


class TestEvictExpiring:
    def test_empty_queue_returns_none(self):
        async def scenario():
            queue = BatchingQueue()
            assert queue.evict_expiring() is None

        run_async(scenario())

    def test_prefers_earliest_deadline(self):
        async def scenario():
            queue = BatchingQueue()
            now = time.monotonic()
            await queue.put(make_item("late", deadline=now + 5.0))
            await queue.put(make_item("soon", deadline=now + 0.1))
            await queue.put(make_item("mid", deadline=now + 1.0))
            victim = queue.evict_expiring()
            assert victim.input == "soon"
            assert queue.qsize() == 2

        run_async(scenario())

    def test_falls_back_to_oldest_without_deadlines(self):
        async def scenario():
            queue = BatchingQueue()
            await queue.put(make_item("first"))
            await queue.put(make_item("second"))
            victim = queue.evict_expiring()
            assert victim.input == "first"

        run_async(scenario())

    def test_deadline_carrying_item_beats_older_deadline_free_one(self):
        async def scenario():
            queue = BatchingQueue()
            await queue.put(make_item("old-no-deadline"))
            await queue.put(make_item("deadline", deadline=time.monotonic() + 9.0))
            victim = queue.evict_expiring()
            assert victim.input == "deadline"

        run_async(scenario())

    def test_eviction_wakes_blocked_putter(self):
        async def scenario():
            queue = BatchingQueue(maxsize=1)
            await queue.put(make_item("victim", deadline=time.monotonic() + 1.0))

            async def blocked_put():
                await queue.put(make_item("replacement"))

            task = asyncio.get_event_loop().create_task(blocked_put())
            await asyncio.sleep(0.01)
            victim = queue.evict_expiring()
            assert victim.input == "victim"
            await asyncio.wait_for(task, timeout=1.0)
            assert queue.qsize() == 1

        run_async(scenario())


class TestSaturation:
    def test_unbounded_queue_reports_zero(self):
        async def scenario():
            queue = BatchingQueue()
            await queue.put(make_item(1))
            assert queue.saturation() == 0.0

        run_async(scenario())

    def test_bounded_queue_reports_fill_fraction(self):
        async def scenario():
            queue = BatchingQueue(maxsize=4)
            assert queue.saturation() == 0.0
            await queue.put(make_item(1))
            assert queue.saturation() == pytest.approx(0.25)
            for i in range(3):
                await queue.put(make_item(i))
            assert queue.saturation() == 1.0

        run_async(scenario())
