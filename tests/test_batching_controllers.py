"""Tests for batch-size controllers: AIMD, quantile regression, fixed, none."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.batching.aimd import AIMDController
from repro.batching.controllers import (
    FixedBatchSizeController,
    NoBatchingController,
    make_controller,
)
from repro.batching.quantile import QuantileRegressionController, fit_quantile_line
from repro.core.config import BatchingConfig
from repro.core.exceptions import ConfigurationError


class TestAIMD:
    def test_additive_increase_under_slo(self):
        controller = AIMDController(slo_ms=20.0, initial_batch_size=1, additive_increase=2)
        for _ in range(5):
            controller.observe(controller.current_batch_size(), latency_ms=5.0)
        assert controller.current_batch_size() == 11
        assert controller.increases == 5

    def test_multiplicative_backoff_over_slo(self):
        controller = AIMDController(slo_ms=20.0, initial_batch_size=100)
        controller.observe(100, latency_ms=30.0)
        assert controller.current_batch_size() == 90
        assert controller.backoffs == 1

    def test_no_increase_when_batch_smaller_than_allowance(self):
        controller = AIMDController(slo_ms=20.0, initial_batch_size=50)
        controller.observe(batch_size=3, latency_ms=1.0)
        assert controller.current_batch_size() == 50

    def test_converges_near_capacity_for_linear_latency(self):
        # Latency model: 0.1 ms per item => 200 items fit a 20 ms SLO.
        controller = AIMDController(slo_ms=20.0, initial_batch_size=1, additive_increase=4)
        for _ in range(300):
            batch = controller.current_batch_size()
            controller.observe(batch, latency_ms=0.1 * batch)
        assert 150 <= controller.current_batch_size() <= 220

    def test_never_drops_below_one(self):
        controller = AIMDController(slo_ms=1.0, initial_batch_size=1)
        for _ in range(50):
            controller.observe(controller.current_batch_size(), latency_ms=100.0)
        assert controller.current_batch_size() == 1

    def test_respects_hard_max(self):
        controller = AIMDController(slo_ms=1e6, initial_batch_size=1, additive_increase=100, max_batch_size=128)
        for _ in range(50):
            controller.observe(controller.current_batch_size(), latency_ms=0.1)
        assert controller.current_batch_size() == 128

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AIMDController(slo_ms=0)
        with pytest.raises(ConfigurationError):
            AIMDController(slo_ms=10, backoff_fraction=1.0)
        with pytest.raises(ConfigurationError):
            AIMDController(slo_ms=10, additive_increase=0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=100),
        st.floats(min_value=1.0, max_value=50.0),
    )
    def test_batch_size_always_within_bounds(self, latencies, slo):
        controller = AIMDController(slo_ms=slo, initial_batch_size=4, max_batch_size=256)
        for latency in latencies:
            controller.observe(controller.current_batch_size(), latency)
            assert 1 <= controller.current_batch_size() <= 256


class TestQuantileLineFit:
    def test_recovers_linear_relationship(self):
        rng = np.random.default_rng(0)
        sizes = np.repeat(np.arange(1, 50), 4)
        latencies = 2.0 + 0.5 * sizes + rng.uniform(0, 0.2, size=sizes.shape)
        intercept, slope = fit_quantile_line(sizes, latencies, quantile=0.99)
        assert slope == pytest.approx(0.5, abs=0.1)
        assert intercept == pytest.approx(2.2, abs=0.5)

    def test_quantile_line_sits_above_median(self):
        rng = np.random.default_rng(1)
        sizes = np.repeat(np.arange(1, 30), 10)
        noise = rng.exponential(1.0, size=sizes.shape)
        latencies = 1.0 + 0.3 * sizes + noise
        i99, s99 = fit_quantile_line(sizes, latencies, quantile=0.99)
        i50, s50 = fit_quantile_line(sizes, latencies, quantile=0.5)
        mid = 15
        assert i99 + s99 * mid > i50 + s50 * mid

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_quantile_line(np.array([1.0]), np.array([2.0]))

    def test_requires_valid_quantile(self):
        with pytest.raises(ValueError):
            fit_quantile_line(np.array([1.0, 2.0]), np.array([1.0, 2.0]), quantile=1.5)


class TestQuantileController:
    def test_converges_to_slo_capacity(self):
        # True latency: 1 + 0.1 * batch => 190 items fit a 20 ms SLO.
        controller = QuantileRegressionController(slo_ms=20.0, initial_batch_size=1, additive_increase=8)
        rng = np.random.default_rng(0)
        for _ in range(200):
            batch = controller.current_batch_size()
            latency = 1.0 + 0.1 * batch + rng.uniform(0, 0.3)
            controller.observe(batch, latency)
        assert 140 <= controller.current_batch_size() <= 200

    def test_backs_off_when_over_slo_during_exploration(self):
        controller = QuantileRegressionController(slo_ms=5.0, initial_batch_size=64)
        controller.observe(64, latency_ms=50.0)
        assert controller.current_batch_size() < 64

    def test_flat_latency_allows_growth(self):
        controller = QuantileRegressionController(slo_ms=20.0, initial_batch_size=2, additive_increase=2)
        for batch in (2, 4, 6, 8, 10, 12, 14, 16, 18, 20):
            controller.observe(batch, latency_ms=1.0)
        assert controller.current_batch_size() > 16

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QuantileRegressionController(slo_ms=10, quantile=1.2)
        with pytest.raises(ConfigurationError):
            QuantileRegressionController(slo_ms=10, window=2)


class TestStaticControllers:
    def test_fixed_ignores_observations(self):
        controller = FixedBatchSizeController(batch_size=32)
        controller.observe(32, latency_ms=1e9)
        assert controller.current_batch_size() == 32

    def test_no_batching_is_always_one(self):
        controller = NoBatchingController()
        controller.observe(1, latency_ms=100.0)
        assert controller.current_batch_size() == 1

    def test_fixed_validation(self):
        with pytest.raises(ConfigurationError):
            FixedBatchSizeController(batch_size=0)


class TestFactory:
    @pytest.mark.parametrize(
        "policy,expected_type",
        [
            ("aimd", AIMDController),
            ("quantile", QuantileRegressionController),
            ("fixed", FixedBatchSizeController),
            ("none", NoBatchingController),
        ],
    )
    def test_factory_builds_correct_type(self, policy, expected_type):
        controller = make_controller(BatchingConfig(policy=policy), slo_ms=20.0)
        assert isinstance(controller, expected_type)
