"""End-to-end tests of the binary columnar content type on the REST edge.

Covers Accept negotiation (q-values, wildcards, 406), the client SDK's
``binary=True`` mode with transparent JSON fallback on 415, and — over real
sockets — the malformed-frame discipline: corrupt, truncated and
wrong-dtype columnar bodies must come back as structured 4xx errors, never
a 500 or a dropped connection.
"""

import asyncio
import json

import numpy as np
import pytest

from helpers import run_async
from repro.api.columnar import COLUMNAR_CONTENT_TYPE, decode_columnar
from repro.api.errors import BadRequestError, NotAcceptableError
from repro.api.http import JSON_CONTENT_TYPE, create_server
from repro.client import AsyncClipperClient, ClipperClient, encode_binary_input
from repro.containers.noop import NoOpContainer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.frontend import QueryFrontend
from repro.rpc.serialization import deserialize, serialize_buffers


def make_app(name="demo", output=1, **config_kwargs):
    clipper = Clipper(
        ClipperConfig(app_name=name, selection_policy="single", **config_kwargs)
    )
    clipper.deploy_model(
        ModelDeployment(
            name="noop", container_factory=lambda: NoOpContainer(output=output)
        )
    )
    return clipper


def make_server(clipper, **kwargs):
    query = QueryFrontend()
    query.register_application(clipper)
    return create_server(query=query, **kwargs)


def columnar_body(payload) -> bytes:
    """Render a payload as one columnar frame (joined only for the test)."""
    return b"".join(bytes(segment) for segment in serialize_buffers(payload))


async def raw_request(port, data: bytes) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(data)
    await writer.drain()
    response = await reader.read()
    writer.close()
    return response


def post_predict(app: str, body: bytes, content_type: str, accept=None) -> bytes:
    accept_line = b"Accept: %b\r\n" % accept.encode() if accept else b""
    return (
        b"POST /api/v1/%b/predict HTTP/1.1\r\n"
        b"Host: t\r\nContent-Type: %b\r\n%b"
        b"Content-Length: %d\r\nConnection: close\r\n\r\n%b"
        % (app.encode(), content_type.encode(), accept_line, len(body), body)
    )


def parse_response(response: bytes):
    head, _, payload = response.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    headers = {}
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        headers[name.strip().lower().decode()] = value.strip().decode()
    return status, headers, payload


class TestAcceptNegotiation:
    """Unit coverage of the media-range negotiation itself."""

    def make(self):
        return make_server(make_app())

    @pytest.mark.parametrize(
        "header,expected",
        [
            (None, JSON_CONTENT_TYPE),
            ("application/json", JSON_CONTENT_TYPE),
            (COLUMNAR_CONTENT_TYPE, COLUMNAR_CONTENT_TYPE),
            ("*/*", JSON_CONTENT_TYPE),
            ("application/*", JSON_CONTENT_TYPE),
            # Highest q wins across a multi-valued header.
            (
                f"{COLUMNAR_CONTENT_TYPE};q=0.4, application/json;q=0.9",
                JSON_CONTENT_TYPE,
            ),
            (
                f"application/json;q=0.5, {COLUMNAR_CONTENT_TYPE}",
                COLUMNAR_CONTENT_TYPE,
            ),
            # First-listed wins a tie.
            (
                f"{COLUMNAR_CONTENT_TYPE}, application/json",
                COLUMNAR_CONTENT_TYPE,
            ),
            (
                f"application/json, {COLUMNAR_CONTENT_TYPE}",
                JSON_CONTENT_TYPE,
            ),
            # Unknown ranges are skipped when an acceptable one remains.
            ("application/x-protobuf, */*;q=0.1", JSON_CONTENT_TYPE),
            # Unparseable garbage keeps the JSON default.
            (",,,", JSON_CONTENT_TYPE),
            ("application/json;q=not-a-number, */*", JSON_CONTENT_TYPE),
        ],
    )
    def test_negotiation_table(self, header, expected):
        assert self.make()._negotiate_accept(header) == expected

    def test_only_unknown_ranges_is_406(self):
        with pytest.raises(NotAcceptableError) as excinfo:
            self.make()._negotiate_accept("application/x-protobuf")
        assert excinfo.value.http_status == 406
        assert COLUMNAR_CONTENT_TYPE in excinfo.value.detail["supported"]

    def test_q_zero_rules_an_encoding_out(self):
        with pytest.raises(NotAcceptableError):
            self.make()._negotiate_accept("application/json;q=0")

    def test_json_only_server_has_no_columnar(self):
        server = make_server(make_app(), columnar=False)
        with pytest.raises(NotAcceptableError):
            server._negotiate_accept(COLUMNAR_CONTENT_TYPE)


class TestBinaryClient:
    def test_binary_predict_matches_json(self):
        async def scenario():
            server = make_server(
                make_app(output=7, input_type="doubles", input_shape=(8,))
            )
            async with server:
                x = np.arange(8, dtype=np.float64)
                async with AsyncClipperClient(
                    "127.0.0.1", server.port, binary=True
                ) as bin_client, AsyncClipperClient(
                    "127.0.0.1", server.port
                ) as json_client:
                    got_bin = await bin_client.predict("demo", x)
                    got_json = await json_client.predict("demo", x.tolist())
                    assert bin_client.binary  # no fallback happened
                    assert got_bin.output == got_json.output == 7
                    assert not got_bin.default_used
                    # update flows through the same negotiated path.
                    await bin_client.update("demo", x, 7)

        run_async(scenario())

    def test_binary_client_falls_back_to_json_on_415(self):
        async def scenario():
            server = make_server(make_app(output=3), columnar=False)
            async with server:
                async with AsyncClipperClient(
                    "127.0.0.1", server.port, binary=True
                ) as client:
                    assert client.binary
                    result = await client.predict("demo", [1.0, 2.0])
                    assert result.output == 3
                    assert not client.binary  # permanently downgraded
                    # Subsequent calls go straight to JSON and still work.
                    result = await client.predict("demo", [3.0, 4.0])
                    assert result.output == 3

        run_async(scenario())

    def test_sync_client_speaks_binary(self):
        # Server on its own loop in a background thread, blocking client in
        # the test thread — the realistic shape for the sync wrapper.
        import threading

        loop = asyncio.new_event_loop()
        box = {}
        started = threading.Event()

        def serve():
            asyncio.set_event_loop(loop)
            server = make_server(make_app(output=5, input_type="floats"))
            loop.run_until_complete(server.start())
            box["server"] = server
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert started.wait(10.0)
        server = box["server"]
        try:
            with ClipperClient("127.0.0.1", server.port, binary=True) as client:
                result = client.predict("demo", np.ones(4, dtype=np.float32))
                assert result.output == 5
        finally:
            asyncio.run_coroutine_threadsafe(server.stop(), loop).result(10.0)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(10.0)
            loop.close()

    def test_bytes_input_travels_natively(self):
        async def scenario():
            server = make_server(make_app(input_type="bytes"))
            async with server:
                async with AsyncClipperClient(
                    "127.0.0.1", server.port, binary=True
                ) as client:
                    result = await client.predict("demo", b"\x00\xffraw")
                    assert result.output == 1
                    assert client.binary

        run_async(scenario())

    def test_encode_binary_input_passthrough(self):
        arr = np.arange(4, dtype=np.float32)[::2]  # non-contiguous
        encoded = encode_binary_input(arr)
        assert isinstance(encoded, np.ndarray) and encoded.flags["C_CONTIGUOUS"]
        assert encode_binary_input(b"abc") == b"abc"
        assert encode_binary_input(memoryview(b"abc")) == b"abc"


class TestMalformedFramesOverRealSockets:
    def test_corrupt_frame_is_structured_400(self):
        async def scenario():
            server = make_server(make_app())
            async with server:
                body = b"\xffnot a columnar frame at all"
                response = await raw_request(
                    server.port,
                    post_predict("demo", body, COLUMNAR_CONTENT_TYPE),
                )
                status, headers, payload = parse_response(response)
                assert status == 400
                assert headers["content-type"].startswith("application/json")
                error = json.loads(payload)["error"]
                assert error["code"] == "malformed_request"
                assert error["detail"]["content_type"] == COLUMNAR_CONTENT_TYPE

        run_async(scenario())

    def test_truncated_frame_is_400(self):
        async def scenario():
            server = make_server(make_app())
            async with server:
                whole = columnar_body(
                    {"input": np.arange(16, dtype=np.float64), "user_id": "u"}
                )
                # A valid frame cut short, with Content-Length matching the
                # truncation — the frame itself is what's inconsistent.
                body = whole[: len(whole) - 7]
                response = await raw_request(
                    server.port,
                    post_predict("demo", body, COLUMNAR_CONTENT_TYPE),
                )
                status, _, payload = parse_response(response)
                assert status == 400
                assert json.loads(payload)["error"]["status"] == 400

        run_async(scenario())

    def test_wrong_dtype_for_schema_is_422(self):
        async def scenario():
            server = make_server(
                make_app(input_type="doubles", input_shape=(4,))
            )
            async with server:
                # A perfectly valid columnar frame whose input violates the
                # application schema: decoding succeeds, validation rejects.
                body = columnar_body({"input": "not a vector"})
                response = await raw_request(
                    server.port,
                    post_predict("demo", body, COLUMNAR_CONTENT_TYPE),
                )
                status, _, payload = parse_response(response)
                assert status == 422
                assert json.loads(payload)["error"]["code"] == "invalid_input"

        run_async(scenario())

    def test_unregistered_content_type_is_415(self):
        async def scenario():
            server = make_server(make_app(), columnar=False)
            async with server:
                body = columnar_body({"input": [1.0]})
                response = await raw_request(
                    server.port,
                    post_predict("demo", body, COLUMNAR_CONTENT_TYPE),
                )
                status, _, payload = parse_response(response)
                assert status == 415
                error = json.loads(payload)["error"]
                assert error["code"] == "unsupported_media_type"
                assert COLUMNAR_CONTENT_TYPE not in error["detail"]["supported"]

        run_async(scenario())

    def test_unsatisfiable_accept_is_406(self):
        async def scenario():
            server = make_server(make_app())
            async with server:
                body = json.dumps({"input": [1.0]}).encode()
                response = await raw_request(
                    server.port,
                    post_predict(
                        "demo", body, "application/json",
                        accept="application/x-protobuf",
                    ),
                )
                status, headers, payload = parse_response(response)
                assert status == 406
                # The error itself renders as JSON (the client picks its
                # decoder by Content-Type, not by what it asked for).
                assert headers["content-type"].startswith("application/json")
                assert json.loads(payload)["error"]["code"] == "not_acceptable"

        run_async(scenario())

    def test_errors_render_json_even_with_columnar_accept(self):
        async def scenario():
            server = make_server(make_app())
            async with server:
                response = await raw_request(
                    server.port,
                    post_predict(
                        "ghost",
                        columnar_body({"input": [1.0]}),
                        COLUMNAR_CONTENT_TYPE,
                        accept=COLUMNAR_CONTENT_TYPE,
                    ),
                )
                status, headers, payload = parse_response(response)
                assert status == 404
                assert headers["content-type"].startswith("application/json")
                assert json.loads(payload)["error"]["code"] == "unknown_application"

        run_async(scenario())

    def test_get_with_columnar_accept_returns_binary_body(self):
        async def scenario():
            server = make_server(make_app())
            async with server:
                response = await raw_request(
                    server.port,
                    b"GET /api/v1/health HTTP/1.1\r\nHost: t\r\n"
                    b"Accept: %b\r\nConnection: close\r\n\r\n"
                    % COLUMNAR_CONTENT_TYPE.encode(),
                )
                status, headers, payload = parse_response(response)
                assert status == 200
                assert headers["content-type"] == COLUMNAR_CONTENT_TYPE
                assert int(headers["content-length"]) == len(payload)
                decoded = deserialize(payload)
                assert decoded["status"] == "ok"

        run_async(scenario())


class TestColumnarCodecUnits:
    def test_decode_maps_serialization_error_to_bad_request(self):
        with pytest.raises(BadRequestError) as excinfo:
            decode_columnar(b"\x00\x01junk")
        assert excinfo.value.http_status == 400

    def test_round_trip_preserves_typed_arrays(self):
        x = np.arange(12, dtype=np.float32)
        frame = columnar_body({"input": x, "user_id": "u"})
        decoded = deserialize(frame)
        assert isinstance(decoded["input"], np.ndarray)
        assert decoded["input"].dtype == np.float32
        np.testing.assert_array_equal(decoded["input"], x)
