"""Tests for latency-profile measurement and reporting helpers."""

import numpy as np
import pytest

from repro.containers.noop import NoOpContainer
from repro.containers.overhead import SimulatedLatencyContainer
from repro.evaluation.profiles import (
    LatencyProfile,
    max_batch_under_slo,
    measure_latency_profile,
    throughput_at_batch_size,
)
from repro.evaluation.reporting import format_table


class TestMeasureLatencyProfile:
    def test_measures_requested_batch_sizes(self):
        container = NoOpContainer()
        inputs = [np.zeros(4)] * 8
        profile = measure_latency_profile(container, inputs, batch_sizes=[1, 4, 8], repeats=2)
        assert profile.batch_sizes == [1, 4, 8]
        assert all(len(profile.latencies_ms[b]) == 2 for b in (1, 4, 8))

    def test_latency_grows_with_batch_for_per_item_cost(self):
        container = SimulatedLatencyContainer(
            base_latency_ms=0.5, per_item_latency_ms=0.5, random_state=0
        )
        profile = measure_latency_profile(
            container, [np.zeros(2)], batch_sizes=[1, 16], repeats=2, warmup=0
        )
        assert profile.mean(16) > profile.mean(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_latency_profile(NoOpContainer(), [], batch_sizes=[1])
        with pytest.raises(ValueError):
            measure_latency_profile(NoOpContainer(), [np.zeros(1)], batch_sizes=[0])
        with pytest.raises(ValueError):
            measure_latency_profile(NoOpContainer(), [np.zeros(1)], batch_sizes=[1], repeats=0)

    def test_rows_rendering(self):
        profile = measure_latency_profile(NoOpContainer(), [np.zeros(1)], batch_sizes=[1, 2])
        rows = profile.rows()
        assert len(rows) == 2
        assert {"batch_size", "mean_ms", "p99_ms", "p99_us"} <= set(rows[0])
        rendered = format_table(rows, title="profile")
        assert "profile" in rendered
        assert "batch_size" in rendered


class TestMaxBatchUnderSlo:
    def _profile(self, mapping):
        profile = LatencyProfile(container_name="synthetic")
        for batch, latency in mapping.items():
            profile.batch_sizes.append(batch)
            profile.latencies_ms[batch] = [latency]
        return profile

    def test_picks_largest_passing_batch(self):
        profile = self._profile({1: 1.0, 10: 5.0, 100: 50.0})
        assert max_batch_under_slo(profile, slo_ms=6.0) >= 10

    def test_interpolates_between_measured_sizes(self):
        profile = self._profile({10: 10.0, 20: 20.0})
        assert 14 <= max_batch_under_slo(profile, slo_ms=15.0) <= 16

    def test_returns_zero_when_even_smallest_batch_misses(self):
        profile = self._profile({1: 100.0})
        assert max_batch_under_slo(profile, slo_ms=10.0) == 0

    def test_all_pass_returns_largest(self):
        profile = self._profile({1: 1.0, 64: 2.0})
        assert max_batch_under_slo(profile, slo_ms=10.0) == 64

    def test_slo_must_be_positive(self):
        with pytest.raises(ValueError):
            max_batch_under_slo(self._profile({1: 1.0}), slo_ms=0)

    def test_figure3_headline_ratio_reproduced_in_miniature(self):
        """The cheap container's max batch should dwarf the expensive one's."""
        cheap = self._profile({1: 0.1, 100: 0.5, 1000: 4.0, 2000: 8.0})
        expensive = self._profile({1: 3.0, 4: 12.0, 8: 24.0})
        ratio = max_batch_under_slo(cheap, 20.0) / max(max_batch_under_slo(expensive, 20.0), 1)
        assert ratio > 100

    def test_throughput_at_batch_size(self):
        profile = self._profile({10: 10.0})
        assert throughput_at_batch_size(profile, 10) == pytest.approx(1000.0)
        assert throughput_at_batch_size(profile, 99) == 0.0 or np.isnan(
            throughput_at_batch_size(profile, 99)
        ) is False


class TestFormatTable:
    def test_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_alignment_and_floats(self):
        rows = [{"name": "a", "value": 1.23456}, {"name": "bb", "value": 2.0}]
        rendered = format_table(rows)
        lines = rendered.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in rendered
