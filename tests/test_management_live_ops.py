"""Live lifecycle operations on a running Clipper, under concurrent traffic.

Covers the concurrency seams called out by the management-plane issue:
replica scaling and version rollout while predictions are in flight (no
lost or duplicated pending queries, clean drains on scale-down), plus the
full acceptance scenario — deploy a second version, roll out, scale 1→3→1,
kill a replica and watch health-driven recovery, roll back — with zero
failed predictions attributable to the management operations.
"""

import asyncio

import numpy as np
import pytest

from helpers import run_async
from repro.containers.chaos import KillableContainer, TrackingFactory
from repro.containers.noop import NoOpContainer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.exceptions import DeploymentError
from repro.core.types import Feedback, Query
from repro.management import ManagementFrontend


def build_clipper(policy="single", **config_kwargs):
    config_kwargs.setdefault("latency_slo_ms", 1000.0)
    return Clipper(
        ClipperConfig(app_name="live-app", selection_policy=policy, **config_kwargs)
    )


def deployment(name="m", version=1, output=None, num_replicas=1, **kwargs):
    value = version if output is None else output
    return ModelDeployment(
        name=name,
        container_factory=lambda: NoOpContainer(output=value),
        version=version,
        num_replicas=num_replicas,
        **kwargs,
    )


class LoadDriver:
    """Sustained background predict traffic collecting results and failures."""

    def __init__(self, clipper, app_name="live-app"):
        self.clipper = clipper
        self.app_name = app_name
        self.results = []
        self.failures = []
        self._stop = False
        self._task = None

    async def _run(self):
        i = 0
        while not self._stop:
            i += 1
            query = Query(app_name=self.app_name, input=np.array([float(i)]))
            try:
                prediction = await self.clipper.predict(query)
                self.results.append((query.query_id, prediction.output))
            except Exception as exc:
                self.failures.append(exc)
            await asyncio.sleep(0)

    def start(self):
        self._task = asyncio.get_running_loop().create_task(self._run())
        return self._task

    async def stop(self):
        self._stop = True
        await self._task


class TestLiveDeployUndeploy:
    def test_deploy_async_on_running_instance_serves(self):
        async def scenario():
            clipper = build_clipper()
            clipper.deploy_model(deployment(name="a", output=1))
            await clipper.start()
            await clipper.deploy_model_async(deployment(name="b", output=2))
            assert sorted(str(m) for m in clipper.serving_models()) == ["a:1", "b:1"]
            prediction = await clipper.predict(
                Query(app_name="live-app", input=np.zeros(1))
            )
            assert prediction.output in (1, 2)
            await clipper.stop()

        run_async(scenario())

    def test_staged_version_does_not_serve_until_rollout(self):
        async def scenario():
            clipper = build_clipper()
            clipper.deploy_model(deployment(version=1))
            await clipper.start()
            await clipper.deploy_model_async(deployment(version=2))
            assert [str(m) for m in clipper.serving_models()] == ["m:1"]
            for i in range(5):
                prediction = await clipper.predict(
                    Query(app_name="live-app", input=np.array([float(i)]))
                )
                assert prediction.output == 1
            clipper.rollout("m", 2)
            prediction = await clipper.predict(
                Query(app_name="live-app", input=np.array([99.0]))
            )
            assert prediction.output == 2
            await clipper.stop()

        run_async(scenario())

    def test_undeploy_drains_pending_queries(self):
        async def scenario():
            clipper = build_clipper(policy="exp4")
            clipper.deploy_model(deployment(name="a", output=1))
            clipper.deploy_model(deployment(name="b", output=1))
            await clipper.start()
            # Queue work against both models, then undeploy one immediately:
            # queries already submitted to its queue must still complete.
            queries = [
                clipper.predict(Query(app_name="live-app", input=np.array([float(i)])))
                for i in range(32)
            ]
            gather = asyncio.gather(*queries)
            undeployed = await clipper.undeploy_model("b")
            assert str(undeployed) == "b:1"
            predictions = await gather
            assert all(p.output == 1 for p in predictions)
            assert [str(m) for m in clipper.serving_models()] == ["a:1"]
            await clipper.stop()

        run_async(scenario())

    def test_cannot_undeploy_last_serving_model(self):
        async def scenario():
            clipper = build_clipper()
            clipper.deploy_model(deployment())
            await clipper.start()
            with pytest.raises(DeploymentError):
                await clipper.undeploy_model("m")
            await clipper.stop()

        run_async(scenario())


class TestLiveScaling:
    def test_scale_up_and_down_under_sustained_traffic(self):
        async def scenario():
            clipper = build_clipper()
            clipper.deploy_model(deployment(output=5))
            await clipper.start()
            driver = LoadDriver(clipper)
            driver.start()
            await asyncio.sleep(0.05)

            assert await clipper.set_num_replicas("m", 3) == 3
            record = clipper.model_record("m")
            assert len(record.replica_set) == 3
            assert len(record.dispatchers) == 3
            await asyncio.sleep(0.05)

            assert await clipper.set_num_replicas("m", 1) == 1
            assert len(record.replica_set) == 1
            assert len(record.dispatchers) == 1
            await asyncio.sleep(0.05)
            await driver.stop()

            # No failures, no lost queries, and exactly one result per query
            # (futures resolved once each: no duplicated pending entries).
            assert driver.failures == []
            assert len(driver.results) > 0
            query_ids = [qid for qid, _ in driver.results]
            assert len(query_ids) == len(set(query_ids))
            assert all(output == 5 for _, output in driver.results)
            # The queue drained on scale-down.
            assert record.queue.qsize() == 0
            await clipper.stop()

        run_async(scenario())

    def test_scale_down_requires_at_least_one_replica(self):
        async def scenario():
            clipper = build_clipper()
            clipper.deploy_model(deployment())
            await clipper.start()
            with pytest.raises(DeploymentError):
                await clipper.set_num_replicas("m", 0)
            await clipper.stop()

        run_async(scenario())

    def test_new_replicas_get_monotonic_ids(self):
        async def scenario():
            clipper = build_clipper()
            clipper.deploy_model(deployment())
            await clipper.start()
            await clipper.set_num_replicas("m", 3)
            await clipper.set_num_replicas("m", 1)
            await clipper.set_num_replicas("m", 2)
            record = clipper.model_record("m")
            ids = [replica.replica_id for replica in record.replica_set]
            assert ids == sorted(ids)
            assert len(set(ids)) == len(ids)
            await clipper.stop()

        run_async(scenario())


class TestRolloutRollback:
    def test_rollout_under_sustained_traffic_switches_cleanly(self):
        async def scenario():
            clipper = build_clipper(cache_size=0)
            clipper.deploy_model(deployment(version=1))
            await clipper.start()
            driver = LoadDriver(clipper)
            driver.start()
            await asyncio.sleep(0.05)

            await clipper.deploy_model_async(deployment(version=2))
            clipper.rollout("m", 2)
            await asyncio.sleep(0.05)
            clipper.rollback("m")
            await asyncio.sleep(0.05)
            await driver.stop()

            assert driver.failures == []
            outputs = [output for _, output in driver.results]
            # Every prediction came from exactly one of the two versions, the
            # switch happened (both versions observed), and after rollback
            # traffic returned to v1.
            assert set(outputs) <= {1, 2}
            assert 2 in outputs
            assert outputs[-1] == 1
            query_ids = [qid for qid, _ in driver.results]
            assert len(query_ids) == len(set(query_ids))
            await clipper.stop()

        run_async(scenario())

    def test_rollback_without_previous_version_rejected(self):
        async def scenario():
            clipper = build_clipper()
            clipper.deploy_model(deployment(version=1))
            await clipper.start()
            with pytest.raises(DeploymentError):
                clipper.rollback("m")
            await clipper.stop()

        run_async(scenario())

    def test_rollout_of_missing_version_rejected(self):
        async def scenario():
            clipper = build_clipper()
            clipper.deploy_model(deployment(version=1))
            await clipper.start()
            with pytest.raises(DeploymentError):
                clipper.rollout("m", 9)
            await clipper.stop()

        run_async(scenario())

    def test_selection_state_is_retained_across_rollback(self):
        async def scenario():
            clipper = build_clipper(policy="exp4")
            clipper.deploy_model(deployment(name="good", output=1))
            clipper.deploy_model(deployment(name="bad", output=0))
            await clipper.start()
            for i in range(25):
                x = np.array([float(i)])
                await clipper.feedback(Feedback(app_name="live-app", input=x, label=1))
            trained = clipper.selection_manager.get_state(None)
            assert trained["weights"]["good:1"] > trained["weights"]["bad:1"]

            # Roll "good" to v2: the new serving set starts fresh state...
            await clipper.deploy_model_async(deployment(name="good", version=2, output=1))
            clipper.rollout("good", 2)
            fresh = clipper.selection_manager.get_state(None)
            assert fresh["weights"]["good:2"] == fresh["weights"]["bad:1"]

            # ...and rollback recovers the state learned for v1 untouched.
            clipper.rollback("good")
            restored = clipper.selection_manager.get_state(None)
            assert restored["weights"] == trained["weights"]
            await clipper.stop()

        run_async(scenario())


class TestAcceptanceScenario:
    def test_full_management_lifecycle_under_load(self):
        """Deploy v2, rollout, scale 1→3→1, kill+recover a replica, rollback —
        with zero failed predictions under continuous concurrent load."""

        async def scenario():
            factory_v1 = TrackingFactory(lambda: KillableContainer(output=1))
            factory_v2 = TrackingFactory(lambda: KillableContainer(output=2))
            clipper = build_clipper()
            clipper.deploy_model(
                ModelDeployment(
                    name="m", container_factory=factory_v1, version=1, max_batch_retries=5
                )
            )
            mgmt = ManagementFrontend(
                health_kwargs=dict(
                    probe_interval_s=0.01, failure_threshold=2, restart_backoff_s=0.01
                )
            )
            mgmt.register_application(clipper)
            await mgmt.start()

            driver = LoadDriver(clipper)
            driver.start()
            await asyncio.sleep(0.05)

            # Deploy a second version (staged) and roll it out.
            await mgmt.deploy_model(
                "live-app",
                ModelDeployment(
                    name="m", container_factory=factory_v2, version=2, max_batch_retries=5
                ),
            )
            await mgmt.rollout("live-app", "m", 2)
            await asyncio.sleep(0.05)

            # Scale the serving version 1 → 3.
            assert await mgmt.set_num_replicas("live-app", "m:2", 3) == 3
            await asyncio.sleep(0.05)

            # Kill one serving replica; health-driven recovery restarts it.
            record = clipper.model_record("m:2")
            record.replica_set.replicas[0].container.kill()
            deadline = asyncio.get_running_loop().time() + 5.0
            while asyncio.get_running_loop().time() < deadline:
                if clipper.metrics.counter("health.recoveries").value >= 1:
                    break
                await asyncio.sleep(0.01)
            assert clipper.metrics.counter("health.recoveries").value >= 1
            await asyncio.sleep(0.05)

            # Scale back 3 → 1, then roll back to v1.
            assert await mgmt.set_num_replicas("live-app", "m:2", 1) == 1
            await asyncio.sleep(0.05)
            await mgmt.rollback("live-app", "m")
            await asyncio.sleep(0.05)
            await driver.stop()

            # Zero failed predictions attributable to the management ops.
            assert driver.failures == []
            assert len(driver.results) > 50
            query_ids = [qid for qid, _ in driver.results]
            assert len(query_ids) == len(set(query_ids))
            outputs = [output for _, output in driver.results]
            assert set(outputs) <= {1, 2}
            assert 2 in outputs  # the rollout took traffic
            assert outputs[-1] == 1  # the rollback restored v1

            # The registry recorded the whole story.
            info = mgmt.model_info("live-app", "m")
            assert info["active_version"] == 1
            assert info["previous_version"] == 2
            assert info["versions"]["1"]["state"] == "serving"
            assert info["versions"]["2"]["state"] == "retired"
            assert info["versions"]["2"]["num_replicas"] == 1
            assert clipper.metrics.counter("health.quarantines").value >= 1
            await mgmt.stop()

        run_async(scenario())
