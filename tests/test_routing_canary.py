"""Canary rollouts end to end: routing, attribution, controller, registry.

Covers the acceptance scenarios of the routing issue: a weighted canary
started, adjusted and auto-promoted on healthy metrics under live traffic;
a canary auto-aborted when failures are injected into its replicas (via
``containers/chaos.py``) with zero failed predictions; per-arm metric
attribution; selection-state pruning; and the durable traffic-split records
in the model registry.
"""

import asyncio

import numpy as np
import pytest

from helpers import run_async
from repro.containers.chaos import KillableContainer, TrackingFactory
from repro.containers.noop import NoOpContainer
from repro.core.clipper import Clipper
from repro.core.config import ClipperConfig, ModelDeployment
from repro.core.exceptions import DeploymentError, RoutingError
from repro.core.types import Feedback, Query
from repro.management import ManagementFrontend
from repro.routing import CanaryController

APP = "canary-app"


def build_clipper(policy="single", **config_kwargs):
    config_kwargs.setdefault("latency_slo_ms", 1000.0)
    return Clipper(
        ClipperConfig(app_name=APP, selection_policy=policy, **config_kwargs)
    )


def deployment(name="m", version=1, output=None, num_replicas=1, factory=None, **kwargs):
    value = version if output is None else output
    if factory is None:
        factory = lambda: NoOpContainer(output=value)  # noqa: E731
    return ModelDeployment(
        name=name,
        container_factory=factory,
        version=version,
        num_replicas=num_replicas,
        **kwargs,
    )


class LoadDriver:
    """Background predict traffic over a rotating user population."""

    def __init__(self, clipper, num_users=50):
        self.clipper = clipper
        self.num_users = num_users
        self.results = []
        self.failures = []
        self._stop = False
        self._task = None

    async def _run(self):
        i = 0
        while not self._stop:
            i += 1
            query = Query(
                app_name=APP,
                input=np.array([float(i)]),
                user_id=f"user-{i % self.num_users}",
            )
            try:
                prediction = await self.clipper.predict(query)
                self.results.append((query.user_id, prediction.output))
            except Exception as exc:
                self.failures.append(exc)
            await asyncio.sleep(0)

    def start(self):
        self._task = asyncio.get_running_loop().create_task(self._run())
        return self._task

    async def stop(self):
        self._stop = True
        await self._task


class TestClipperCanaryVerbs:
    def test_weighted_canary_routes_deterministically_per_user(self):
        async def scenario():
            clipper = build_clipper(cache_size=0)
            clipper.deploy_model(deployment(version=1))
            await clipper.start()
            await clipper.deploy_model_async(deployment(version=2))
            split = clipper.start_canary("m", 2, weight=0.3)

            outputs = {}
            for i in range(200):
                user = f"user-{i % 40}"
                prediction = await clipper.predict(
                    Query(app_name=APP, input=np.array([float(i)]), user_id=user)
                )
                expected_arm = split.arm_for(user)
                assert prediction.output == int(expected_arm.rpartition(":")[2])
                outputs.setdefault(user, set()).add(prediction.output)
            # Each user is pinned to exactly one arm across all their queries.
            assert all(len(seen) == 1 for seen in outputs.values())
            # Both arms took traffic.
            flat = {next(iter(seen)) for seen in outputs.values()}
            assert flat == {1, 2}
            await clipper.stop()

        run_async(scenario())

    def test_per_arm_metrics_attributed_only_during_split(self):
        async def scenario():
            clipper = build_clipper(cache_size=0)
            clipper.deploy_model(deployment(version=1))
            await clipper.start()
            for i in range(10):
                await clipper.predict(Query(app_name=APP, input=np.array([float(i)])))
            # Stable serving: no attribution cost, no arm counters.
            assert clipper.metrics.counter("routing.arm.m:1.requests").value == 0

            await clipper.deploy_model_async(deployment(version=2))
            clipper.start_canary("m", 2, weight=0.5)
            for i in range(60):
                await clipper.predict(
                    Query(
                        app_name=APP,
                        input=np.array([float(i + 100)]),
                        user_id=f"user-{i}",
                    )
                )
            stable = clipper.routing.arm_metrics("m:1")
            canary = clipper.routing.arm_metrics("m:2")
            assert stable.requests.value + canary.requests.value == 60
            assert canary.requests.value > 0
            assert stable.requests.value > 0
            assert stable.errors.value == canary.errors.value == 0
            assert canary.latency.count > 0
            assert canary.p99() == canary.p99()  # not NaN
            await clipper.stop()

        run_async(scenario())

    def test_adjust_promote_and_rollback(self):
        async def scenario():
            clipper = build_clipper(cache_size=0)
            clipper.deploy_model(deployment(version=1))
            await clipper.start()
            await clipper.deploy_model_async(deployment(version=2))
            clipper.start_canary("m", 2, weight=0.1)
            split = clipper.adjust_canary("m", weight=0.5)
            assert split.canary_weight == 0.5
            promoted = clipper.promote("m")
            assert str(promoted) == "m:2"
            assert str(clipper.active_version("m")) == "m:2"
            prediction = await clipper.predict(
                Query(app_name=APP, input=np.array([9.0]))
            )
            assert prediction.output == 2
            # The displaced stable version is the rollback target.
            restored = clipper.rollback("m")
            assert str(restored) == "m:1"
            prediction = await clipper.predict(
                Query(app_name=APP, input=np.array([10.0]))
            )
            assert prediction.output == 1
            await clipper.stop()

        run_async(scenario())

    def test_abort_restores_stable_traffic(self):
        async def scenario():
            clipper = build_clipper(cache_size=0)
            clipper.deploy_model(deployment(version=1))
            await clipper.start()
            await clipper.deploy_model_async(deployment(version=2))
            clipper.start_canary("m", 2, weight=0.9)
            restored = clipper.abort_canary("m")
            assert str(restored) == "m:1"
            assert clipper.routing.canaries() == {}
            for i in range(20):
                prediction = await clipper.predict(
                    Query(app_name=APP, input=np.array([float(i)]), user_id=f"u{i}")
                )
                assert prediction.output == 1
            await clipper.stop()

        run_async(scenario())

    def test_canary_misuse_and_guards(self):
        async def scenario():
            clipper = build_clipper()
            clipper.deploy_model(deployment(version=1))
            await clipper.start()
            with pytest.raises(DeploymentError):
                clipper.start_canary("m", 9, weight=0.5)  # not deployed
            await clipper.deploy_model_async(deployment(version=2))
            with pytest.raises(RoutingError):
                clipper.start_canary("m", 1, weight=0.5)  # canary == stable
            clipper.start_canary("m", 2, weight=0.5)
            with pytest.raises(RoutingError):
                clipper.start_canary("m", 2, weight=0.2)  # already in flight
            await clipper.stop()

        run_async(scenario())

    def test_undeploying_the_canary_arm_aborts_the_rollout(self):
        async def scenario():
            clipper = build_clipper(cache_size=0)
            clipper.deploy_model(deployment(version=1))
            await clipper.start()
            await clipper.deploy_model_async(deployment(version=2))
            clipper.start_canary("m", 2, weight=0.5)
            await clipper.undeploy_model("m:2")
            assert clipper.routing.canaries() == {}
            assert str(clipper.active_version("m")) == "m:1"
            prediction = await clipper.predict(Query(app_name=APP, input=np.zeros(1)))
            assert prediction.output == 1
            await clipper.stop()

        run_async(scenario())

    def test_feedback_follows_the_users_arm(self):
        async def scenario():
            clipper = build_clipper(policy="exp4", cache_size=0)
            clipper.deploy_model(deployment(version=1))
            await clipper.start()
            await clipper.deploy_model_async(deployment(version=2))
            split = clipper.start_canary("m", 2, weight=0.5)
            canary_user = next(
                f"u{i}" for i in range(100) if split.arm_for(f"u{i}") == "m:2"
            )
            await clipper.feedback(
                Feedback(app_name=APP, input=np.zeros(1), label=2, user_id=canary_user)
            )
            plan = clipper.routing.plan_for(canary_user)
            assert plan.serving_keys == ["m:2"]
            manager = clipper._selection_manager_for(plan)
            assert manager.get_state(canary_user)["n_feedback"] == 1
            await clipper.stop()

        run_async(scenario())


class TestSelectionStatePruning:
    def test_retired_namespaces_are_pruned_after_successive_rollouts(self):
        async def scenario():
            clipper = build_clipper(policy="exp4")
            clipper.deploy_model(deployment(version=1))
            await clipper.start()
            await clipper.feedback(Feedback(app_name=APP, input=np.zeros(1), label=1))
            ns_v1 = f"selection-state@{APP}@m:1"
            assert clipper.state_store.keys(ns_v1)  # state instantiated

            await clipper.deploy_model_async(deployment(version=2))
            clipper.rollout("m", 2)
            # One step back is reachable: v1's state is retained for rollback.
            assert clipper.state_store.keys(ns_v1)
            await clipper.feedback(Feedback(app_name=APP, input=np.zeros(1), label=1))
            assert clipper.state_store.keys(f"selection-state@{APP}@m:2")

            await clipper.deploy_model_async(deployment(version=3))
            clipper.rollout("m", 3)
            # v1 is now two rollouts old — no routing configuration reaches
            # it, so its namespace is pruned; v2 (the rollback target) stays.
            assert clipper.state_store.keys(ns_v1) == []
            assert clipper.state_store.keys(f"selection-state@{APP}@m:2")
            await clipper.stop()

        run_async(scenario())

    def test_undeploy_prunes_namespaces_referencing_the_version(self):
        async def scenario():
            clipper = build_clipper(policy="exp4")
            clipper.deploy_model(deployment(name="a", version=1))
            clipper.deploy_model(deployment(name="b", version=1))
            await clipper.start()
            await clipper.feedback(Feedback(app_name=APP, input=np.zeros(1), label=1))
            ns = f"selection-state@{APP}@a:1|b:1"
            assert clipper.state_store.keys(ns)
            await clipper.undeploy_model("b")
            assert clipper.state_store.keys(ns) == []
            await clipper.stop()

        run_async(scenario())

    def test_prune_leaves_foreign_namespaces_alone(self):
        async def scenario():
            clipper = build_clipper(policy="exp4")
            clipper.deploy_model(deployment(version=1))
            clipper.state_store.put("selection-state@other:1", "ctx", {"w": 1})
            clipper.state_store.put("unrelated", "key", "value")
            await clipper.start()
            await clipper.deploy_model_async(deployment(version=2))
            clipper.rollout("m", 2)
            assert clipper.state_store.get("selection-state@other:1", "ctx") == {"w": 1}
            assert clipper.state_store.get("unrelated", "key") == "value"
            await clipper.stop()

        run_async(scenario())


class TestCanaryControllerJudgement:
    """Controller decisions driven directly through the arm metrics."""

    def make_canary_clipper(self):
        clipper = build_clipper()
        clipper.deploy_model(deployment(version=1))
        clipper.deploy_model(deployment(version=2))  # stages behind v1
        clipper.start_canary("m", 2, weight=0.5)
        return clipper

    def test_auto_promote_after_consecutive_healthy_checks(self):
        async def scenario():
            clipper = self.make_canary_clipper()
            controller = CanaryController(
                clipper, min_requests=10, healthy_checks_to_promote=2
            )
            stable = clipper.routing.arm_metrics("m:1")
            canary = clipper.routing.arm_metrics("m:2")
            assert await controller.evaluate_once() == []  # creates the watch
            for check in range(2):
                for _ in range(20):
                    stable.observe(1.0)
                    canary.observe(1.1)
                decisions = await controller.evaluate_once()
                if check == 0:
                    assert decisions == []
            assert len(decisions) == 1
            assert decisions[0].action == "promote"
            assert str(clipper.active_version("m")) == "m:2"
            assert clipper.metrics.counter("canary.auto_promotions").value == 1

        run_async(scenario())

    def test_auto_abort_on_error_rate_delta(self):
        async def scenario():
            clipper = self.make_canary_clipper()
            controller = CanaryController(clipper, min_requests=10)
            stable = clipper.routing.arm_metrics("m:1")
            canary = clipper.routing.arm_metrics("m:2")
            await controller.evaluate_once()
            for i in range(20):
                stable.observe(1.0)
                canary.observe(1.0, ok=i % 2 == 0)  # 50% errors
            decisions = await controller.evaluate_once()
            assert len(decisions) == 1
            assert decisions[0].action == "abort"
            assert "error rate" in decisions[0].reason
            assert str(clipper.active_version("m")) == "m:1"
            assert clipper.metrics.counter("canary.auto_aborts").value == 1

        run_async(scenario())

    def test_auto_abort_on_p99_regression(self):
        async def scenario():
            clipper = self.make_canary_clipper()
            controller = CanaryController(
                clipper, min_requests=10, p99_ratio_limit=2.0, p99_slack_ms=1.0
            )
            stable = clipper.routing.arm_metrics("m:1")
            canary = clipper.routing.arm_metrics("m:2")
            await controller.evaluate_once()
            for _ in range(20):
                stable.observe(1.0)
                canary.observe(50.0)  # 50 ms vs 1 ms stable
            decisions = await controller.evaluate_once()
            assert len(decisions) == 1
            assert decisions[0].action == "abort"
            assert "p99" in decisions[0].reason
            await asyncio.sleep(0)

        run_async(scenario())

    def test_no_decision_without_enough_traffic(self):
        async def scenario():
            clipper = self.make_canary_clipper()
            controller = CanaryController(clipper, min_requests=100)
            canary = clipper.routing.arm_metrics("m:2")
            await controller.evaluate_once()
            for _ in range(5):
                canary.observe(1.0)
            assert await controller.evaluate_once() == []
            assert clipper.routing.canaries() != {}

        run_async(scenario())


class TestRegistryConsistency:
    def test_undeploying_the_canary_arm_clears_the_durable_split(self):
        async def scenario():
            clipper = build_clipper(cache_size=0)
            clipper.deploy_model(deployment(version=1))
            mgmt = ManagementFrontend(monitor_health=False, manage_canaries=False)
            mgmt.register_application(clipper)
            await mgmt.start()
            await mgmt.deploy_model(APP, deployment(version=2))
            await mgmt.start_canary(APP, "m", 2, weight=0.3)
            assert mgmt.traffic_split(APP, "m") is not None

            await mgmt.undeploy_model(APP, "m:2")
            # The live abort and the durable record agree: no split in
            # flight, the canary version is undeployed, v1 keeps serving.
            assert mgmt.traffic_split(APP, "m") is None
            info = mgmt.model_info(APP, "m")
            assert info["versions"]["2"]["state"] == "undeployed"
            assert info["active_version"] == 1
            assert clipper.routing.canaries() == {}
            await mgmt.stop()

        run_async(scenario())

    def test_deploy_with_activate_clears_a_stale_split_record(self):
        async def scenario():
            clipper = build_clipper(cache_size=0)
            clipper.deploy_model(deployment(version=1))
            mgmt = ManagementFrontend(monitor_health=False, manage_canaries=False)
            mgmt.register_application(clipper)
            await mgmt.start()
            await mgmt.deploy_model(APP, deployment(version=2))
            await mgmt.start_canary(APP, "m", 2, weight=0.3)
            # Forced activation of a third version discards the canary.
            await mgmt.deploy_model(APP, deployment(version=3), activate=True)
            assert mgmt.traffic_split(APP, "m") is None
            info = mgmt.model_info(APP, "m")
            assert info["active_version"] == 3
            assert info["versions"]["2"]["state"] == "staged"
            assert clipper.routing.canaries() == {}
            await mgmt.stop()

        run_async(scenario())

    def test_aborted_canary_of_the_rollback_target_stays_retired(self):
        async def scenario():
            clipper = build_clipper(cache_size=0)
            clipper.deploy_model(deployment(version=1))
            mgmt = ManagementFrontend(monitor_health=False, manage_canaries=False)
            mgmt.register_application(clipper)
            await mgmt.start()
            await mgmt.deploy_model(APP, deployment(version=2))
            await mgmt.rollout(APP, "m", 2)  # v1 retires as rollback target
            assert mgmt.model_info(APP, "m")["versions"]["1"]["state"] == "retired"
            # Canarying the rollback target and aborting must not demote it
            # to staged — previous_version still names it.
            await mgmt.start_canary(APP, "m", 1, weight=0.2)
            await mgmt.abort_canary(APP, "m")
            info = mgmt.model_info(APP, "m")
            assert info["previous_version"] == 1
            assert info["versions"]["1"]["state"] == "retired"
            await mgmt.stop()

        run_async(scenario())

    def test_direct_rollout_clears_a_stale_split_record(self):
        async def scenario():
            clipper = build_clipper(cache_size=0)
            clipper.deploy_model(deployment(version=1))
            mgmt = ManagementFrontend(monitor_health=False, manage_canaries=False)
            mgmt.register_application(clipper)
            await mgmt.start()
            await mgmt.deploy_model(APP, deployment(version=2))
            await mgmt.start_canary(APP, "m", 2, weight=0.3)
            await mgmt.rollout(APP, "m", 2)  # instant rollout ends the canary
            assert mgmt.traffic_split(APP, "m") is None
            assert mgmt.model_info(APP, "m")["active_version"] == 2
            await mgmt.stop()

        run_async(scenario())


class TestCanaryIntegration:
    def test_start_adjust_auto_promote_under_live_traffic(self):
        """start → adjust → auto-promote on healthy metrics, zero failures."""

        async def scenario():
            clipper = build_clipper(cache_size=0)
            clipper.deploy_model(deployment(version=1))
            mgmt = ManagementFrontend(
                health_kwargs=dict(probe_interval_s=0.02),
                canary_kwargs=dict(
                    check_interval_s=0.01,
                    min_requests=10,
                    healthy_checks_to_promote=2,
                ),
            )
            mgmt.register_application(clipper)
            await mgmt.start()
            driver = LoadDriver(clipper)
            driver.start()
            await asyncio.sleep(0.05)

            await mgmt.deploy_model(APP, deployment(version=2))
            split = await mgmt.start_canary(APP, "m", 2, weight=0.1)
            assert split.canary_weight == 0.1
            record = mgmt.traffic_split(APP, "m")
            assert record is not None and record["canary"] == "m:2"
            assert mgmt.model_info(APP, "m")["versions"]["2"]["state"] == "canary"

            await asyncio.sleep(0.05)
            await mgmt.adjust_canary(APP, "m", weight=0.5)

            # The controller promotes once the canary matches the stable arm
            # over enough fresh traffic.
            deadline = asyncio.get_running_loop().time() + 5.0
            while asyncio.get_running_loop().time() < deadline:
                if clipper.routing.canaries() == {}:
                    break
                await asyncio.sleep(0.01)
            await asyncio.sleep(0.05)
            await driver.stop()

            assert driver.failures == []
            assert clipper.metrics.counter("canary.auto_promotions").value == 1
            controller = mgmt.canary_controller(APP)
            assert [d.action for d in controller.decisions] == ["promote"]
            # Traffic fully shifted: the last prediction came from v2.
            assert driver.results[-1][1] == 2
            # The registry recorded the promotion durably.
            info = mgmt.model_info(APP, "m")
            assert info["active_version"] == 2
            assert info["previous_version"] == 1
            assert info["versions"]["2"]["state"] == "serving"
            assert info["versions"]["1"]["state"] == "retired"
            assert mgmt.traffic_split(APP, "m") is None
            await mgmt.stop()

        run_async(scenario())

    def test_injected_failures_auto_abort_with_zero_failed_predictions(self):
        """start → auto-abort when a canary replica is killed mid-rollout."""

        async def scenario():
            factory_v1 = TrackingFactory(lambda: KillableContainer(output=1))
            factory_v2 = TrackingFactory(lambda: KillableContainer(output=2))
            clipper = build_clipper(cache_size=0)
            clipper.deploy_model(
                deployment(version=1, factory=factory_v1, max_batch_retries=5)
            )
            mgmt = ManagementFrontend(
                health_kwargs=dict(
                    probe_interval_s=0.01, failure_threshold=2, restart_backoff_s=0.05
                ),
                canary_kwargs=dict(
                    check_interval_s=0.01,
                    min_requests=10_000,  # metrics alone would never decide
                    healthy_checks_to_promote=3,
                ),
            )
            mgmt.register_application(clipper)
            await mgmt.start()
            driver = LoadDriver(clipper)
            driver.start()
            await asyncio.sleep(0.05)

            await mgmt.deploy_model(
                APP,
                deployment(
                    version=2, factory=factory_v2, num_replicas=2, max_batch_retries=5
                ),
            )
            await mgmt.start_canary(APP, "m", 2, weight=0.4)
            await asyncio.sleep(0.05)  # the controller registers its watch

            # Inject failure into one canary replica: its sibling absorbs the
            # re-enqueued batches while the health monitor quarantines it,
            # and the quarantine signal aborts the rollout.
            factory_v2.instances[0].kill()
            deadline = asyncio.get_running_loop().time() + 5.0
            while asyncio.get_running_loop().time() < deadline:
                if clipper.routing.canaries() == {}:
                    break
                await asyncio.sleep(0.01)
            await asyncio.sleep(0.05)
            await driver.stop()

            assert driver.failures == []
            assert clipper.routing.canaries() == {}
            assert clipper.metrics.counter("canary.auto_aborts").value == 1
            controller = mgmt.canary_controller(APP)
            assert [d.action for d in controller.decisions] == ["abort"]
            assert "quarantin" in controller.decisions[0].reason
            # Stable v1 serves everything again; v2 is back to staged.
            assert driver.results[-1][1] == 1
            info = mgmt.model_info(APP, "m")
            assert info["active_version"] == 1
            assert info["versions"]["2"]["state"] == "staged"
            assert mgmt.traffic_split(APP, "m") is None
            await mgmt.stop()

        run_async(scenario())
