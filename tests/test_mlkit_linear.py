"""Tests for linear models (LinearSVM, LogisticRegression)."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.mlkit import LinearSVM, LogisticRegression


@pytest.fixture(scope="module")
def easy_dataset():
    return make_classification(
        n_samples=500, n_features=16, n_classes=3, difficulty=0.3, random_state=0
    )


@pytest.mark.parametrize("model_cls", [LinearSVM, LogisticRegression])
class TestLinearModels:
    def test_learns_separable_data(self, model_cls, easy_dataset):
        ds = easy_dataset
        model = model_cls(epochs=8, random_state=0).fit(ds.X_train, ds.y_train)
        assert model.score(ds.X_test, ds.y_test) > 0.85

    def test_predict_shape_and_label_domain(self, model_cls, easy_dataset):
        ds = easy_dataset
        model = model_cls(epochs=3, random_state=0).fit(ds.X_train, ds.y_train)
        predictions = model.predict(ds.X_test)
        assert predictions.shape == (ds.X_test.shape[0],)
        assert set(np.unique(predictions)) <= set(np.unique(ds.y_train))

    def test_predict_proba_rows_sum_to_one(self, model_cls, easy_dataset):
        ds = easy_dataset
        model = model_cls(epochs=3, random_state=0).fit(ds.X_train, ds.y_train)
        proba = model.predict_proba(ds.X_test[:20])
        assert proba.shape == (20, 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(proba >= 0)

    def test_deterministic_given_seed(self, model_cls, easy_dataset):
        ds = easy_dataset
        m1 = model_cls(epochs=3, random_state=7).fit(ds.X_train, ds.y_train)
        m2 = model_cls(epochs=3, random_state=7).fit(ds.X_train, ds.y_train)
        np.testing.assert_array_equal(m1.predict(ds.X_test), m2.predict(ds.X_test))

    def test_single_row_prediction(self, model_cls, easy_dataset):
        ds = easy_dataset
        model = model_cls(epochs=3, random_state=0).fit(ds.X_train, ds.y_train)
        single = model.predict(ds.X_test[0])
        assert single.shape == (1,)

    def test_feature_mismatch_raises(self, model_cls, easy_dataset):
        ds = easy_dataset
        model = model_cls(epochs=2, random_state=0).fit(ds.X_train, ds.y_train)
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 99)))

    def test_unfitted_predict_raises(self, model_cls):
        with pytest.raises(RuntimeError):
            model_cls().predict(np.zeros((1, 4)))

    def test_rejects_single_class(self, model_cls):
        X = np.random.default_rng(0).normal(size=(20, 4))
        with pytest.raises(ValueError):
            model_cls().fit(X, np.zeros(20, dtype=int))

    def test_rejects_nan_inputs(self, model_cls):
        X = np.full((10, 3), np.nan)
        with pytest.raises(ValueError):
            model_cls().fit(X, np.arange(10) % 2)

    def test_hyperparameter_validation(self, model_cls):
        with pytest.raises(ValueError):
            model_cls(learning_rate=0)
        with pytest.raises(ValueError):
            model_cls(epochs=0)
        with pytest.raises(ValueError):
            model_cls(batch_size=0)


class TestLinearSVMSpecifics:
    def test_string_labels_round_trip(self):
        ds = make_classification(
            n_samples=300, n_features=10, n_classes=2, difficulty=0.3, random_state=1
        )
        labels = np.where(ds.y_train == 0, "cat", "dog")
        model = LinearSVM(epochs=6, random_state=0).fit(ds.X_train, labels)
        predictions = model.predict(ds.X_test)
        assert set(predictions) <= {"cat", "dog"}

    def test_decision_function_shape(self):
        ds = make_classification(
            n_samples=200, n_features=8, n_classes=4, difficulty=0.3, random_state=2
        )
        model = LinearSVM(epochs=3, random_state=0).fit(ds.X_train, ds.y_train)
        scores = model.decision_function(ds.X_test[:5])
        assert scores.shape == (5, 4)
