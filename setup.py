"""Setup shim for environments without PEP 517 editable-install support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "A from-scratch Python reproduction of Clipper: A Low-Latency Online "
        "Prediction Serving System (NSDI 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
