#!/usr/bin/env python
"""CI smoke test of the Prometheus metrics exposition endpoint.

Starts the stdlib HTTP server with one no-op application, drives a handful
of predictions through the REST edge so the registries hold live samples,
then fetches ``GET /api/v1/metrics?format=prometheus`` over a raw socket
and checks the
response with the minimal exposition parser/validator in
:mod:`repro.observability.prometheus`:

- the Content-Type is the Prometheus text format (version 0.0.4),
- every sample line parses (names, labels, float values),
- every exposed family has HELP/TYPE lines,
- histogram bucket counts are cumulative and end with ``+Inf == _count``,
- the per-stage tracing histogram and core predict counters are present.

Exits non-zero (with a message) on any failure — wire it as a CI step after
the HTTP smoke::

    PYTHONPATH=src python scripts/metrics_smoke.py
"""

from __future__ import annotations

import asyncio
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.http import create_server  # noqa: E402
from repro.client import AsyncClipperClient  # noqa: E402
from repro.containers.noop import NoOpContainer  # noqa: E402
from repro.core.clipper import Clipper  # noqa: E402
from repro.core.config import (  # noqa: E402
    BatchingConfig,
    ClipperConfig,
    ModelDeployment,
)
from repro.core.frontend import QueryFrontend  # noqa: E402
from repro.observability.prometheus import (  # noqa: E402
    PROMETHEUS_CONTENT_TYPE,
    validate,
)

NUM_FEATURES = 16


async def _raw_get(host: str, port: int, target: str) -> "tuple[int, dict, str]":
    """One HTTP/1.1 GET over a raw socket: (status, headers, body text)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {target} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body.decode("utf-8")


async def main() -> int:
    clipper = Clipper(
        ClipperConfig(
            app_name="smoke",
            latency_slo_ms=500.0,
            selection_policy="single",
            input_type="doubles",
            input_shape=(NUM_FEATURES,),
        )
    )
    clipper.deploy_model(
        ModelDeployment(
            name="noop",
            container_factory=lambda: NoOpContainer(output=1),
            batching=BatchingConfig(policy="fixed", initial_batch_size=4),
        )
    )
    frontend = QueryFrontend()
    frontend.register_application(clipper)
    server = create_server(query=frontend)
    await server.start()
    try:
        async with AsyncClipperClient("127.0.0.1", server.port) as client:
            x = [float(i) for i in range(NUM_FEATURES)]
            for _ in range(5):
                await client.predict("smoke", x)

        status, headers, body = await _raw_get(
            "127.0.0.1", server.port, "/api/v1/metrics?format=prometheus"
        )
        if status != 200:
            raise SystemExit(f"metrics endpoint returned HTTP {status}")
        content_type = headers.get("content-type", "")
        if content_type != PROMETHEUS_CONTENT_TYPE:
            raise SystemExit(
                f"unexpected Content-Type {content_type!r} "
                f"(want {PROMETHEUS_CONTENT_TYPE!r})"
            )
        families = validate(body)
        names = {
            sample["name"]
            for info in families.values()
            for sample in info.get("samples", [])
        }
        for required in (
            "clipper_predict_count_total",
            "clipper_predict_latency_ms_count",
        ):
            if required not in names:
                raise SystemExit(f"required metric {required} missing from exposition")
        num_samples = sum(len(info.get("samples", [])) for info in families.values())
        print(
            f"metrics smoke OK: {len(families)} families, {num_samples} samples, "
            f"{len(body.splitlines())} lines"
        )
    finally:
        await server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(asyncio.run(main()))
