#!/usr/bin/env python
"""Measure serving hot-path throughput/latency and write ``BENCH_hotpath.json``.

Runs the scenarios from :mod:`repro.evaluation.hotpath` (cache-hit,
cache-miss, serialized wide cache-miss — in-process, over loopback TCP and
over the shared-memory ring transport — four-model ensemble, the
``overload`` flash crowd against an admission-controlled application, the
REST edge ``http_predict`` plus its binary columnar twin
``http_predict_binary``, the cluster scaling pair ``cluster_http_1worker`` /
``cluster_http_2workers``, and the telemetry-overhead A/B pair) through a full
:class:`repro.core.clipper.Clipper` instance with no-op containers, and
records p50/p99 latency and QPS per scenario so successive PRs have a perf
trajectory to compare against.

Usage::

    PYTHONPATH=src python scripts/bench_hotpath.py [--quick] [--output PATH]

``--quick`` runs 10× fewer queries per scenario (CI smoke mode).  The JSON
layout is::

    {
      "meta": {"timestamp": ..., "python": ..., "platform": ..., "quick": ...},
      "scenarios": {
        "cache_hit": {"qps": ..., "p50_ms": ..., "p99_ms": ..., ...},
        "cache_miss": {...},
        "cache_miss_wide": {...},
        "cache_miss_tcp": {...},
        "cache_miss_shm": {...},
        "ensemble": {...},
        "overload": {...},
        "http_predict": {...},
        "http_predict_binary": {...},
        "cluster_http_1worker": {...},
        "cluster_http_2workers": {...},
        "telemetry_on": {...},
        "telemetry_off": {...}
      }
    }

Interpretation: ``qps`` is end-to-end queries/second through ``predict``;
``p50_ms``/``p99_ms`` are per-query latencies measured at the caller.  The
cache-hit and ensemble scenarios are the pure-framework numbers a perf PR
must not regress; cache-miss additionally includes batching/RPC costs,
cache-miss-wide adds the binary wire format (columnar batches, zero-copy
decode) to the measured path, and the ``cache_miss_tcp``/``cache_miss_shm``
pair runs that same workload with the replica behind a loopback socket vs
the shared-memory ring (``cache_miss_shm`` is omitted on platforms without
``multiprocessing.shared_memory``).  ``http_predict`` prices the REST edge
(HTTP framing, JSON codec, schema validation) against the in-process
cache_hit, and ``http_predict_binary`` replays it over the binary columnar
content type — the http_predict_binary/http_predict ratio is the measured
payoff of the binary wire format.  The ``cluster_http_1worker`` /
``cluster_http_2workers`` pair runs a device-bound model on worker daemon
child processes behind the cluster ingress tier; the 2-worker/1-worker qps
ratio is the cluster-scaling acceptance number and must exceed 1.5x.
The ``telemetry_on``/``telemetry_off`` pair prices the tracing layer at its
default 1/256 sampling against tracing disabled; the ratio must stay within
a few percent of 1.0.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.evaluation.hotpath import run_all  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="run 10x fewer queries (CI smoke mode)"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_hotpath.json",
        help="where to write the JSON report (default: repo-root/BENCH_hotpath.json)",
    )
    args = parser.parse_args()

    results = run_all(quick=args.quick)

    scenarios = {}
    for result in results:
        lat = result.latency_ms
        scenarios[result.scenario] = {
            "num_queries": result.num_queries,
            "elapsed_s": round(result.elapsed_s, 4),
            "qps": round(result.qps, 1),
            "mean_ms": round(lat["mean"], 4),
            "p50_ms": round(lat["p50"], 4),
            "p95_ms": round(lat["p95"], 4),
            "p99_ms": round(lat["p99"], 4),
            "max_ms": round(lat["max"], 4),
        }
        print(result.describe())

    report = {
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "quick": args.quick,
        },
        "scenarios": scenarios,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
