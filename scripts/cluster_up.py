#!/usr/bin/env python
"""Bring up a local serving cluster: N worker daemons + one ingress.

Spawns the fleet through :class:`repro.cluster.supervisor.Supervisor`,
prints ``CLUSTER_READY <ingress-port>`` once every process is up, then
monitors: workers that die are restarted, and SIGTERM/SIGINT drains the
whole fleet (ingress first, then workers) before exiting.

Usage::

    PYTHONPATH=src python scripts/cluster_up.py --workers 2 \
        [--cluster-dir DIR] [--app NAME] [--factories pkg.module:ATTR]

With no ``--cluster-dir`` a temporary directory is created and removed on
exit.  Clients discover the HTTP port from the ready line or from
``<cluster_dir>/ingress.json``.
"""

from __future__ import annotations

import argparse
import pathlib
import shutil
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster.supervisor import Supervisor  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--cluster-dir", default="", help="shared registry dir (default: a tmp dir)"
    )
    parser.add_argument("--app", default="default-app")
    parser.add_argument(
        "--factories", default="", help="pkg.module:ATTR factory map override"
    )
    parser.add_argument("--no-shm", action="store_true", help="disable the shm lane")
    args = parser.parse_args()

    cluster_dir = args.cluster_dir
    made_tmp = False
    if not cluster_dir:
        cluster_dir = tempfile.mkdtemp(prefix="repro-cluster-")
        made_tmp = True
    supervisor = Supervisor(
        cluster_dir=cluster_dir,
        num_workers=args.workers,
        app_name=args.app,
        factories_spec=args.factories,
        no_shm=args.no_shm,
    )
    try:
        port = supervisor.start()
        print(f"CLUSTER_READY {port}", flush=True)
        print(f"cluster dir: {cluster_dir}", flush=True)
        supervisor.run_forever()
    finally:
        supervisor.shutdown()
        if made_tmp:
            shutil.rmtree(cluster_dir, ignore_errors=True)
    print("CLUSTER_STOPPED", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
