"""Refresh the reference-run tables at the bottom of EXPERIMENTS.md.

Run after ``pytest benchmarks/ --benchmark-only`` to copy the regenerated
tables from ``benchmarks/results/`` into the "Reference-run measurements"
section of EXPERIMENTS.md, replacing whatever was there before.
"""

from __future__ import annotations

import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXPERIMENTS = REPO_ROOT / "EXPERIMENTS.md"
RESULTS = REPO_ROOT / "benchmarks" / "results"
MARKER = "## Reference-run measurements"

#: Order in which the result tables are listed.
RESULT_ORDER = [
    "table1_datasets",
    "fig3_latency_profiles",
    "fig4_batching_strategies",
    "fig5_delayed_batching",
    "fig6_cluster_scaling",
    "table2_deep_models",
    "fig7_cifar_ensemble",
    "fig7_imagenet_ensemble",
    "fig8_model_failure",
    "fig8_ab_testing_baseline",
    "fig9_stragglers",
    "fig10_personalization",
    "fig11_tf_serving",
    "caching_feedback_throughput",
    "ablation_aimd_backoff",
    "ablation_cache",
    "ablation_straggler_deadline",
    "ablation_bandit_policies",
]


def main() -> None:
    text = EXPERIMENTS.read_text()
    marker_index = text.find(MARKER)
    if marker_index == -1:
        raise SystemExit(f"marker '{MARKER}' not found in {EXPERIMENTS}")
    # Keep everything up to and including the marker section's intro paragraph.
    head = text[:marker_index]
    intro = (
        f"{MARKER}\n\n"
        "The tables below are copied verbatim from `benchmarks/results/` after the\n"
        "reference run (see `bench_output.txt` for the full log).\n"
    )
    chunks = []
    for name in RESULT_ORDER:
        path = RESULTS / f"{name}.txt"
        if not path.exists():
            continue
        chunks.append(f"### `{name}`\n\n```\n{path.read_text().rstrip()}\n```\n")
    EXPERIMENTS.write_text(head + intro + "\n" + "\n".join(chunks))
    print(f"refreshed {len(chunks)} result tables in {EXPERIMENTS.name}")


if __name__ == "__main__":
    main()
