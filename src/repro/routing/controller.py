"""Metrics-driven canary promotion and abort.

Starting a canary hands the rollout decision to data: the routing layer
attributes every query's latency and outcome to the arm that served it, and
the :class:`CanaryController` periodically compares the canary arm against
the stable arm.  A canary that matches the stable arm's error rate and tail
latency for enough consecutive checks is *promoted* (it becomes the sole
serving version, the old stable kept for rollback); a canary whose error
rate or p99 degrades beyond the configured deltas is *aborted* (all traffic
snaps back to the stable arm).

The controller is also wired into the health plane: when a
:class:`~repro.management.health.HealthMonitor` is attached, a canary
replica leaving the healthy state (quarantined by probes or by the
dispatcher's passive failure signal) aborts the rollout immediately — a
sick canary should never poison the fleet while the metrics window fills.

The promote/abort actions are pluggable callables so the management
frontend can route them through its registry-recording verbs; standalone
use falls back to the serving engine's own verbs.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, List, Optional

from repro.core.exceptions import RoutingError
from repro.observability.logging import get_logger
from repro.observability.tracing import TRACE_CANARY
from repro.routing.split import TrafficSplit

logger = get_logger("routing.controller")

#: Health state a replica must hold for its arm to be considered sound
#: (mirrors ``repro.management.records.REPLICA_HEALTHY``; the literal avoids
#: a routing → management import cycle).
_REPLICA_HEALTHY = "healthy"

#: Decision verbs recorded in the controller's ledger.
DECISION_PROMOTE = "promote"
DECISION_ABORT = "abort"


@dataclass
class _CanaryWatch:
    """Per-rollout bookkeeping: metric baselines and consecutive clean checks.

    Arm counters are cumulative across rollouts of the same version key, so
    every judgement works on deltas against the values captured when the
    watch began.
    """

    canary_key: str
    stable_key: str
    base_canary_requests: int = 0
    base_canary_errors: int = 0
    base_stable_requests: int = 0
    base_stable_errors: int = 0
    base_quarantines: int = 0
    healthy_checks: int = 0


@dataclass
class CanaryDecision:
    """One promote/abort decision taken by the controller."""

    model_name: str
    action: str
    canary_key: str
    reason: str
    checks: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)


class CanaryController:
    """Watches in-flight canaries and auto-promotes or auto-aborts them.

    Parameters
    ----------
    clipper:
        The serving instance whose routing table is watched.
    health_monitor:
        Optional :class:`~repro.management.health.HealthMonitor`; when given,
        any canary replica leaving the healthy state aborts the rollout.
    check_interval_s:
        Delay between evaluation sweeps of the background loop.
    min_requests:
        Queries the canary arm must serve (since the watch began) before
        metric comparisons count — promotion never outruns the evidence.
    max_error_rate_delta:
        Abort when the canary's error rate exceeds the stable arm's by more
        than this absolute fraction.
    p99_ratio_limit / p99_slack_ms:
        Abort when ``canary_p99 > stable_p99 * ratio + slack`` (the slack
        keeps microsecond-scale baselines from tripping the ratio on noise).
    healthy_checks_to_promote:
        Consecutive clean evaluations (each with fresh traffic) required
        before the canary is promoted.
    promote / abort:
        Optional async callables ``(model_name) -> None`` performing the
        action; default to the serving engine's own verbs.  The management
        frontend injects its registry-recording verbs here.
    """

    def __init__(
        self,
        clipper,
        health_monitor=None,
        check_interval_s: float = 0.05,
        min_requests: int = 50,
        max_error_rate_delta: float = 0.02,
        p99_ratio_limit: float = 3.0,
        p99_slack_ms: float = 5.0,
        healthy_checks_to_promote: int = 3,
        promote: Optional[Callable[[str], Awaitable[None]]] = None,
        abort: Optional[Callable[[str], Awaitable[None]]] = None,
    ) -> None:
        self.clipper = clipper
        self.health_monitor = health_monitor
        self.check_interval_s = check_interval_s
        self.min_requests = min_requests
        self.max_error_rate_delta = max_error_rate_delta
        self.p99_ratio_limit = p99_ratio_limit
        self.p99_slack_ms = p99_slack_ms
        self.healthy_checks_to_promote = healthy_checks_to_promote
        self._promote = promote if promote is not None else self._promote_direct
        self._abort = abort if abort is not None else self._abort_direct

        metrics = clipper.metrics
        self._check_counter = metrics.counter("canary.checks")
        self._promotion_counter = metrics.counter("canary.auto_promotions")
        self._abort_counter = metrics.counter("canary.auto_aborts")

        self._watches: Dict[str, _CanaryWatch] = {}
        self.decisions: List[CanaryDecision] = []
        self._task: Optional[asyncio.Task] = None
        self._running = False

    # -- default actions -------------------------------------------------------

    async def _promote_direct(self, model_name: str) -> None:
        self.clipper.promote(model_name)

    async def _abort_direct(self, model_name: str) -> None:
        self.clipper.abort_canary(model_name)

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Start the evaluation loop as a background task."""
        if self._task is None or self._task.done():
            self._running = True
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Stop the evaluation loop (in-flight canaries keep serving)."""
        self._running = False
        task, self._task = self._task, None
        if task is not None and not task.done():
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    @property
    def is_running(self) -> bool:
        return self._running

    async def _run(self) -> None:
        while self._running:
            try:
                await self.evaluate_once()
            except asyncio.CancelledError:
                raise
            except Exception:
                # The controller must outlive transient races (e.g. a canary
                # promoted by an operator between listing and judging it).
                pass
            await asyncio.sleep(self.check_interval_s)

    # -- evaluation ------------------------------------------------------------

    async def evaluate_once(self) -> List[CanaryDecision]:
        """Judge every in-flight canary once; returns the decisions taken."""
        canaries = self.clipper.routing.canaries()
        # Drop watches whose rollout ended (promoted/aborted/replaced).
        for name in [n for n in self._watches if n not in canaries]:
            del self._watches[name]
        decisions: List[CanaryDecision] = []
        for name, split in canaries.items():
            watch = self._watches.get(name)
            if watch is None or watch.canary_key != split.canary:
                watch = self._begin_watch(split)
                self._watches[name] = watch
                continue  # judge from the next sweep so deltas reflect traffic
            self._check_counter.increment()
            decision = await self._judge(name, split, watch)
            if decision is not None:
                decisions.append(decision)
        return decisions

    def _begin_watch(self, split: TrafficSplit) -> _CanaryWatch:
        canary_arm = self.clipper.routing.arm_metrics(split.canary)
        stable_arm = self.clipper.routing.arm_metrics(split.stable)
        return _CanaryWatch(
            canary_key=split.canary,
            stable_key=split.stable,
            base_canary_requests=canary_arm.requests.value,
            base_canary_errors=canary_arm.errors.value,
            base_stable_requests=stable_arm.requests.value,
            base_stable_errors=stable_arm.errors.value,
            base_quarantines=self._quarantine_count(split.canary),
        )

    async def _judge(
        self, name: str, split: TrafficSplit, watch: _CanaryWatch
    ) -> Optional[CanaryDecision]:
        # Health signal first: a quarantined canary replica ends the rollout
        # immediately, before the metrics window has a chance to fill.
        sick = self._canary_health_violation(watch)
        if sick is not None:
            return await self._act(DECISION_ABORT, name, watch, sick)

        canary_arm = self.clipper.routing.arm_metrics(watch.canary_key)
        stable_arm = self.clipper.routing.arm_metrics(watch.stable_key)
        canary_requests = canary_arm.requests.value - watch.base_canary_requests
        if canary_requests < self.min_requests:
            return None  # not enough evidence yet
        canary_errors = canary_arm.errors.value - watch.base_canary_errors
        canary_error_rate = canary_errors / canary_requests
        stable_requests = stable_arm.requests.value - watch.base_stable_requests
        stable_errors = stable_arm.errors.value - watch.base_stable_errors
        stable_error_rate = stable_errors / stable_requests if stable_requests else 0.0

        if canary_error_rate > stable_error_rate + self.max_error_rate_delta:
            return await self._act(
                DECISION_ABORT,
                name,
                watch,
                "error rate "
                f"{canary_error_rate:.4f} vs stable {stable_error_rate:.4f}",
                canary_error_rate=canary_error_rate,
                stable_error_rate=stable_error_rate,
            )

        canary_p99 = canary_arm.p99()
        stable_p99 = stable_arm.p99()
        if (
            canary_p99 == canary_p99  # not NaN: the arm has latency samples
            and stable_p99 == stable_p99
            and canary_p99 > stable_p99 * self.p99_ratio_limit + self.p99_slack_ms
        ):
            return await self._act(
                DECISION_ABORT,
                name,
                watch,
                f"p99 {canary_p99:.3f} ms vs stable {stable_p99:.3f} ms",
                canary_p99=canary_p99,
                stable_p99=stable_p99,
            )

        watch.healthy_checks += 1
        if watch.healthy_checks >= self.healthy_checks_to_promote:
            return await self._act(
                DECISION_PROMOTE,
                name,
                watch,
                f"{watch.healthy_checks} consecutive healthy checks "
                f"over {canary_requests} canary queries",
                canary_error_rate=canary_error_rate,
                canary_p99=canary_p99,
            )
        # Reset the baselines so the next check requires fresh traffic: a
        # stalled canary must not be promoted on stale evidence.
        watch.base_canary_requests = canary_arm.requests.value
        watch.base_canary_errors = canary_arm.errors.value
        watch.base_stable_requests = stable_arm.requests.value
        watch.base_stable_errors = stable_arm.errors.value
        return None

    def _canary_health_violation(self, watch: _CanaryWatch) -> Optional[str]:
        """A reason string when the canary's replicas look sick, else None."""
        if self.health_monitor is None:
            return None
        for status in self.health_monitor.statuses_for(watch.canary_key):
            if status.state != _REPLICA_HEALTHY:
                return f"replica '{status.replica_name}' is {status.state}"
        if self._quarantine_count(watch.canary_key) > watch.base_quarantines:
            return "canary replica was quarantined during the rollout"
        return None

    def _quarantine_count(self, model_key: str) -> int:
        if self.health_monitor is None:
            return 0
        return self.health_monitor.quarantines_for(model_key)

    async def _act(
        self, action: str, name: str, watch: _CanaryWatch, reason: str, **extra
    ) -> Optional[CanaryDecision]:
        try:
            if action == DECISION_PROMOTE:
                await self._promote(name)
                self._promotion_counter.increment()
            else:
                await self._abort(name)
                self._abort_counter.increment()
        except RoutingError:
            # The rollout ended under us (operator promoted/aborted first).
            self._watches.pop(name, None)
            return None
        self._watches.pop(name, None)
        decision = CanaryDecision(
            model_name=name,
            action=action,
            canary_key=watch.canary_key,
            reason=reason,
            checks=watch.healthy_checks,
            extra=extra,
        )
        # Promote/abort decisions are tail-captured as standalone event
        # traces (a canary abort is exactly the interesting 0.1%), so they
        # are queryable via GET /api/v1/trace/<id> next to request traces.
        tracer = getattr(self.clipper, "tracer", None)
        if tracer is not None:
            trace_id = tracer.capture_event(
                f"canary.{action}",
                meta={
                    "model": name,
                    "canary_key": watch.canary_key,
                    "stable_key": watch.stable_key,
                    "reason": reason,
                    **{k: v for k, v in extra.items() if isinstance(v, (int, float, str))},
                },
                flags=TRACE_CANARY,
                component="routing",
            )
            if trace_id is not None:
                decision.extra["trace_id"] = trace_id
        logger.info(
            "canary %s: %s",
            action,
            name,
            extra={
                "action": action,
                "model": name,
                "canary_key": watch.canary_key,
                "reason": reason,
                "checks": watch.healthy_checks,
                "trace_id": decision.extra.get("trace_id"),
            },
        )
        self.decisions.append(decision)
        return decision
