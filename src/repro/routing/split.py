"""Weighted traffic splits with deterministic, seeded arm assignment.

A :class:`TrafficSplit` describes how one model name's traffic is divided
between deployed versions.  Stable 100/0 serving is just the degenerate
split with a single arm; a canary rollout is a two-arm split whose second
arm carries the canary weight.  Splits are immutable — every routing change
builds a new split and swaps it into the routing table atomically — so a
query either sees the old configuration or the new one, never a half-applied
mix.

Arm assignment is *deterministic and seeded*: the routing key (the query's
user id, or its input hash when anonymous) is hashed together with the
split's seed into a fraction in ``[0, 1)`` and mapped onto the cumulative
arm weights.  A given key therefore always lands on the same arm for a given
split, which keeps per-user behaviour stable during a canary (the same user
is never flapped between versions) and makes rollout experiments
reproducible across processes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.exceptions import RoutingError

#: 53 bits of hash mapped into [0, 1) — the largest fraction a float holds
#: exactly, so the arm boundaries are placed without rounding surprises.
_FRACTION_BITS = 53
_FRACTION_DENOM = float(1 << _FRACTION_BITS)


def assignment_fraction(seed: int, routing_key: str) -> float:
    """Deterministic hash of ``(seed, routing_key)`` into ``[0, 1)``.

    SHA-1 keeps the assignment stable across processes and Python builds
    (``hash()`` is salted per process); the seed lets two independent splits
    partition the same key population differently.
    """
    digest = hashlib.sha1(f"{seed}:{routing_key}".encode()).digest()
    return (int.from_bytes(digest[:8], "big") >> (64 - _FRACTION_BITS)) / _FRACTION_DENOM


@dataclass(frozen=True)
class TrafficSplit:
    """Immutable weighted assignment of one model name's traffic to versions.

    Parameters
    ----------
    arms:
        ``(model_key, weight)`` pairs in priority order; weights are
        normalized fractions summing to 1.0.  Build instances through
        :meth:`single` / :meth:`canary_split` rather than directly.
    stable:
        The stable (baseline) arm's model key — the version an abort
        restores and the version ``active_version`` reports.
    canary:
        The canary arm's model key while a rollout is in flight, else None.
    seed:
        Seed mixed into the assignment hash.
    """

    arms: Tuple[Tuple[str, float], ...]
    stable: str
    canary: Optional[str] = None
    seed: int = 0

    # -- constructors ----------------------------------------------------------

    @classmethod
    def single(cls, model_key: str, seed: int = 0) -> "TrafficSplit":
        """The degenerate split: every query routes to ``model_key``."""
        return cls(arms=((model_key, 1.0),), stable=model_key, seed=seed)

    @classmethod
    def canary_split(
        cls, stable_key: str, canary_key: str, weight: float, seed: int = 0
    ) -> "TrafficSplit":
        """A two-arm split sending ``weight`` of traffic to the canary."""
        if stable_key == canary_key:
            raise RoutingError(
                f"canary arm '{canary_key}' cannot equal the stable arm"
            )
        _validate_weight(weight)
        return cls(
            arms=((stable_key, 1.0 - weight), (canary_key, weight)),
            stable=stable_key,
            canary=canary_key,
            seed=seed,
        )

    def with_weight(self, weight: float) -> "TrafficSplit":
        """A copy of an in-flight canary split with an adjusted weight."""
        if self.canary is None:
            raise RoutingError("cannot adjust weight: no canary is in flight")
        return TrafficSplit.canary_split(self.stable, self.canary, weight, self.seed)

    # -- assignment ------------------------------------------------------------

    def arm_for(self, routing_key: str) -> str:
        """The model key serving ``routing_key`` — deterministic per split."""
        arms = self.arms
        if len(arms) == 1:
            return arms[0][0]
        fraction = assignment_fraction(self.seed, routing_key)
        cumulative = 0.0
        for model_key, weight in arms:
            cumulative += weight
            if fraction < cumulative:
                return model_key
        return arms[-1][0]  # guard against float accumulation at the boundary

    # -- introspection ---------------------------------------------------------

    @property
    def is_degenerate(self) -> bool:
        """True when a single arm receives all traffic (no split in flight)."""
        return len(self.arms) == 1 or any(w >= 1.0 for _, w in self.arms)

    @property
    def canary_weight(self) -> float:
        """The fraction of traffic on the canary arm (0.0 without a canary)."""
        return self.weight_of(self.canary) if self.canary is not None else 0.0

    def keys(self) -> Tuple[str, ...]:
        """Every arm's model key, stable arm first."""
        return tuple(key for key, _ in self.arms)

    def weight_of(self, model_key: str) -> float:
        """The traffic fraction on one arm (0.0 for keys not in the split)."""
        for key, weight in self.arms:
            if key == model_key:
                return weight
        return 0.0

    # -- persistence -----------------------------------------------------------

    def to_record(self) -> Dict[str, Any]:
        """JSON-friendly record for the model registry."""
        return {
            "arms": [[key, weight] for key, weight in self.arms],
            "stable": self.stable,
            "canary": self.canary,
            "seed": self.seed,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "TrafficSplit":
        """Rebuild a split from its registry record."""
        return cls(
            arms=tuple((str(key), float(weight)) for key, weight in record["arms"]),
            stable=str(record["stable"]),
            canary=record.get("canary"),
            seed=int(record.get("seed", 0)),
        )


def _validate_weight(weight: float) -> None:
    if not 0.0 < weight <= 1.0:
        raise RoutingError(
            f"canary weight must be in (0, 1], got {weight!r}"
        )
