"""The routing layer: traffic splits, version resolution, canary rollouts.

This package owns every decision about *which deployed version serves a
query* — the traffic-shifting half of the paper's model-selection layer,
extracted from the serving engine so rollout policy can evolve without
touching the predict hot path:

* :class:`~repro.routing.split.TrafficSplit` — an immutable weighted set of
  version arms for one model name, with deterministic, seeded, hash-based
  assignment (a given routing key always lands on the same arm).
* :class:`~repro.routing.table.RoutingTable` — the name → split mapping plus
  rollback pointers, held in immutable snapshots swapped atomically; also
  the owner of serving-set selection namespaces and per-arm metric handles.
* :class:`~repro.routing.controller.CanaryController` — watches per-arm
  error-rate/p99 deltas and the health monitor's quarantine signal to
  auto-promote or auto-abort in-flight canaries.
"""

from repro.routing.controller import CanaryController, CanaryDecision
from repro.routing.split import TrafficSplit, assignment_fraction
from repro.routing.table import (
    ARM_METRIC_PREFIX,
    SELECTION_NAMESPACE_PREFIX,
    RoutePlan,
    RoutingTable,
    parse_namespace_keys,
    selection_namespace,
)

__all__ = [
    "TrafficSplit",
    "RoutingTable",
    "RoutePlan",
    "CanaryController",
    "CanaryDecision",
    "assignment_fraction",
    "selection_namespace",
    "parse_namespace_keys",
    "SELECTION_NAMESPACE_PREFIX",
    "ARM_METRIC_PREFIX",
]
