"""The routing table: which deployed version serves each query.

This is the model-selection layer's traffic-shifting half, extracted from
the serving engine so rollout policy can grow independently of the predict
hot path.  A :class:`RoutingTable` maps each model *name* to a
:class:`~repro.routing.split.TrafficSplit` over deployed *versions*, plus
the previously-active version kept for rollback.  The table state lives in
an immutable snapshot swapped atomically on every routing change — readers
(the predict path, the feedback path, the health monitor) always observe a
complete, consistent configuration, the same checked-transition discipline
the registry applies to its durable records.

Per query, the table resolves a :class:`RoutePlan`: the concrete model key
combination serving that query's routing key, the selection-state namespace
owned by that combination, and — while a canary is in flight — the
pre-resolved :class:`~repro.core.metrics.ArmMetrics` handles the engine uses
to attribute the query's latency/error to its arm.  Plans are cached per
snapshot, so the common no-canary case costs one attribute read and one
dict hit on the hot path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.exceptions import DeploymentError, RoutingError
from repro.core.metrics import ArmMetrics, MetricsRegistry
from repro.core.types import ModelId
from repro.routing.split import TrafficSplit

#: Selection-state namespaces are derived from the table's scope (the
#: application name) and the serving-set combination, so each combination of
#: serving versions keeps its own policy state — and two applications
#: sharing one state store can never touch each other's namespaces, even
#: when they reuse bare model names.
SELECTION_NAMESPACE_PREFIX = "selection-state@"

#: Metric-name prefix for per-arm traffic attribution.
ARM_METRIC_PREFIX = "routing.arm"


def selection_namespace(scope: str, serving_keys: Iterable[str]) -> str:
    """The selection-state namespace owned by one serving-set combination."""
    return f"{SELECTION_NAMESPACE_PREFIX}{scope}@" + "|".join(serving_keys)


def parse_namespace_keys(namespace: str, scope: str) -> Optional[List[str]]:
    """The model keys referenced by one of ``scope``'s selection namespaces.

    Returns None for namespaces outside the prefix *or belonging to another
    scope* — the pruning path must never touch a sibling application's
    state in a shared store.
    """
    prefix = f"{SELECTION_NAMESPACE_PREFIX}{scope}@"
    if not namespace.startswith(prefix):
        return None
    body = namespace[len(prefix):]
    return body.split("|") if body else []


class RoutePlan:
    """One resolved arm combination for a single query.

    ``serving_keys`` holds the model key chosen for each routed name, in
    activation order; ``namespace`` is the selection-state namespace of this
    combination; ``tracked_arms`` carries ``(model_key, ArmMetrics)`` pairs
    for the arms of in-flight splits only, so attribution is free when no
    canary is running.
    """

    __slots__ = ("serving_keys", "namespace", "tracked_arms")

    def __init__(
        self,
        serving_keys: List[str],
        namespace: str,
        tracked_arms: Tuple[Tuple[str, ArmMetrics], ...] = (),
    ) -> None:
        self.serving_keys = serving_keys
        self.namespace = namespace
        self.tracked_arms = tracked_arms


class _Snapshot:
    """Immutable routing state: splits + rollback pointers + plan cache.

    The plan cache is keyed by the chosen-arm combination; it only ever
    grows (bounded by the product of arm counts, i.e. tiny) and lives on the
    snapshot so a table swap naturally invalidates it.
    """

    __slots__ = ("splits", "previous", "has_splits", "plans", "default_plan")

    def __init__(
        self, splits: Dict[str, TrafficSplit], previous: Dict[str, str]
    ) -> None:
        self.splits = splits
        self.previous = previous
        self.has_splits = any(len(s.arms) > 1 for s in splits.values())
        self.plans: Dict[Tuple[str, ...], RoutePlan] = {}
        self.default_plan: Optional[RoutePlan] = None


class RoutingTable:
    """Maps model names to traffic splits; every change is an atomic swap.

    ``scope`` (normally the application name) namespaces the selection state
    the table owns, isolating instances that share one state store.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        seed: int = 0,
        scope: str = "",
    ) -> None:
        self.metrics = metrics or MetricsRegistry()
        self.seed = seed
        self.scope = scope
        self._snapshot = _Snapshot({}, {})
        self._arm_metrics: Dict[str, ArmMetrics] = {}

    # -- resolution (the hot path) ---------------------------------------------

    def plan_for(self, routing_key: str) -> RoutePlan:
        """The arm combination serving ``routing_key`` under the current table."""
        snapshot = self._snapshot
        if not snapshot.has_splits:
            return self._default_plan(snapshot)
        choices = tuple(
            split.arms[0][0] if len(split.arms) == 1 else split.arm_for(routing_key)
            for split in snapshot.splits.values()
        )
        plan = snapshot.plans.get(choices)
        if plan is None:
            tracked = tuple(
                (choice, self.arm_metrics(choice))
                for choice, split in zip(choices, snapshot.splits.values())
                if len(split.arms) > 1
            )
            plan = RoutePlan(
                list(choices), selection_namespace(self.scope, choices), tracked
            )
            snapshot.plans[choices] = plan
        return plan

    def default_plan(self) -> RoutePlan:
        """The all-stable-arms plan (what serves when no canary is in flight)."""
        return self._default_plan(self._snapshot)

    def _default_plan(self, snapshot: _Snapshot) -> RoutePlan:
        plan = snapshot.default_plan
        if plan is None:
            keys = [split.stable for split in snapshot.splits.values()]
            plan = RoutePlan(keys, selection_namespace(self.scope, keys))
            snapshot.default_plan = plan
        return plan

    def resolve_key(self, model: str, deployed_keys: Iterable[str]) -> str:
        """Map a ``"name:version"`` key or bare name to a deployed key."""
        keys = set(deployed_keys)
        if model in keys:
            return model
        split = self._snapshot.splits.get(model)
        if split is not None:
            return split.stable
        matches = [key for key in keys if ModelId.parse(key).name == model]
        if len(matches) == 1:
            return matches[0]
        if matches:
            raise DeploymentError(
                f"model name '{model}' is ambiguous between versions {sorted(matches)}"
            )
        raise DeploymentError(f"model '{model}' is not deployed")

    # -- introspection ---------------------------------------------------------

    def names(self) -> List[str]:
        """Model names currently routed, in activation order."""
        return list(self._snapshot.splits)

    def serving_keys(self) -> List[str]:
        """Every model key receiving traffic (all arms of every split)."""
        keys: List[str] = []
        for split in self._snapshot.splits.values():
            keys.extend(split.keys())
        return keys

    def split_for(self, name: str) -> Optional[TrafficSplit]:
        """The split routing one model name (None when not routed)."""
        return self._snapshot.splits.get(name)

    def active_key(self, name: str) -> Optional[str]:
        """The stable serving key of one model name (None when not routed)."""
        split = self._snapshot.splits.get(name)
        return split.stable if split is not None else None

    def canary_key(self, name: str) -> Optional[str]:
        """The in-flight canary key of one model name, if any."""
        split = self._snapshot.splits.get(name)
        return split.canary if split is not None else None

    def previous_key(self, name: str) -> Optional[str]:
        """The previously-active key kept for rollback, if any."""
        return self._snapshot.previous.get(name)

    def canaries(self) -> Dict[str, TrafficSplit]:
        """Every in-flight (multi-arm) split, keyed by model name."""
        return {
            name: split
            for name, split in self._snapshot.splits.items()
            if split.canary is not None
        }

    def reachable_keys(self) -> set:
        """Model keys the table can still route to: arms + rollback targets."""
        snapshot = self._snapshot
        keys = {key for split in snapshot.splits.values() for key in split.keys()}
        keys.update(snapshot.previous.values())
        return keys

    def arm_metrics(self, model_key: str) -> ArmMetrics:
        """The (cached) per-arm attribution handles for one model key."""
        arm = self._arm_metrics.get(model_key)
        if arm is None:
            arm = self.metrics.arm(f"{ARM_METRIC_PREFIX}.{model_key}")
            self._arm_metrics[model_key] = arm
        return arm

    def describe(self) -> Dict[str, Dict]:
        """JSON-friendly snapshot of the table for operators."""
        snapshot = self._snapshot
        return {
            name: {
                "arms": [[key, weight] for key, weight in split.arms],
                "stable": split.stable,
                "canary": split.canary,
                "previous": snapshot.previous.get(name),
            }
            for name, split in snapshot.splits.items()
        }

    # -- mutation (each builds a new snapshot and swaps it in) -----------------

    def _swap(self, splits: Dict[str, TrafficSplit], previous: Dict[str, str]) -> None:
        # A single attribute assignment: readers racing this swap see either
        # the complete old snapshot or the complete new one.
        self._snapshot = _Snapshot(splits, previous)

    def activate(self, name: str, model_key: str) -> None:
        """Make ``model_key`` the sole serving version of ``name``.

        The previously-stable key (if any, and if different) becomes the
        rollback target.  An in-flight canary for the name is discarded.
        """
        snapshot = self._snapshot
        splits = dict(snapshot.splits)
        previous = dict(snapshot.previous)
        current = splits.get(name)
        if current is not None and current.stable != model_key:
            previous[name] = current.stable
        splits[name] = TrafficSplit.single(model_key, seed=self.seed)
        self._swap(splits, previous)

    def forget(self, name: str) -> None:
        """Stop routing ``name`` entirely (its versions were undeployed)."""
        snapshot = self._snapshot
        splits = dict(snapshot.splits)
        previous = dict(snapshot.previous)
        splits.pop(name, None)
        previous.pop(name, None)
        self._swap(splits, previous)

    def drop_previous(self, name: str) -> None:
        """Forget the rollback target of ``name`` (it was undeployed)."""
        snapshot = self._snapshot
        previous = dict(snapshot.previous)
        if previous.pop(name, None) is not None:
            self._swap(dict(snapshot.splits), previous)

    def start_canary(self, name: str, canary_key: str, weight: float) -> TrafficSplit:
        """Begin shifting ``weight`` of ``name``'s traffic onto ``canary_key``."""
        snapshot = self._snapshot
        current = snapshot.splits.get(name)
        if current is None:
            raise RoutingError(
                f"cannot start a canary for '{name}': no version is serving"
            )
        if current.canary is not None:
            raise RoutingError(
                f"a canary ('{current.canary}') is already in flight for '{name}'"
            )
        split = TrafficSplit.canary_split(
            current.stable, canary_key, weight, seed=self.seed
        )
        splits = dict(snapshot.splits)
        splits[name] = split
        self._swap(splits, dict(snapshot.previous))
        return split

    def adjust_canary(self, name: str, weight: float) -> TrafficSplit:
        """Change the traffic weight of an in-flight canary."""
        snapshot = self._snapshot
        current = snapshot.splits.get(name)
        if current is None or current.canary is None:
            raise RoutingError(f"no canary is in flight for '{name}'")
        split = current.with_weight(weight)
        splits = dict(snapshot.splits)
        splits[name] = split
        self._swap(splits, dict(snapshot.previous))
        return split

    def promote(self, name: str) -> str:
        """Make the in-flight canary the sole serving version; returns its key.

        The displaced stable key becomes the rollback target.
        """
        snapshot = self._snapshot
        current = snapshot.splits.get(name)
        if current is None or current.canary is None:
            raise RoutingError(f"no canary is in flight for '{name}' to promote")
        splits = dict(snapshot.splits)
        previous = dict(snapshot.previous)
        previous[name] = current.stable
        splits[name] = TrafficSplit.single(current.canary, seed=self.seed)
        self._swap(splits, previous)
        return current.canary

    def abort(self, name: str) -> str:
        """Discard the in-flight canary; returns the aborted canary key.

        All traffic returns to the stable arm; the rollback target is
        untouched.
        """
        snapshot = self._snapshot
        current = snapshot.splits.get(name)
        if current is None or current.canary is None:
            raise RoutingError(f"no canary is in flight for '{name}' to abort")
        splits = dict(snapshot.splits)
        splits[name] = TrafficSplit.single(current.stable, seed=self.seed)
        self._swap(splits, dict(snapshot.previous))
        return current.canary

    def restore(
        self, name: str, split: Optional[TrafficSplit], previous_key: Optional[str]
    ) -> None:
        """Reinstall a previously-observed split and rollback pointer for ``name``.

        The management plane's unwind path: when a live routing change
        succeeds but its durable registry write is refused, the exact
        pre-change configuration (captured via :meth:`split_for` /
        :meth:`previous_key`) is swapped back in so traffic matches the
        durable record again.  ``split=None`` removes the name's routing.
        """
        snapshot = self._snapshot
        splits = dict(snapshot.splits)
        previous = dict(snapshot.previous)
        if split is None:
            splits.pop(name, None)
        else:
            splits[name] = split
        if previous_key is None:
            previous.pop(name, None)
        else:
            previous[name] = previous_key
        self._swap(splits, previous)

    def rollback(self, name: str) -> str:
        """Swap ``name`` back to its previously-active key; returns that key.

        The displaced stable key becomes the new rollback target, so a
        second rollback undoes the first.  An in-flight canary must be
        aborted first (the serving engine's rollback verb does this).
        """
        snapshot = self._snapshot
        previous_key = snapshot.previous.get(name)
        if previous_key is None:
            raise RoutingError(f"no previous version of '{name}' to roll back to")
        current = snapshot.splits.get(name)
        splits = dict(snapshot.splits)
        previous = dict(snapshot.previous)
        splits[name] = TrafficSplit.single(previous_key, seed=self.seed)
        if current is not None:
            previous[name] = current.stable
        else:
            del previous[name]
        self._swap(splits, previous)
        return previous_key
