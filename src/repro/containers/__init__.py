"""Model containers (paper §4.4): the narrow-waist batch prediction interface."""

from repro.containers.base import ModelContainer, FunctionContainer
from repro.containers.busy import BusySpinContainer, DeviceBoundContainer
from repro.containers.chaos import KillableContainer, TrackingFactory
from repro.containers.noop import NoOpContainer
from repro.containers.adapters import ClassifierContainer, HMMContainer
from repro.containers.overhead import (
    LanguageOverheadContainer,
    SimulatedLatencyContainer,
)
from repro.containers.replica import ContainerReplica, ReplicaSet

__all__ = [
    "ModelContainer",
    "FunctionContainer",
    "BusySpinContainer",
    "DeviceBoundContainer",
    "KillableContainer",
    "TrackingFactory",
    "NoOpContainer",
    "ClassifierContainer",
    "HMMContainer",
    "LanguageOverheadContainer",
    "SimulatedLatencyContainer",
    "ContainerReplica",
    "ReplicaSet",
]
