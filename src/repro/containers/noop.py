"""The no-op container used to measure pure system overhead (Figure 3d).

The paper deploys a container that does no model computation at all so that
the measured latency isolates RPC, serialization and queueing overhead.  The
reproduction's no-op container simply echoes a constant output per input,
with an optional tiny per-item cost to emulate input touching.
"""

from __future__ import annotations

from typing import Any, List, Sequence

import numpy as np

from repro.containers.base import ModelContainer


class NoOpContainer(ModelContainer):
    """Returns a constant prediction for every input without model evaluation."""

    framework = "noop"

    def __init__(self, output: Any = 0, touch_inputs: bool = False) -> None:
        self.output = output
        self.touch_inputs = touch_inputs
        self.batches_served = 0

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        if self.touch_inputs:
            # Touch each input once (a single reduction) to emulate the cost
            # of reading the deserialized payload without any model math.
            for x in inputs:
                if isinstance(x, np.ndarray):
                    float(x.ravel()[:1].sum()) if x.size else 0.0
        self.batches_served += 1
        return [self.output] * len(inputs)
