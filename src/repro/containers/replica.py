"""Container replicas and replica sets.

Each deployed model can be replicated (paper §4.4.1); every replica gets its
own RPC connection and — in the batching layer — its own adaptive batching
queue, because "different replicas can have different performance
characteristics".  A :class:`ContainerReplica` bundles one container
instance with its RPC server/client pair; a :class:`ReplicaSet` owns all
replicas of one model.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, List, Optional, Sequence

from repro.containers.base import ModelContainer
from repro.core.exceptions import ContainerError, RpcError
from repro.core.types import ModelId
from repro.rpc.client import RpcClient
from repro.rpc.protocol import RpcResponse
from repro.rpc.server import ContainerRpcServer
from repro.rpc.transport import InProcessTransport


class ContainerReplica:
    """One running replica: container + RPC server + RPC client.

    Parameters
    ----------
    model_id:
        The deployed model this replica serves.
    replica_id:
        Index of the replica within its replica set.
    container:
        The model container instance owned exclusively by this replica.
    use_executor:
        Run container evaluation in the default thread-pool executor so
        CPU-heavy batches overlap with the event loop (the analogue of the
        paper's per-container worker threads).
    serialize_messages:
        Whether the in-process RPC round-trips through the binary serializer
        (True charges realistic serialization overhead).
    """

    def __init__(
        self,
        model_id: ModelId,
        replica_id: int,
        container: ModelContainer,
        use_executor: bool = True,
        serialize_messages: bool = True,
        rpc_timeout_s: Optional[float] = 30.0,
    ) -> None:
        self.model_id = model_id
        self.replica_id = replica_id
        self.container = container
        self._transport = InProcessTransport(serialize_messages=serialize_messages)
        self._server = ContainerRpcServer(
            container, self._transport.server_side, use_executor=use_executor
        )
        self.client = RpcClient(self._transport.client_side, timeout_s=rpc_timeout_s)
        self._started = False

    async def start(self) -> None:
        """Start the container-side RPC serving loop."""
        if not self._started:
            self._server.start()
            self._started = True

    async def stop(self) -> None:
        """Stop the RPC server and close the client transport."""
        if self._started:
            await self.client.close()
            await self._server.stop()
            self._started = False

    async def predict_batch(self, inputs: Sequence[Any]) -> RpcResponse:
        """Evaluate one batch on this replica via RPC."""
        if not self._started:
            raise ContainerError(str(self.model_id), "replica is not started")
        response = await self.client.predict(str(self.model_id), list(inputs))
        return response

    @property
    def name(self) -> str:
        return f"{self.model_id}[{self.replica_id}]"


class ReplicaSet:
    """All replicas of one deployed model."""

    def __init__(
        self,
        model_id: ModelId,
        container_factory: Callable[[], ModelContainer],
        num_replicas: int = 1,
        use_executor: bool = True,
        serialize_messages: bool = True,
    ) -> None:
        if num_replicas < 1:
            raise ContainerError(str(model_id), "num_replicas must be >= 1")
        self.model_id = model_id
        self.replicas: List[ContainerReplica] = []
        for replica_id in range(num_replicas):
            container = container_factory()
            if not isinstance(container, ModelContainer):
                raise ContainerError(
                    str(model_id),
                    f"container factory returned {type(container).__name__}, "
                    "expected a ModelContainer",
                )
            self.replicas.append(
                ContainerReplica(
                    model_id=model_id,
                    replica_id=replica_id,
                    container=container,
                    use_executor=use_executor,
                    serialize_messages=serialize_messages,
                )
            )

    async def start(self) -> None:
        for replica in self.replicas:
            await replica.start()

    async def stop(self) -> None:
        for replica in self.replicas:
            await replica.stop()

    def __len__(self) -> int:
        return len(self.replicas)

    def __iter__(self):
        return iter(self.replicas)
