"""Container replicas and replica sets.

Each deployed model can be replicated (paper §4.4.1); every replica gets its
own RPC connection and — in the batching layer — its own adaptive batching
queue, because "different replicas can have different performance
characteristics".  A :class:`ContainerReplica` bundles one container
instance with its RPC server/client pair; a :class:`ReplicaSet` owns all
replicas of one model.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, List, Optional, Sequence

from repro.containers.base import ModelContainer
from repro.core.exceptions import ContainerError, RpcError
from repro.core.types import ModelId
from repro.rpc.client import RpcClient
from repro.rpc.protocol import RpcResponse
from repro.rpc.server import ContainerRpcServer
from repro.rpc.shm import HAS_SHARED_MEMORY, ShmRingPair
from repro.rpc.transport import InProcessTransport, TcpListener, TcpTransport

#: RPC lanes a replica can run on (see :class:`repro.core.config.ModelDeployment`).
TRANSPORT_KINDS = ("inprocess", "shm", "tcp")


class ContainerReplica:
    """One running replica: container + RPC server + RPC client.

    Parameters
    ----------
    model_id:
        The deployed model this replica serves.
    replica_id:
        Index of the replica within its replica set.
    container:
        The model container instance owned exclusively by this replica.
    use_executor:
        Run container evaluation in the default thread-pool executor so
        CPU-heavy batches overlap with the event loop (the analogue of the
        paper's per-container worker threads).
    serialize_messages:
        Whether the in-process RPC round-trips through the binary serializer
        (True charges realistic serialization overhead).  Ignored by the shm
        and tcp lanes, which always serialize.
    transport:
        RPC lane for this replica: ``"inprocess"`` (asyncio queues, the
        default), ``"shm"`` (same-host shared-memory rings) or ``"tcp"``
        (loopback sockets, connected lazily in :meth:`start`).
    """

    def __init__(
        self,
        model_id: ModelId,
        replica_id: int,
        container: ModelContainer,
        use_executor: bool = True,
        serialize_messages: bool = True,
        rpc_timeout_s: Optional[float] = 30.0,
        transport: str = "inprocess",
    ) -> None:
        if transport not in TRANSPORT_KINDS:
            raise ContainerError(
                str(model_id),
                f"unknown transport '{transport}', expected one of {TRANSPORT_KINDS}",
            )
        self.model_id = model_id
        self.replica_id = replica_id
        self.container = container
        # The wire model name is rendered once: replicas send it with every
        # batch and str(ModelId) is measurable at high batch rates.
        self._model_key = str(model_id)
        self._transport_kind = transport
        self._use_executor = use_executor
        self._rpc_timeout_s = rpc_timeout_s
        self._server: Optional[ContainerRpcServer] = None
        self.client: Optional[RpcClient] = None
        if transport == "inprocess":
            pair = InProcessTransport(serialize_messages=serialize_messages)
        elif transport == "shm":
            if not HAS_SHARED_MEMORY:
                raise ContainerError(
                    self._model_key,
                    "transport 'shm' requires multiprocessing.shared_memory, "
                    "which is unavailable on this platform",
                )
            pair = ShmRingPair()
        else:
            # The tcp lane needs a running event loop to bind and connect;
            # the endpoints are built in start().
            pair = None
        if pair is not None:
            self._server = ContainerRpcServer(
                container, pair.server_side, use_executor=use_executor
            )
            self.client = RpcClient(pair.client_side, timeout_s=rpc_timeout_s)
        self._started = False

    async def _connect_tcp(self) -> None:
        """Bind a loopback listener, cross-connect, and build server+client."""
        listener = TcpListener()
        await listener.start()
        try:
            client_transport, server_transport = await asyncio.gather(
                TcpTransport.connect(listener.host, listener.port),
                listener.accept(),
            )
        finally:
            await listener.close()
        self._server = ContainerRpcServer(
            self.container, server_transport, use_executor=self._use_executor
        )
        self.client = RpcClient(client_transport, timeout_s=self._rpc_timeout_s)

    async def start(self) -> None:
        """Start the container-side RPC serving loop."""
        if not self._started:
            if self._server is None:
                await self._connect_tcp()
            self._server.start()
            self._started = True

    async def stop(self) -> None:
        """Stop the RPC server and close the client transport."""
        if self._started:
            await self.client.close()
            await self._server.stop()
            self._started = False

    async def predict_batch(
        self,
        inputs: Sequence[Any],
        trace: Optional[List[Any]] = None,
        span_log: Optional[list] = None,
        deadlines: Optional[List[float]] = None,
    ) -> RpcResponse:
        """Evaluate one batch on this replica via RPC.

        Safe to call with batches already in flight: the RPC client
        pipelines requests and demultiplexes responses by request id, which
        is what lets the dispatcher overlap encoding the next batch with the
        container's evaluation of the current one.

        ``trace``/``span_log`` propagate the tracing layer's batch trace ids
        and span sink through the RPC client (see :meth:`RpcClient.predict`);
        ``deadlines`` carries per-entry absolute monotonic deadlines the
        container may use to skip already-expired entries.  All default to
        off and cost nothing when unused.
        """
        if not self._started:
            raise ContainerError(self._model_key, "replica is not started")
        inputs = inputs if isinstance(inputs, list) else list(inputs)
        return await self.client.predict(
            self._model_key, inputs, trace=trace, span_log=span_log,
            deadlines=deadlines,
        )

    async def check_health(self, timeout_s: Optional[float] = None) -> bool:
        """Probe the replica over RPC; True only for a healthy response.

        A replica that is not started, does not answer within ``timeout_s``,
        or whose container reports itself unhealthy all probe False.
        """
        if not self._started:
            return False
        try:
            return await self.client.heartbeat(timeout_s=timeout_s)
        except RpcError:
            return False

    @property
    def started(self) -> bool:
        return self._started

    @property
    def name(self) -> str:
        return f"{self.model_id}[{self.replica_id}]"


class ReplicaSet:
    """All replicas of one deployed model.

    Membership is dynamic: the management plane adds and removes replicas on
    a live set (`add_replica` / `remove_replica`) for runtime scaling, and
    replaces a sick replica in place (`replace_replica`) when health-driven
    recovery restarts it with a fresh container from the stored factory.
    """

    def __init__(
        self,
        model_id: ModelId,
        container_factory: Callable[[], ModelContainer],
        num_replicas: int = 1,
        use_executor: bool = True,
        serialize_messages: bool = True,
        transport: str = "inprocess",
    ) -> None:
        if num_replicas < 1:
            raise ContainerError(str(model_id), "num_replicas must be >= 1")
        self.model_id = model_id
        self._container_factory = container_factory
        self._use_executor = use_executor
        self._serialize_messages = serialize_messages
        self._transport = transport
        self._next_replica_id = 0
        self.replicas: List[ContainerReplica] = []
        for _ in range(num_replicas):
            self.add_replica()

    def _build_replica(self, replica_id: int) -> ContainerReplica:
        container = self._container_factory()
        if not isinstance(container, ModelContainer):
            raise ContainerError(
                str(self.model_id),
                f"container factory returned {type(container).__name__}, "
                "expected a ModelContainer",
            )
        return ContainerReplica(
            model_id=self.model_id,
            replica_id=replica_id,
            container=container,
            use_executor=self._use_executor,
            serialize_messages=self._serialize_messages,
            transport=self._transport,
        )

    def add_replica(self) -> ContainerReplica:
        """Create (but do not start) one more replica and return it.

        Replica ids increase monotonically across the set's lifetime so a
        restarted or newly added replica is never confused with a removed
        one in metrics or health records.
        """
        replica = self._build_replica(self._next_replica_id)
        self._next_replica_id += 1
        self.replicas.append(replica)
        return replica

    def remove_replica(self, replica: ContainerReplica) -> None:
        """Remove a replica from the set (the caller stops it)."""
        if len(self.replicas) <= 1:
            raise ContainerError(str(self.model_id), "cannot remove the last replica")
        try:
            self.replicas.remove(replica)
        except ValueError:
            raise ContainerError(
                str(self.model_id), f"{replica.name} is not a member of this replica set"
            ) from None

    async def replace_replica(self, replica: ContainerReplica) -> ContainerReplica:
        """Swap a (presumed sick) replica for a fresh one with the same id.

        The old replica is stopped and a new container is built from the
        stored factory.  The replacement is returned unstarted so the caller
        can start and health-check it before routing traffic to it.
        """
        try:
            index = self.replicas.index(replica)
        except ValueError:
            raise ContainerError(
                str(self.model_id), f"{replica.name} is not a member of this replica set"
            ) from None
        fresh = self._build_replica(replica.replica_id)
        await replica.stop()
        self.replicas[index] = fresh
        return fresh

    async def start(self) -> None:
        for replica in self.replicas:
            await replica.start()

    async def stop(self) -> None:
        for replica in self.replicas:
            await replica.stop()

    def __len__(self) -> int:
        return len(self.replicas)

    def __iter__(self):
        return iter(self.replicas)
