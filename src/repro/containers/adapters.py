"""Containers adapting mlkit estimators to the batch prediction interface.

These are the equivalents of the paper's per-framework container bindings
(Scikit-Learn, Spark, Caffe, TensorFlow, HTK) — each adapter is a few lines
that stack the batch of inputs and calls the estimator's vectorised
prediction, exactly the shape of the paper's <25-line framework bindings.
"""

from __future__ import annotations

from typing import Any, List, Sequence

import numpy as np

from repro.containers.base import ModelContainer


class ClassifierContainer(ModelContainer):
    """Serves any mlkit classifier with a ``predict``/``predict_proba`` API.

    Parameters
    ----------
    model:
        A fitted classifier.
    return_proba:
        When true, each output is the class-probability vector; otherwise
        the predicted label (the common case for ensembles keyed on labels).
    framework:
        Reporting label, e.g. ``"sklearn"`` or ``"pyspark"``; the adapter
        behaviour is identical, matching the paper's observation that the
        same narrow interface covers every framework.
    """

    def __init__(
        self,
        model,
        return_proba: bool = False,
        framework: str = "mlkit",
    ) -> None:
        if not hasattr(model, "predict"):
            raise TypeError("model must expose a predict() method")
        self.model = model
        self.return_proba = return_proba
        self.framework = framework

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        if len(inputs) == 0:
            return []
        X = np.vstack([np.asarray(x, dtype=np.float64).reshape(1, -1) for x in inputs])
        if self.return_proba:
            proba = self.model.predict_proba(X)
            return [proba[i] for i in range(proba.shape[0])]
        labels = self.model.predict(X)
        return [_to_scalar(labels[i]) for i in range(len(inputs))]


class HMMContainer(ModelContainer):
    """Serves an :class:`~repro.mlkit.hmm.HMMPhonemeClassifier` on utterances.

    Inputs are variable-length frame matrices (T × n_features), so they are
    passed through as sequences rather than stacked.
    """

    framework = "htk"

    def __init__(self, model, return_proba: bool = False) -> None:
        if not hasattr(model, "predict"):
            raise TypeError("model must expose a predict() method")
        self.model = model
        self.return_proba = return_proba

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        if len(inputs) == 0:
            return []
        sequences = [np.asarray(x, dtype=np.float64) for x in inputs]
        if self.return_proba:
            proba = self.model.predict_proba(sequences)
            return [proba[i] for i in range(proba.shape[0])]
        labels = self.model.predict(sequences)
        return [_to_scalar(labels[i]) for i in range(len(sequences))]


def _to_scalar(value: Any) -> Any:
    """Convert numpy scalars to native Python values for clean serialization."""
    if isinstance(value, np.generic):
        return value.item()
    return value
