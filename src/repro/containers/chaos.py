"""Failure-injection containers for health-monitoring tests and demos.

The management plane's recovery path needs a container that can be killed on
command — the in-process analogue of ``docker kill`` on a model container.
:class:`KillableContainer` serves normally until :meth:`KillableContainer.kill`
is called, after which every batch raises and the container reports itself
unhealthy, so both the dispatcher's passive failure signal and the health
monitor's active probes observe the death.  A fresh instance built by the
deployment's factory is alive again, which is exactly what health-driven
restart relies on.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.containers.base import ModelContainer


class KillableContainer(ModelContainer):
    """A container that can be killed (and revived) from the outside."""

    framework = "chaos"

    def __init__(self, output: Any = 0, inner: Optional[ModelContainer] = None) -> None:
        self.output = output
        self._inner = inner
        self._alive = True
        self.batches_served = 0

    def kill(self) -> None:
        """Simulate the container process dying."""
        self._alive = False

    def revive(self) -> None:
        self._alive = True

    @property
    def alive(self) -> bool:
        return self._alive

    def healthy(self) -> bool:
        return self._alive

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        if not self._alive:
            raise RuntimeError("container was killed")
        self.batches_served += 1
        if self._inner is not None:
            return self._inner.predict_batch(inputs)
        return [self.output] * len(inputs)


class TrackingFactory:
    """Container factory that remembers every instance it builds.

    Replicas own their containers, so a test or demo that wants to kill "the
    container behind replica 2" needs a handle on the instances the factory
    produced.  Restarted replicas call the factory again, so ``instances``
    also shows how many rebuilds recovery performed.
    """

    def __init__(self, factory: Callable[[], ModelContainer]) -> None:
        self._factory = factory
        self.instances: List[ModelContainer] = []

    def __call__(self) -> ModelContainer:
        container = self._factory()
        self.instances.append(container)
        return container
