"""Failure-injection containers for health-monitoring and recovery tests.

The management plane's recovery path needs containers that fail in
controlled, nameable ways — the in-process analogue of ``docker kill`` (or a
flaky host) on a model container:

* :class:`KillableContainer` serves normally until
  :meth:`KillableContainer.kill` is called, after which every batch raises
  and the container reports itself unhealthy, so both the dispatcher's
  passive failure signal and the health monitor's active probes observe the
  death.  A fresh instance built by the deployment's factory is alive again,
  which is exactly what health-driven restart relies on.
* :class:`FlakyContainer` serves ``healthy_predictions`` individual
  predictions and then dies — the "fails after N requests" fault point the
  crash-recovery tests use to schedule a failure mid-rollout.
* :class:`CorruptingContainer` keeps answering but corrupts its output
  payload (wrong values, or a short batch), modelling a sick-but-alive
  replica whose damage the serving layer must detect or absorb.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.containers.base import ModelContainer


class KillableContainer(ModelContainer):
    """A container that can be killed (and revived) from the outside."""

    framework = "chaos"

    def __init__(self, output: Any = 0, inner: Optional[ModelContainer] = None) -> None:
        self.output = output
        self._inner = inner
        self._alive = True
        self.batches_served = 0

    def kill(self) -> None:
        """Simulate the container process dying."""
        self._alive = False

    def revive(self) -> None:
        self._alive = True

    @property
    def alive(self) -> bool:
        return self._alive

    def healthy(self) -> bool:
        return self._alive

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        if not self._alive:
            raise RuntimeError("container was killed")
        self.batches_served += 1
        if self._inner is not None:
            return self._inner.predict_batch(inputs)
        return [self.output] * len(inputs)


class FlakyContainer(ModelContainer):
    """A container that dies after serving a fixed number of predictions.

    Counts *individual predictions* (not batches), so the fault point is
    deterministic under adaptive batching.  The batch containing the Nth
    prediction still succeeds; every batch after it raises, and the
    container reports itself unhealthy — a replacement instance from the
    factory starts its own countdown.
    """

    framework = "chaos"

    def __init__(self, healthy_predictions: int, output: Any = 0) -> None:
        if healthy_predictions < 0:
            raise ValueError("healthy_predictions must be non-negative")
        self.healthy_predictions = healthy_predictions
        self.output = output
        self.predictions_served = 0

    def healthy(self) -> bool:
        return self.predictions_served < self.healthy_predictions

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        if self.predictions_served >= self.healthy_predictions:
            raise RuntimeError(
                f"flaky container failed after {self.predictions_served} predictions"
            )
        self.predictions_served += len(inputs)
        return [self.output] * len(inputs)


class CorruptingContainer(ModelContainer):
    """A container that answers every batch with a corrupted payload.

    ``mode="garbage"`` returns the wrong output values (the container stays
    protocol-correct but semantically broken — the damage only shows up in
    application metrics); ``mode="short"`` returns fewer outputs than
    inputs, a contract violation the model abstraction layer must surface
    as a failed batch rather than misalign outputs across the batch.
    Corruption starts after ``healthy_predictions`` clean ones.
    """

    framework = "chaos"

    def __init__(
        self,
        output: Any = 0,
        corrupt_output: Any = "corrupted",
        mode: str = "garbage",
        healthy_predictions: int = 0,
    ) -> None:
        if mode not in ("garbage", "short"):
            raise ValueError(f"unknown corruption mode '{mode}'")
        self.output = output
        self.corrupt_output = corrupt_output
        self.mode = mode
        self.healthy_predictions = healthy_predictions
        self.predictions_served = 0
        self.corrupted_batches = 0

    def healthy(self) -> bool:
        return True  # the whole point: probes cannot tell it is sick

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        corrupting = self.predictions_served >= self.healthy_predictions
        self.predictions_served += len(inputs)
        if not corrupting:
            return [self.output] * len(inputs)
        self.corrupted_batches += 1
        if self.mode == "short":
            return [self.output] * (len(inputs) - 1)
        return [self.corrupt_output] * len(inputs)


class TrackingFactory:
    """Container factory that remembers every instance it builds.

    Replicas own their containers, so a test or demo that wants to kill "the
    container behind replica 2" needs a handle on the instances the factory
    produced.  Restarted replicas call the factory again, so ``instances``
    also shows how many rebuilds recovery performed.
    """

    def __init__(self, factory: Callable[[], ModelContainer]) -> None:
        self._factory = factory
        self.instances: List[ModelContainer] = []

    def __call__(self) -> ModelContainer:
        container = self._factory()
        self.instances.append(container)
        return container
