"""The model container interface — Clipper's "narrow waist".

Listing 1 of the paper defines the entire contract a model must satisfy to
be served by Clipper::

    interface Predictor<X, Y> {
        List<List<Y>> pred_batch(List<X> inputs);
    }

Here :class:`ModelContainer` is that interface: implement ``predict_batch``
(and nothing else) and the model can be deployed behind caching, adaptive
batching, replication and the selection layer.  Containers are stateless
after construction — all model state is supplied when the container is
built, mirroring the paper's statement that "the container itself is
stateless after initialization".
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence


class ModelContainer:
    """Base class for model containers.

    Subclasses implement :meth:`predict_batch`.  The default ``predict``
    convenience method evaluates a single input through the batch path so
    there is exactly one code path for inference.
    """

    #: Human-readable label of the underlying framework (for reporting).
    framework: str = "custom"

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        """Evaluate the model on a batch of inputs.

        Must return exactly one output per input, in order.  Raising an
        exception marks the whole batch as failed; the serving engine
        translates that into per-query errors without crashing.
        """
        raise NotImplementedError

    def predict(self, x: Any) -> Any:
        """Evaluate a single input (convenience wrapper over the batch path)."""
        outputs = self.predict_batch([x])
        if len(outputs) != 1:
            raise ValueError(
                f"predict_batch returned {len(outputs)} outputs for a single input"
            )
        return outputs[0]

    def healthy(self) -> bool:
        """Liveness check used by the container runtime; override if needed."""
        return True


class FunctionContainer(ModelContainer):
    """Adapts a plain ``f(inputs) -> outputs`` batch function into a container.

    The cheapest way to deploy custom logic: the paper notes most container
    implementations are only a few lines of code, and this is the Python
    equivalent.
    """

    def __init__(self, fn: Callable[[Sequence[Any]], List[Any]], framework: str = "python") -> None:
        if not callable(fn):
            raise TypeError("fn must be callable")
        self._fn = fn
        self.framework = framework

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        outputs = self._fn(inputs)
        outputs = list(outputs)
        if len(outputs) != len(inputs):
            raise ValueError(
                f"batch function returned {len(outputs)} outputs for "
                f"{len(inputs)} inputs"
            )
        return outputs
