"""Synthetic load containers for multi-process scaling benchmarks.

The cluster benchmark needs a model whose per-worker capacity is fixed, so
throughput grows only when more worker daemons join the fleet.  Two shapes:

* :class:`BusySpinContainer` burns real CPU per input.  On multi-core hosts
  this scales with worker *processes* (one GIL each) rather than event-loop
  concurrency, unlike ``asyncio.sleep``-style simulated latency which
  overlaps perfectly inside a single interpreter.
* :class:`DeviceBoundContainer` models the paper's deployment shape — each
  model container has exclusive use of one accelerator per worker — by
  holding a process-wide "device" lock while the batch evaluates off-CPU.
  Capacity is bounded per worker process without occupying a host core, so
  cluster scaling stays measurable even on single-core CI machines where
  CPU-spinning workers would just timeshare the same core.
"""

from __future__ import annotations

import threading
import time
from typing import Any, List, Sequence

from repro.containers.base import ModelContainer

#: One simulated accelerator per worker process: batch evaluation holds this
#: lock, so replicas co-located on a worker share its capacity while replicas
#: on different workers evaluate truly in parallel.
_DEVICE_LOCK = threading.Lock()


class BusySpinContainer(ModelContainer):
    """Spends ``spin_ms`` of real CPU time per input, then echoes a constant."""

    framework = "busy"

    def __init__(self, spin_ms: float = 1.0, output: Any = 0) -> None:
        if spin_ms < 0:
            raise ValueError("spin_ms must be >= 0")
        self.spin_ms = spin_ms
        self.output = output
        self.batches_served = 0

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        deadline = time.perf_counter() + (self.spin_ms / 1000.0) * len(inputs)
        # A tight arithmetic loop, checked against the clock: holds the GIL
        # and a core, unlike a sleep, so throughput is bound by process count.
        acc = 0
        while time.perf_counter() < deadline:
            acc += 1
        self.batches_served += 1
        return [self.output] * len(inputs)


class DeviceBoundContainer(ModelContainer):
    """Occupies the process's simulated accelerator for ``ms_per_input``.

    ``predict_batch`` sleeps under :data:`_DEVICE_LOCK` instead of spinning,
    so a worker's host core stays free while its "device" is busy.  One
    worker therefore serves at most ``1000 / ms_per_input`` inputs per
    second no matter how many replicas it hosts or how fast its CPU is.
    """

    framework = "device"

    def __init__(self, ms_per_input: float = 1.0, output: Any = 0) -> None:
        if ms_per_input <= 0:
            raise ValueError("ms_per_input must be > 0")
        self.ms_per_input = ms_per_input
        self.output = output
        self.batches_served = 0

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        with _DEVICE_LOCK:
            time.sleep((self.ms_per_input / 1000.0) * len(inputs))
        self.batches_served += 1
        return [self.output] * len(inputs)
