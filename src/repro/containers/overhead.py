"""Containers with controlled extra latency: language overhead and stragglers.

Two experiment families in the paper need containers whose latency can be
shaped precisely:

* **Figure 11** compares TensorFlow Serving against Clipper with C++ and
  Python model containers; the Python containers pay 15–18% extra per-batch
  overhead from the high-level API.  :class:`LanguageOverheadContainer`
  wraps any container and adds a configurable per-batch and per-item
  overhead so both variants can be expressed.
* **Figure 9** studies stragglers: as ensembles grow, some containers return
  late and the selection layer must render predictions without them.
  :class:`SimulatedLatencyContainer` adds deterministic-plus-heavy-tailed
  artificial latency to an inner container so straggler behaviour can be
  produced reliably on a laptop.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.containers.base import ModelContainer


def _busy_wait(duration_s: float) -> None:
    """Spin for ``duration_s`` seconds.

    Sleeping would let the event loop's other work hide the overhead, but the
    point of these wrappers is to *consume* container-side time the way real
    interpreter overhead or slow model math does.
    """
    if duration_s <= 0:
        return
    deadline = time.perf_counter() + duration_s
    while time.perf_counter() < deadline:
        pass


class LanguageOverheadContainer(ModelContainer):
    """Adds fixed per-batch and per-item overhead to an inner container.

    Parameters
    ----------
    inner:
        The wrapped container doing the real work.
    per_batch_overhead_ms:
        Fixed cost added once per batch (interpreter dispatch, API glue).
    per_item_overhead_us:
        Cost added per input in the batch (per-row conversion overhead).
    label:
        Reporting label, e.g. ``"tf-python"`` or ``"tf-c++"``.
    """

    def __init__(
        self,
        inner: ModelContainer,
        per_batch_overhead_ms: float = 0.0,
        per_item_overhead_us: float = 0.0,
        label: str = "overhead",
    ) -> None:
        if per_batch_overhead_ms < 0 or per_item_overhead_us < 0:
            raise ValueError("overheads must be non-negative")
        self.inner = inner
        self.per_batch_overhead_ms = per_batch_overhead_ms
        self.per_item_overhead_us = per_item_overhead_us
        self.framework = label

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        overhead_s = (
            self.per_batch_overhead_ms / 1000.0
            + len(inputs) * self.per_item_overhead_us / 1e6
        )
        _busy_wait(overhead_s)
        return self.inner.predict_batch(inputs)


class SimulatedLatencyContainer(ModelContainer):
    """Adds controlled artificial latency (with a straggler tail) to a container.

    Latency per batch is ``base_latency_ms + per_item_latency_ms * len(batch)``
    plus, with probability ``straggler_probability``, an extra delay drawn
    uniformly from ``[straggler_extra_ms/2, straggler_extra_ms]``.  When no
    inner container is given, the output for every input is ``default_output``.
    """

    framework = "simulated"

    def __init__(
        self,
        inner: Optional[ModelContainer] = None,
        base_latency_ms: float = 1.0,
        per_item_latency_ms: float = 0.0,
        straggler_probability: float = 0.0,
        straggler_extra_ms: float = 0.0,
        default_output: Any = 0,
        use_sleep: bool = True,
        random_state: Optional[int] = None,
    ) -> None:
        if base_latency_ms < 0 or per_item_latency_ms < 0 or straggler_extra_ms < 0:
            raise ValueError("latencies must be non-negative")
        if not 0.0 <= straggler_probability <= 1.0:
            raise ValueError("straggler_probability must be in [0, 1]")
        self.inner = inner
        self.base_latency_ms = base_latency_ms
        self.per_item_latency_ms = per_item_latency_ms
        self.straggler_probability = straggler_probability
        self.straggler_extra_ms = straggler_extra_ms
        self.default_output = default_output
        self.use_sleep = use_sleep
        self._rng = np.random.default_rng(random_state)

    def sample_delay_ms(self, batch_size: int) -> float:
        """Sample the artificial delay for one batch of the given size."""
        delay = self.base_latency_ms + self.per_item_latency_ms * batch_size
        if (
            self.straggler_probability > 0
            and self._rng.random() < self.straggler_probability
        ):
            delay += self._rng.uniform(
                self.straggler_extra_ms / 2.0, self.straggler_extra_ms
            )
        return delay

    def predict_batch(self, inputs: Sequence[Any]) -> List[Any]:
        delay_ms = self.sample_delay_ms(len(inputs))
        if self.use_sleep:
            time.sleep(delay_ms / 1000.0)
        else:
            _busy_wait(delay_ms / 1000.0)
        if self.inner is not None:
            return self.inner.predict_batch(inputs)
        return [self.default_output] * len(inputs)
