"""Per-model circuit breaker: closed / open / half-open.

A sick model container without a breaker inflicts its full timeout (or
error path) on every query routed to it until the `HealthMonitor`'s
heartbeat loop quarantines a replica — seconds of SLO damage.  The breaker
is the microsecond-scale complement: it watches per-query outcomes inline,
trips **open** on an error-rate or consecutive-timeout threshold, and while
open the engine skips the model entirely (falling through to the
default-output path, exactly as if the model were not deployed).  After a
cool-down the breaker turns **half-open** and lets a trickle of probe
queries through; all probes succeeding closes it, any probe failing snaps
it back open for another cool-down.

The breaker is intentionally not thread-safe: it is only touched from the
owning Clipper's event loop, like every other per-query structure.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Optional

from repro.core.config import CircuitBreakerConfig

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Outcome-driven breaker guarding one deployed model."""

    __slots__ = (
        "config",
        "state",
        "on_transition",
        "_clock",
        "_outcomes",
        "_consecutive_timeouts",
        "_opened_at",
        "_probes_inflight",
        "_probes_succeeded",
    )

    def __init__(
        self,
        config: CircuitBreakerConfig,
        clock=time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.config = config
        self.state = CLOSED
        self.on_transition = on_transition
        self._clock = clock
        self._outcomes: Deque[bool] = deque(maxlen=config.window)
        self._consecutive_timeouts = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        self._probes_succeeded = 0

    # ------------------------------------------------------------------
    # Gate
    # ------------------------------------------------------------------

    def allow(self) -> bool:
        """May a query be sent to this model right now?

        In half-open state a True return *reserves a probe slot*: the caller
        must follow up with exactly one of :meth:`record_success`,
        :meth:`record_failure` or :meth:`abandon`.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock() - self._opened_at < self.config.open_duration_s:
                return False
            self._transition(HALF_OPEN)
        # Half-open: trickle at most half_open_probes concurrent trials.
        if self._probes_inflight < self.config.half_open_probes:
            self._probes_inflight += 1
            return True
        return False

    def abandon(self) -> None:
        """Give back a half-open probe slot without recording an outcome.

        For when ``allow()`` said yes but the query never actually reached
        the model (e.g. submission failed for an unrelated reason).
        """
        if self.state == HALF_OPEN and self._probes_inflight > 0:
            self._probes_inflight -= 1

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            if self._probes_inflight > 0:
                self._probes_inflight -= 1
            self._probes_succeeded += 1
            if self._probes_succeeded >= self.config.half_open_probes:
                self._reset_window()
                self._transition(CLOSED)
            return
        self._consecutive_timeouts = 0
        self._outcomes.append(True)

    def record_failure(self, timeout: bool = False) -> None:
        if self.state == HALF_OPEN:
            # A failed probe snaps straight back open for another cool-down.
            if self._probes_inflight > 0:
                self._probes_inflight -= 1
            self._trip()
            return
        if self.state == OPEN:
            return
        self._outcomes.append(False)
        if timeout:
            self._consecutive_timeouts += 1
            if self._consecutive_timeouts >= self.config.consecutive_timeouts:
                self._trip()
                return
        config = self.config
        outcomes = self._outcomes
        if len(outcomes) >= config.min_samples:
            failures = sum(1 for ok in outcomes if not ok)
            if failures / len(outcomes) >= config.error_rate_threshold:
                self._trip()

    # ------------------------------------------------------------------
    # Internals / introspection
    # ------------------------------------------------------------------

    def _trip(self) -> None:
        self._opened_at = self._clock()
        self._reset_window()
        self._transition(OPEN)

    def _reset_window(self) -> None:
        self._outcomes.clear()
        self._consecutive_timeouts = 0
        self._probes_inflight = 0
        self._probes_succeeded = 0

    def _transition(self, new_state: str) -> None:
        old_state = self.state
        if new_state == old_state:
            return
        self.state = new_state
        if new_state == OPEN:
            self._opened_at = self._clock()
        callback = self.on_transition
        if callback is not None:
            callback(old_state, new_state)

    def error_rate(self) -> float:
        outcomes = self._outcomes
        if not outcomes:
            return 0.0
        return sum(1 for ok in outcomes if not ok) / len(outcomes)

    def describe(self) -> dict:
        return {
            "state": self.state,
            "error_rate": round(self.error_rate(), 4),
            "consecutive_timeouts": self._consecutive_timeouts,
            "samples": len(self._outcomes),
        }
