"""Overload control: admission gating, load shedding and circuit breaking.

This package is the fast, local protection layer under the slower global
control loops (the `HealthMonitor`'s quarantine, the future autoscaler):
it decides in microseconds whether a query is admitted, shed, degraded to
the default output, or fast-failed past a tripped model — so the latency
SLO survives flash crowds and sick models alike.

* :class:`AdmissionController` — per-application token-bucket + concurrency
  gate applied at the first cache miss (cache hits never pay for it).
* :class:`CircuitBreaker` — per-model closed/open/half-open breaker on
  error-rate and consecutive-timeout thresholds.

Configuration lives beside the rest of the engine's knobs in
:mod:`repro.core.config` (:class:`~repro.core.config.OverloadConfig`,
:class:`~repro.core.config.CircuitBreakerConfig`).
"""

from repro.overload.admission import AdmissionController
from repro.overload.breaker import CircuitBreaker

__all__ = ["AdmissionController", "CircuitBreaker"]
