"""Per-application admission control: token bucket + concurrency gate.

The controller answers one question on the cache-miss path — "may this
query enter the batching layer?" — in a handful of float operations, with
no locks (the serving engine is single-threaded per event loop) and no
timers (the bucket refills lazily from the elapsed time at each check).

Two independent limits compose:

* a **token bucket** (``rate_limit_qps`` refill, ``burst`` capacity)
  bounding the sustained admission rate while absorbing short bursts, and
* a **concurrency gate** (``max_concurrency``) bounding how many admitted
  queries are simultaneously in flight.

Either limit at 0 is disabled.  ``saturated()`` is the *non-consuming*
variant used by the HTTP edge to reject before any parsing/validation work;
``try_acquire()`` is the consuming check made once per query at its first
cache miss, paired with ``release()`` when the query completes.
"""

from __future__ import annotations

import time

from repro.core.config import OverloadConfig

__all__ = ["AdmissionController"]


class AdmissionController:
    """Token-bucket + concurrency admission gate for one application."""

    __slots__ = (
        "config",
        "_clock",
        "_inflight",
        "_rate",
        "_capacity",
        "_tokens",
        "_refilled_at",
        "admitted",
        "forced",
    )

    def __init__(self, config: OverloadConfig, clock=time.monotonic) -> None:
        self.config = config
        self._clock = clock
        self._inflight = 0
        self._rate = float(config.rate_limit_qps)
        if self._rate > 0:
            self._capacity = float(config.burst) if config.burst else max(1.0, self._rate)
        else:
            self._capacity = 0.0
        self._tokens = self._capacity
        self._refilled_at = clock()
        #: Lifetime admission counts, for introspection (``overload_state``).
        self.admitted = 0
        self.forced = 0

    # ------------------------------------------------------------------
    # Consuming path (engine, once per query at first cache miss)
    # ------------------------------------------------------------------

    def _refill(self, now: float) -> float:
        tokens = self._tokens + (now - self._refilled_at) * self._rate
        if tokens > self._capacity:
            tokens = self._capacity
        self._tokens = tokens
        self._refilled_at = now
        return tokens

    def try_acquire(self) -> bool:
        """Consume one admission slot; False when the gate is saturated."""
        config = self.config
        if config.max_concurrency and self._inflight >= config.max_concurrency:
            return False
        if self._rate > 0:
            tokens = self._refill(self._clock())
            if tokens < 1.0:
                return False
            self._tokens = tokens - 1.0
        self._inflight += 1
        self.admitted += 1
        return True

    def force_acquire(self) -> None:
        """Admit without a token — used after drop-oldest made room."""
        self._inflight += 1
        self.admitted += 1
        self.forced += 1

    def release(self) -> None:
        """Return the concurrency slot taken by ``try_acquire``/``force_acquire``."""
        if self._inflight > 0:
            self._inflight -= 1

    # ------------------------------------------------------------------
    # Non-consuming observers (HTTP edge precheck, metrics, Retry-After)
    # ------------------------------------------------------------------

    def saturated(self) -> bool:
        """True when ``try_acquire`` would currently fail (consumes nothing)."""
        config = self.config
        if config.max_concurrency and self._inflight >= config.max_concurrency:
            return True
        if self._rate > 0 and self._refill(self._clock()) < 1.0:
            return True
        return False

    def saturation(self) -> float:
        """Pressure gauge in [0, 1]: the tighter of the two limits."""
        pressure = 0.0
        config = self.config
        if config.max_concurrency:
            pressure = min(1.0, self._inflight / config.max_concurrency)
        if self._rate > 0 and self._capacity > 0:
            tokens = self._refill(self._clock())
            depletion = 1.0 - min(1.0, tokens / self._capacity)
            if depletion > pressure:
                pressure = depletion
        return pressure

    def retry_after_s(self) -> float:
        """Seconds until the gate expects to admit again (Retry-After hint)."""
        if self._rate > 0:
            tokens = self._refill(self._clock())
            if tokens < 1.0:
                return (1.0 - tokens) / self._rate
        return self.config.retry_after_s

    @property
    def inflight(self) -> int:
        return self._inflight

    def state(self) -> dict:
        """Introspection snapshot for the admin ``describe`` surface."""
        config = self.config
        return {
            "shed_policy": config.shed_policy,
            "rate_limit_qps": config.rate_limit_qps,
            "max_concurrency": config.max_concurrency,
            "inflight": self._inflight,
            "saturation": round(self.saturation(), 4),
            "admitted": self.admitted,
            "forced": self.forced,
        }
