"""Plain-text reporting helpers for the benchmark harness."""

from __future__ import annotations

from typing import Any, Dict, Sequence


def format_table(rows: Sequence[Dict[str, Any]], title: str = "") -> str:
    """Render a list of row dictionaries as an aligned plain-text table.

    All rows must share the same keys (the first row defines column order).
    Floats are shown with four significant digits.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())

    def render(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    table = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(columns[i]), max(len(row[i]) for row in table))
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in table:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
