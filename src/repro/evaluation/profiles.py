"""Model-container latency profiles (Figure 3).

A latency profile is the distribution of batch-evaluation latency as a
function of batch size for one model container.  The paper uses these
profiles to motivate adaptive batching: the maximum batch size that fits a
20 ms SLO differs by more than two orders of magnitude between a linear SVM
and an RBF kernel SVM served from the same system.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.containers.base import ModelContainer
from repro.core.metrics import summarize_latencies


@dataclass
class LatencyProfile:
    """Measured latencies per batch size for one container."""

    container_name: str
    batch_sizes: List[int] = field(default_factory=list)
    latencies_ms: Dict[int, List[float]] = field(default_factory=dict)

    def summary(self, batch_size: int) -> Dict[str, float]:
        """Latency summary statistics (ms) at one batch size."""
        return summarize_latencies(self.latencies_ms.get(batch_size, []))

    def p99(self, batch_size: int) -> float:
        return self.summary(batch_size)["p99"]

    def mean(self, batch_size: int) -> float:
        return self.summary(batch_size)["mean"]

    def rows(self) -> List[Dict[str, float]]:
        """One row per batch size: mean / p99 latency in ms and microseconds."""
        rows = []
        for batch_size in self.batch_sizes:
            stats = self.summary(batch_size)
            rows.append(
                {
                    "batch_size": batch_size,
                    "mean_ms": stats["mean"],
                    "p99_ms": stats["p99"],
                    "p99_us": stats["p99"] * 1000.0,
                }
            )
        return rows


def measure_latency_profile(
    container: ModelContainer,
    inputs: Sequence,
    batch_sizes: Sequence[int],
    repeats: int = 5,
    warmup: int = 1,
    name: Optional[str] = None,
) -> LatencyProfile:
    """Measure batch-evaluation latency of ``container`` across batch sizes.

    Inputs are cycled to build each batch; ``warmup`` un-timed evaluations
    precede the ``repeats`` timed ones at every batch size.
    """
    if not inputs:
        raise ValueError("inputs must be non-empty")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    profile = LatencyProfile(container_name=name or type(container).__name__)
    pool = list(inputs)
    for batch_size in batch_sizes:
        if batch_size < 1:
            raise ValueError("batch sizes must be >= 1")
        batch = [pool[i % len(pool)] for i in range(batch_size)]
        for _ in range(warmup):
            container.predict_batch(batch)
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            container.predict_batch(batch)
            samples.append((time.perf_counter() - start) * 1000.0)
        profile.batch_sizes.append(int(batch_size))
        profile.latencies_ms[int(batch_size)] = samples
    return profile


def max_batch_under_slo(profile: LatencyProfile, slo_ms: float, quantile: float = 99.0) -> int:
    """Largest measured batch size whose latency quantile fits inside the SLO.

    Latencies between measured batch sizes are interpolated linearly, matching
    the paper's observation that the latency/batch-size relationship is
    roughly linear, so the answer is not limited to the exact sizes measured.
    """
    if slo_ms <= 0:
        raise ValueError("slo_ms must be positive")
    sizes = np.array(profile.batch_sizes, dtype=float)
    if sizes.size == 0:
        return 0
    latencies = np.array(
        [np.percentile(profile.latencies_ms[int(size)], quantile) for size in sizes]
    )
    order = np.argsort(sizes)
    sizes, latencies = sizes[order], latencies[order]
    if latencies[0] > slo_ms:
        return 0
    best = int(sizes[0])
    for i in range(1, len(sizes)):
        if latencies[i] <= slo_ms:
            best = int(sizes[i])
            continue
        # Interpolate between the last passing size and this failing one.
        prev_size, prev_lat = sizes[i - 1], latencies[i - 1]
        if latencies[i] > prev_lat:
            fraction = (slo_ms - prev_lat) / (latencies[i] - prev_lat)
            best = max(best, int(prev_size + fraction * (sizes[i] - prev_size)))
        break
    return max(best, 1)


def throughput_at_batch_size(profile: LatencyProfile, batch_size: int) -> float:
    """Back-to-back throughput (qps) implied by the mean latency at one size."""
    mean_ms = profile.mean(batch_size)
    if not np.isfinite(mean_ms) or mean_ms <= 0:
        return 0.0
    return batch_size / (mean_ms / 1000.0)
