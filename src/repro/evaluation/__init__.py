"""Evaluation harness: reusable experiment drivers for every table and figure.

Each module implements the measurement logic of one family of experiments so
that the ``benchmarks/`` targets stay thin (parameters + printing) and the
experiments themselves are unit-testable:

* :mod:`repro.evaluation.profiles` — latency-vs-batch-size profiles (Fig. 3).
* :mod:`repro.evaluation.serving` — live serving throughput/latency runs used
  by the batching-strategy, delayed-batching and TF-Serving comparisons
  (Figs. 4, 5, 11).
* :mod:`repro.evaluation.online` — selection-layer experiments: ensemble
  accuracy and confidence (Fig. 7), model-failure recovery (Fig. 8),
  straggler mitigation (Fig. 9) and dialect personalization (Fig. 10).
* :mod:`repro.evaluation.reporting` — plain-text table rendering shared by
  the benchmark targets and the examples.
* :mod:`repro.evaluation.hotpath` — serving hot-path micro-benchmarks
  (cache-hit / cache-miss / ensemble overhead, ``BENCH_hotpath.json``).
"""

from repro.evaluation.profiles import LatencyProfile, max_batch_under_slo, measure_latency_profile
from repro.evaluation.reporting import format_table
from repro.evaluation.serving import ServingMeasurement, run_clipper_serving, run_tfserving_baseline

__all__ = [
    "LatencyProfile",
    "measure_latency_profile",
    "max_batch_under_slo",
    "format_table",
    "ServingMeasurement",
    "run_clipper_serving",
    "run_tfserving_baseline",
]
