"""Selection-layer experiment drivers (Figures 7, 8, 9 and 10).

These experiments exercise the model selection layer directly on top of
precomputed model predictions: the serving stack is not needed to study the
statistical behaviour of ensembles, bandit policies and straggler
mitigation, and running them at the selection layer keeps the benchmarks
fast and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.types import ModelId
from repro.mlkit import metrics as mlmetrics
from repro.selection.ensemble import majority_vote
from repro.selection.exp3 import Exp3Policy
from repro.selection.exp4 import Exp4Policy
from repro.selection.policy import SelectionPolicy
from repro.workloads.feedback import degrade_prediction


# ---------------------------------------------------------------------------
# Figure 7: ensemble accuracy and agreement-based confidence
# ---------------------------------------------------------------------------


@dataclass
class EnsembleAccuracyResult:
    """Error rates of single model vs ensemble vs confidence-filtered subsets."""

    dataset: str
    single_model_error: float
    ensemble_error: float
    confident_error: float
    unsure_error: float
    confident_fraction: float
    agreement_threshold: int
    per_model_errors: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, float]:
        return {
            "dataset": self.dataset,
            "single_model": self.single_model_error,
            "ensemble": self.ensemble_error,
            f"{self.agreement_threshold}-agree (confident)": self.confident_error,
            "unsure": self.unsure_error,
            "confident_fraction": self.confident_fraction,
        }


def ensemble_accuracy_experiment(
    model_predictions: Dict[str, np.ndarray],
    y_true: np.ndarray,
    agreement_threshold: Optional[int] = None,
    dataset: str = "dataset",
) -> EnsembleAccuracyResult:
    """Reproduce one panel of Figure 7 from per-model label predictions.

    Parameters
    ----------
    model_predictions:
        Mapping of model name to its predicted labels on the evaluation set.
    y_true:
        Ground-truth labels.
    agreement_threshold:
        Number of agreeing models required to call a prediction "confident";
        defaults to the full ensemble size (the paper's 5-agree group).
    """
    if not model_predictions:
        raise ValueError("model_predictions must be non-empty")
    y_true = np.asarray(y_true)
    names = sorted(model_predictions)
    n_models = len(names)
    if agreement_threshold is None:
        agreement_threshold = n_models
    if not 1 <= agreement_threshold <= n_models:
        raise ValueError("agreement_threshold must be in [1, n_models]")

    per_model_errors = {
        name: mlmetrics.error_rate(y_true, np.asarray(model_predictions[name]))
        for name in names
    }
    best_single = min(per_model_errors.values())

    n = y_true.shape[0]
    ensemble_labels = np.empty(n, dtype=y_true.dtype)
    agreements = np.empty(n, dtype=int)
    for i in range(n):
        votes = {name: model_predictions[name][i] for name in names}
        label, _ = majority_vote(votes)
        ensemble_labels[i] = label
        agreements[i] = sum(1 for name in names if model_predictions[name][i] == label)

    ensemble_error = mlmetrics.error_rate(y_true, ensemble_labels)
    confident_mask = agreements >= agreement_threshold
    confident_fraction = float(confident_mask.mean())
    confident_error = (
        mlmetrics.error_rate(y_true[confident_mask], ensemble_labels[confident_mask])
        if confident_mask.any()
        else float("nan")
    )
    unsure_error = (
        mlmetrics.error_rate(y_true[~confident_mask], ensemble_labels[~confident_mask])
        if (~confident_mask).any()
        else float("nan")
    )
    return EnsembleAccuracyResult(
        dataset=dataset,
        single_model_error=best_single,
        ensemble_error=ensemble_error,
        confident_error=confident_error,
        unsure_error=unsure_error,
        confident_fraction=confident_fraction,
        agreement_threshold=agreement_threshold,
        per_model_errors=per_model_errors,
    )


# ---------------------------------------------------------------------------
# Figure 8: Exp3 / Exp4 behaviour under model failure
# ---------------------------------------------------------------------------


@dataclass
class ModelFailureResult:
    """Cumulative average error trajectories for base models and policies."""

    num_queries: int
    degrade_start: int
    degrade_end: int
    cumulative_errors: Dict[str, np.ndarray] = field(default_factory=dict)

    def final_errors(self) -> Dict[str, float]:
        return {name: float(curve[-1]) for name, curve in self.cumulative_errors.items()}


def model_failure_experiment(
    model_predictions: Dict[str, np.ndarray],
    y_true: np.ndarray,
    num_queries: int = 20000,
    degrade_start: int = 5000,
    degrade_end: int = 10000,
    degraded_model: Optional[str] = None,
    n_classes: Optional[int] = None,
    policies: Optional[Dict[str, SelectionPolicy]] = None,
    corruption_rate: float = 0.9,
    random_state: int = 0,
) -> ModelFailureResult:
    """Reproduce Figure 8: degrade the best model mid-stream and watch recovery.

    The query stream cycles through the evaluation set; between
    ``degrade_start`` and ``degrade_end`` the designated (by default the most
    accurate) model's predictions are corrupted.  Cumulative average error is
    tracked for every base model, plus Exp3 (single-model selection) and Exp4
    (ensemble selection) policies receiving immediate feedback.
    """
    if not model_predictions:
        raise ValueError("model_predictions must be non-empty")
    if not 0 <= degrade_start <= degrade_end <= num_queries:
        raise ValueError("require 0 <= degrade_start <= degrade_end <= num_queries")
    y_true = np.asarray(y_true)
    names = sorted(model_predictions)
    predictions = {name: np.asarray(model_predictions[name]) for name in names}
    n_eval = y_true.shape[0]
    rng = np.random.default_rng(random_state)
    if n_classes is None:
        n_classes = int(np.unique(y_true).shape[0])

    if degraded_model is None:
        errors = {n: mlmetrics.error_rate(y_true, predictions[n]) for n in names}
        degraded_model = min(names, key=lambda n: errors[n])

    if policies is None:
        policies = {
            "Exp3": Exp3Policy(eta=0.2, exploration=0.05, seed=random_state),
            "Exp4": Exp4Policy(eta=0.3),
        }
    model_ids = [ModelId(name) for name in names]
    policy_states = {label: policy.init(model_ids) for label, policy in policies.items()}
    key_of = {name: str(ModelId(name)) for name in names}

    cumulative = {name: np.zeros(num_queries) for name in names}
    for label in policies:
        cumulative[label] = np.zeros(num_queries)
    running = {name: 0.0 for name in cumulative}

    for t in range(num_queries):
        idx = int(rng.integers(0, n_eval))
        truth = y_true[idx]
        in_window = degrade_start <= t < degrade_end
        per_model: Dict[str, object] = {}
        for name in names:
            prediction = predictions[name][idx]
            if in_window and name == degraded_model:
                prediction = degrade_prediction(
                    prediction, n_classes, rng, corruption_rate=corruption_rate
                )
            per_model[name] = prediction
            running[name] += 0.0 if prediction == truth else 1.0
            cumulative[name][t] = running[name] / (t + 1)

        for label, policy in policies.items():
            state = policy_states[label]
            selected = policy.select(state, idx)
            available = {key: per_model[key.split(":", 1)[0]] for key in selected}
            output, _ = policy.combine(state, idx, available)
            running[label] += 0.0 if output == truth else 1.0
            cumulative[label][t] = running[label] / (t + 1)
            # Immediate feedback: the policy observes the prediction(s) it saw.
            policy_states[label] = policy.observe(state, idx, truth, available)

    return ModelFailureResult(
        num_queries=num_queries,
        degrade_start=degrade_start,
        degrade_end=degrade_end,
        cumulative_errors=cumulative,
    )


# ---------------------------------------------------------------------------
# Figure 9: straggler mitigation for growing ensembles
# ---------------------------------------------------------------------------


@dataclass
class StragglerResult:
    """Latency / missing-prediction / accuracy measurements for one ensemble size."""

    ensemble_size: int
    blocking_mean_latency_ms: float
    blocking_p99_latency_ms: float
    mitigated_mean_latency_ms: float
    mitigated_p99_latency_ms: float
    mean_missing_fraction: float
    p99_missing_fraction: float
    accuracy: float
    full_ensemble_accuracy: float

    def as_row(self) -> Dict[str, float]:
        return {
            "ensemble_size": self.ensemble_size,
            "stragglers_p99_ms": self.blocking_p99_latency_ms,
            "stragglers_mean_ms": self.blocking_mean_latency_ms,
            "mitigated_p99_ms": self.mitigated_p99_latency_ms,
            "mitigated_mean_ms": self.mitigated_mean_latency_ms,
            "missing_mean_pct": self.mean_missing_fraction * 100.0,
            "missing_p99_pct": self.p99_missing_fraction * 100.0,
            "accuracy": self.accuracy,
            "blocking_accuracy": self.full_ensemble_accuracy,
        }


def straggler_experiment(
    model_predictions: Dict[str, np.ndarray],
    y_true: np.ndarray,
    ensemble_size: int,
    slo_ms: float = 20.0,
    num_queries: int = 2000,
    base_latency_ms: float = 8.0,
    latency_scale_ms: float = 4.0,
    straggler_probability: float = 0.05,
    straggler_extra_ms: float = 60.0,
    load_sensitivity: float = 0.08,
    random_state: int = 0,
) -> StragglerResult:
    """Reproduce one x-axis point of Figure 9.

    Per-query, per-model latencies are drawn from a base + exponential
    distribution with an occasional heavy straggler; without mitigation the
    query latency is the max over the ensemble, with mitigation the query is
    answered at the SLO deadline using only the predictions that arrived.
    ``load_sensitivity`` grows the latency tail with the ensemble size,
    modelling the paper's observation that bigger ensembles load the system
    more heavily and therefore produce more stragglers.
    """
    if ensemble_size < 1:
        raise ValueError("ensemble_size must be >= 1")
    if load_sensitivity < 0:
        raise ValueError("load_sensitivity must be non-negative")
    names = sorted(model_predictions)
    if ensemble_size > len(names):
        raise ValueError(
            f"ensemble_size {ensemble_size} exceeds available models ({len(names)})"
        )
    y_true = np.asarray(y_true)
    n_eval = y_true.shape[0]
    rng = np.random.default_rng(random_state)
    members = names[:ensemble_size]
    load_factor = 1.0 + load_sensitivity * (ensemble_size - 1)
    latency_scale_ms = latency_scale_ms * load_factor
    straggler_probability = min(straggler_probability * load_factor, 1.0)

    blocking_latencies = np.empty(num_queries)
    mitigated_latencies = np.empty(num_queries)
    missing_fractions = np.empty(num_queries)
    correct_mitigated = 0
    correct_blocking = 0

    for t in range(num_queries):
        idx = int(rng.integers(0, n_eval))
        latencies = (
            base_latency_ms
            + rng.exponential(latency_scale_ms, size=ensemble_size)
            + np.where(
                rng.random(ensemble_size) < straggler_probability,
                rng.uniform(straggler_extra_ms / 2, straggler_extra_ms, size=ensemble_size),
                0.0,
            )
        )
        blocking_latencies[t] = latencies.max()
        mitigated_latencies[t] = min(latencies.max(), slo_ms)
        arrived = latencies <= slo_ms
        missing_fractions[t] = 1.0 - arrived.mean()

        all_votes = {name: model_predictions[name][idx] for name in members}
        label_all, _ = majority_vote(all_votes)
        if label_all == y_true[idx]:
            correct_blocking += 1

        available_votes = {
            name: model_predictions[name][idx]
            for name, ok in zip(members, arrived)
            if ok
        }
        if available_votes:
            label_avail, _ = majority_vote(available_votes)
            if label_avail == y_true[idx]:
                correct_mitigated += 1

    return StragglerResult(
        ensemble_size=ensemble_size,
        blocking_mean_latency_ms=float(blocking_latencies.mean()),
        blocking_p99_latency_ms=float(np.percentile(blocking_latencies, 99)),
        mitigated_mean_latency_ms=float(mitigated_latencies.mean()),
        mitigated_p99_latency_ms=float(np.percentile(mitigated_latencies, 99)),
        mean_missing_fraction=float(missing_fractions.mean()),
        p99_missing_fraction=float(np.percentile(missing_fractions, 99)),
        accuracy=correct_mitigated / num_queries,
        full_ensemble_accuracy=correct_blocking / num_queries,
    )


# ---------------------------------------------------------------------------
# Figure 10: personalized (contextual) model selection
# ---------------------------------------------------------------------------


@dataclass
class PersonalizationResult:
    """Error versus feedback count for the three selection strategies."""

    feedback_counts: List[int]
    static_dialect_error: List[float]
    no_dialect_error: List[float]
    clipper_policy_error: List[float]

    def as_rows(self) -> List[Dict[str, float]]:
        rows = []
        for i, count in enumerate(self.feedback_counts):
            rows.append(
                {
                    "feedback": count,
                    "static_dialect": self.static_dialect_error[i],
                    "no_dialect": self.no_dialect_error[i],
                    "clipper_policy": self.clipper_policy_error[i],
                }
            )
        return rows


def personalization_experiment(
    user_streams: Dict[str, List[Tuple[int, Dict[str, object], object]]],
    dialect_of_user: Dict[str, int],
    dialect_model_name: Dict[int, str],
    global_model_name: str,
    policy: Optional[SelectionPolicy] = None,
    max_feedback: int = 8,
) -> PersonalizationResult:
    """Reproduce Figure 10: per-user online selection versus static choices.

    Parameters
    ----------
    user_streams:
        For each user id, an ordered list of interaction tuples
        ``(step, per_model_predictions, true_label)``.
    dialect_of_user:
        The dialect each user reported.
    dialect_model_name:
        The model trained for each dialect (the "static dialect" strategy).
    global_model_name:
        The dialect-oblivious model (the "no dialect" strategy).
    policy:
        The Clipper selection policy (default: Exp4) instantiated *per user*,
        exactly like the contextualized selection state of §5.3.
    max_feedback:
        Number of feedback rounds plotted on the x-axis.
    """
    if policy is None:
        policy = Exp4Policy(eta=0.5)
    if not user_streams:
        raise ValueError("user_streams must be non-empty")

    static_errors = np.zeros(max_feedback + 1)
    global_errors = np.zeros(max_feedback + 1)
    policy_errors = np.zeros(max_feedback + 1)
    counts = np.zeros(max_feedback + 1)

    for user, stream in user_streams.items():
        dialect = dialect_of_user[user]
        dialect_model = dialect_model_name[dialect]
        model_names = sorted(stream[0][1]) if stream else []
        model_ids = [ModelId(name) for name in model_names]
        state = policy.init(model_ids)
        for step, per_model, truth in stream:
            if step > max_feedback:
                break
            key_map = {str(ModelId(name)): per_model[name] for name in model_names}
            selected = policy.select(state, step)
            available = {key: key_map[key] for key in selected if key in key_map}
            output, _ = policy.combine(state, step, available)

            static_errors[step] += 0.0 if per_model[dialect_model] == truth else 1.0
            global_errors[step] += 0.0 if per_model[global_model_name] == truth else 1.0
            policy_errors[step] += 0.0 if output == truth else 1.0
            counts[step] += 1
            state = policy.observe(state, step, truth, key_map)

    valid = counts > 0
    feedback_counts = [int(i) for i in np.arange(max_feedback + 1)[valid]]
    return PersonalizationResult(
        feedback_counts=feedback_counts,
        static_dialect_error=list(static_errors[valid] / counts[valid]),
        no_dialect_error=list(global_errors[valid] / counts[valid]),
        clipper_policy_error=list(policy_errors[valid] / counts[valid]),
    )
