"""Hot-path micro-benchmark scenarios for the serving engine.

The paper's headline numbers are latency and throughput *of the serving
system itself* — the prediction cache (§4.2), adaptive batching (§4.3) and
the selection layer add overhead to every query, and that overhead is what
this module measures.  Model computation is removed from the picture by
serving :class:`~repro.containers.noop.NoOpContainer` replicas, so the
scenarios isolate the framework cost per query:

``cache_hit``
    One model, one repeated input.  After a warm-up query every prediction
    is served straight from the prediction cache — the fastest possible
    path through the engine.
``cache_miss``
    One model, every input unique.  Each query misses the cache and flows
    through the batching queue, a dispatcher and the container RPC.
``cache_miss_wide``
    Like ``cache_miss`` but with realistic MNIST-scale payloads (256-float
    ``float32`` vectors) and the RPC round-tripping through the binary
    serializer, so the columnar batch encoding and zero-copy decoding of
    :mod:`repro.rpc.serialization` are on the measured path.
``cache_miss_shm`` / ``cache_miss_tcp``
    The ``cache_miss_wide`` workload with the replica behind a real
    transport instead of the in-process queue pair: a shared-memory ring
    (:class:`~repro.rpc.shm.ShmRingTransport`) or a loopback TCP socket.
    The pair prices the transport itself — same serializer, same batches,
    only the byte-moving mechanism differs — and is the evidence that the
    ring beats the socket.
``ensemble``
    Four models behind the Exp4 ensemble policy, one repeated input.  Every
    query fans out to all models; after warm-up each fan-out is a cache
    hit, so the scenario stresses per-model bookkeeping (hashing, cache
    lookups, metrics) multiplied by the ensemble width.
``telemetry_overhead``
    The ``cache_hit`` workload twice, interleaved: once with the default
    tracing configuration (1/256 head sampling + tail capture), once with
    tracing disabled.  The paired "telemetry_on"/"telemetry_off" results
    prove the near-zero-cost requirement of the observability layer: an
    unsampled query pays one branch on a pre-resolved handle.
``overload``
    A flash crowd: unique inputs arrive in on/off bursts at ~5× the rate
    the admission controller allows (:class:`~repro.core.config.OverloadConfig`
    under the ``degrade`` shed policy, bounded batching queue).  Every
    query must be answered — admitted ones through the model, shed ones
    instantly with the default output — so the scenario is the evidence
    for graceful degradation: bounded latency for admitted traffic, zero
    unanswered queries, and shed counts visible in the Prometheus
    exposition.
``http_predict``
    The ``cache_hit`` workload driven through the full REST edge: an
    :class:`~repro.api.http.HttpApiServer` on loopback TCP, queried by
    keep-alive :class:`~repro.client.AsyncClipperClient` connections.  The
    delta against ``cache_hit`` is the price of the HTTP framing, JSON
    codec and schema validation per request — the REST-edge overhead this
    PR's API layer adds to an in-process ``predict``.
``http_predict_binary``
    The same REST edge driven with the binary columnar content type: the
    client negotiates ``application/x-clipper-columnar`` and ships a
    256-float ``float32`` vector as raw little-endian bytes instead of a
    JSON array.  Compared against ``http_predict`` it isolates the JSON
    codec's share of the REST gap — the payload that motivated the binary
    wire format.
``cluster_http_1worker`` / ``cluster_http_2workers``
    The cluster serving plane under a *device-bound* model: N worker
    daemons (separate OS processes) each host replicas of a
    :class:`~repro.containers.busy.DeviceBoundContainer` (1 ms of exclusive
    simulated-accelerator time per input, one device per worker process),
    fronted by an in-process :class:`~repro.cluster.ingress.IngressTier`
    driven by binary HTTP clients with unique inputs (every query a cache
    miss).  One worker's device caps at roughly 1k inputs/s no matter how
    many replicas it hosts, so the 2-worker/1-worker throughput ratio is
    the acceptance number for cluster scaling — it must exceed 1.5×, which
    no amount of concurrency against a single worker can deliver.  (A
    device-bound model rather than a CPU-spinning one keeps the ratio
    meaningful on single-core hosts, where extra CPU-bound worker
    processes would merely timeshare the same core.)

Each scenario returns a :class:`HotpathResult` with QPS and the latency
distribution, consumed by ``benchmarks/bench_hotpath.py`` (pytest) and
``scripts/bench_hotpath.py`` (writes ``BENCH_hotpath.json``).
"""

from __future__ import annotations

import asyncio
import gc
import time
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.containers.noop import NoOpContainer
from repro.core.clipper import Clipper
from repro.core.config import (
    BatchingConfig,
    ClipperConfig,
    ModelDeployment,
    TracingConfig,
)
from repro.core.metrics import summarize_latencies, throughput_qps
from repro.core.types import Query

#: Input dimensionality used by most scenarios (MNIST-sized feature vector,
#: large enough that input hashing is a measurable part of the per-query cost).
INPUT_FEATURES = 784

#: Input width of the serialized wide scenario: 256 float32 features, the
#: payload shape of an MNIST-scale feature vector on the wire.
WIDE_FEATURES = 256

#: Generous SLO so the benchmark measures steady-state cost, not timeouts.
BENCH_SLO_MS = 500.0


@dataclass
class HotpathResult:
    """Throughput and latency summary for one hot-path scenario."""

    scenario: str
    num_queries: int
    elapsed_s: float
    qps: float
    latency_ms: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        lat = self.latency_ms
        return (
            f"{self.scenario:>10}: {self.qps:9.0f} qps  "
            f"p50={lat.get('p50', float('nan')):7.3f} ms  "
            f"p99={lat.get('p99', float('nan')):7.3f} ms  "
            f"({self.num_queries} queries in {self.elapsed_s:.2f} s)"
        )


def _noop_deployment(
    name: str, serialize_rpc: bool = False, transport: str = "inprocess"
) -> ModelDeployment:
    return ModelDeployment(
        name=name,
        container_factory=lambda: NoOpContainer(output=1),
        batching=BatchingConfig(policy="aimd", initial_batch_size=4),
        serialize_rpc=serialize_rpc,
        transport=transport,
    )


def _single_model_clipper(
    serialize_rpc: bool = False,
    tracing: "TracingConfig | None" = None,
    transport: str = "inprocess",
) -> Clipper:
    config = ClipperConfig(
        app_name="hotpath",
        latency_slo_ms=BENCH_SLO_MS,
        selection_policy="single",
    )
    if tracing is not None:
        config.tracing = tracing
    clipper = Clipper(config)
    clipper.deploy_model(
        _noop_deployment("noop", serialize_rpc=serialize_rpc, transport=transport)
    )
    return clipper


def _ensemble_clipper(width: int = 4) -> Clipper:
    clipper = Clipper(
        ClipperConfig(
            app_name="hotpath",
            latency_slo_ms=BENCH_SLO_MS,
            selection_policy="exp4",
        )
    )
    for i in range(width):
        clipper.deploy_model(_noop_deployment(f"noop-{i}"))
    return clipper


async def _drive(
    clipper: Clipper,
    queries: List[Query],
    concurrency: int,
) -> "tuple[float, List[float]]":
    """Issue ``queries`` and return (elapsed seconds, per-query latencies ms)."""
    latencies: List[float] = []

    async def issue(query: Query) -> None:
        t0 = time.perf_counter()
        await clipper.predict(query)
        latencies.append((time.perf_counter() - t0) * 1000.0)

    start = time.perf_counter()
    if concurrency <= 1:
        for query in queries:
            await issue(query)
    else:
        for offset in range(0, len(queries), concurrency):
            window = queries[offset : offset + concurrency]
            await asyncio.gather(*(issue(q) for q in window))
    return time.perf_counter() - start, latencies


def _result(scenario: str, elapsed: float, latencies: List[float]) -> HotpathResult:
    return HotpathResult(
        scenario=scenario,
        num_queries=len(latencies),
        elapsed_s=elapsed,
        qps=throughput_qps(len(latencies), elapsed),
        latency_ms=summarize_latencies(latencies),
    )


async def run_cache_hit(num_queries: int = 5000) -> HotpathResult:
    """One model, one repeated input: pure prediction-cache hits."""
    clipper = _single_model_clipper()
    await clipper.start()
    try:
        rng = np.random.default_rng(0)
        x = rng.standard_normal(INPUT_FEATURES)
        # Warm the cache so the timed loop never leaves the fast path.
        await clipper.predict(Query(app_name="hotpath", input=x))
        queries = [Query(app_name="hotpath", input=x) for _ in range(num_queries)]
        elapsed, latencies = await _drive(clipper, queries, concurrency=1)
    finally:
        await clipper.stop()
    return _result("cache_hit", elapsed, latencies)


async def run_cache_miss(num_queries: int = 2000, concurrency: int = 32) -> HotpathResult:
    """One model, unique inputs: every query crosses the batching layer."""
    clipper = _single_model_clipper()
    await clipper.start()
    try:
        rng = np.random.default_rng(1)
        inputs = rng.standard_normal((num_queries, INPUT_FEATURES))
        queries = [Query(app_name="hotpath", input=inputs[i]) for i in range(num_queries)]
        elapsed, latencies = await _drive(clipper, queries, concurrency=concurrency)
    finally:
        await clipper.stop()
    return _result("cache_miss", elapsed, latencies)


async def _run_cache_miss_serialized(
    scenario: str, transport: str, num_queries: int, concurrency: int
) -> HotpathResult:
    """Shared driver for the wide serialized cache-miss scenarios."""
    clipper = _single_model_clipper(serialize_rpc=True, transport=transport)
    await clipper.start()
    try:
        rng = np.random.default_rng(3)
        inputs = rng.standard_normal((num_queries, WIDE_FEATURES)).astype(np.float32)
        # Untimed warm-up (distinct inputs, so every one still misses the
        # cache): first-use costs — page-faulting fresh ring/socket buffers,
        # the shared-memory resource tracker, allocator steady state — land
        # here instead of in the tail of the measured run.  1024 queries at
        # ~1 KiB per direction wrap a full default-capacity shm ring, so the
        # timed window never touches a cold page.
        warm = rng.standard_normal((1024, WIDE_FEATURES)).astype(np.float32)
        await _drive(
            clipper,
            [Query(app_name="hotpath", input=warm[i]) for i in range(len(warm))],
            concurrency=concurrency,
        )
        queries = [Query(app_name="hotpath", input=inputs[i]) for i in range(num_queries)]
        # Start the timed window on a clean heap: setup allocates enough to
        # schedule a gen-2 collection that would otherwise fire mid-run and
        # smear multi-ms GC pauses across the tail percentiles.
        gc.collect()
        elapsed, latencies = await _drive(clipper, queries, concurrency=concurrency)
    finally:
        await clipper.stop()
    return _result(scenario, elapsed, latencies)


async def run_cache_miss_wide(
    num_queries: int = 2000, concurrency: int = 32
) -> HotpathResult:
    """Unique 256-float float32 inputs through the serializing RPC path.

    Every batch crosses the Clipper↔container boundary through the binary
    wire format (``serialize_rpc=True``), so this scenario prices the
    columnar batch encoding, writev-style framing and zero-copy decoding —
    the costs ``cache_miss`` deliberately excludes.
    """
    return await _run_cache_miss_serialized(
        "cache_miss_wide", "inprocess", num_queries, concurrency
    )


async def run_cache_miss_shm(
    num_queries: int = 2000, concurrency: int = 32
) -> HotpathResult:
    """The wide serialized cache-miss workload over the shared-memory ring.

    Identical to ``cache_miss_wide`` except that every batch crosses a
    :class:`~repro.rpc.shm.ShmRingTransport` — frames are copied through a
    shared-memory ring with socketpair doorbells instead of an in-process
    queue.  Compare against ``cache_miss_tcp`` (same workload, loopback
    socket) to price the transports against each other.
    """
    return await _run_cache_miss_serialized(
        "cache_miss_shm", "shm", num_queries, concurrency
    )


async def run_cache_miss_tcp(
    num_queries: int = 2000, concurrency: int = 32
) -> HotpathResult:
    """The wide serialized cache-miss workload over a loopback TCP socket.

    The baseline ``cache_miss_shm`` must beat: same serializer, same
    batches, but every frame crosses the kernel socket stack.
    """
    return await _run_cache_miss_serialized(
        "cache_miss_tcp", "tcp", num_queries, concurrency
    )


async def run_http_predict(
    num_queries: int = 2000, concurrency: int = 8
) -> HotpathResult:
    """The cache-hit workload through the REST edge (server + client SDK).

    ``concurrency`` keep-alive client connections each issue a sequential
    stream of predicts for one repeated input; the server side is a pure
    cache hit, so the measured cost is request parsing, JSON coding, schema
    validation and the loopback round-trip — the REST-edge overhead on top
    of the in-process ``cache_hit`` number.
    """
    from repro.api.http import create_server
    from repro.client import AsyncClipperClient
    from repro.core.frontend import QueryFrontend

    # Declared schema so the edge validates and coerces every request —
    # the full REST path, not a pass-through shortcut.
    clipper = Clipper(
        ClipperConfig(
            app_name="hotpath",
            latency_slo_ms=BENCH_SLO_MS,
            selection_policy="single",
            input_type="doubles",
            input_shape=(INPUT_FEATURES,),
        )
    )
    clipper.deploy_model(_noop_deployment("noop"))
    frontend = QueryFrontend()
    frontend.register_application(clipper)
    server = create_server(query=frontend)
    await server.start()
    latencies: List[float] = []
    try:
        rng = np.random.default_rng(4)
        x = rng.standard_normal(INPUT_FEATURES).tolist()
        clients = [
            AsyncClipperClient("127.0.0.1", server.port) for _ in range(concurrency)
        ]
        try:
            # Warm connections and the server-side prediction cache.
            for client in clients:
                await client.predict("hotpath", x)

            per_client = max(1, num_queries // concurrency)

            async def drive(client: AsyncClipperClient) -> None:
                for _ in range(per_client):
                    t0 = time.perf_counter()
                    await client.predict("hotpath", x)
                    latencies.append((time.perf_counter() - t0) * 1000.0)

            start = time.perf_counter()
            await asyncio.gather(*(drive(client) for client in clients))
            elapsed = time.perf_counter() - start
        finally:
            for client in clients:
                await client.close()
    finally:
        await server.stop()
    return _result("http_predict", elapsed, latencies)


async def run_http_predict_binary(
    num_queries: int = 2000, concurrency: int = 8
) -> HotpathResult:
    """The REST cache-hit workload over the binary columnar content type.

    Same edge as ``run_http_predict`` — keep-alive connections, declared
    schema, full validation — but the application takes 256-float
    ``float32`` vectors and the clients negotiate
    ``application/x-clipper-columnar``, so each request body is the raw
    little-endian buffer instead of a JSON array and each response is
    decoded without ``json.loads``.  The ratio against ``http_predict``
    is the acceptance number for the binary wire format.
    """
    from repro.api.http import create_server
    from repro.client import AsyncClipperClient
    from repro.core.frontend import QueryFrontend

    clipper = Clipper(
        ClipperConfig(
            app_name="hotpath",
            latency_slo_ms=BENCH_SLO_MS,
            selection_policy="single",
            input_type="floats",
            input_shape=(WIDE_FEATURES,),
        )
    )
    clipper.deploy_model(_noop_deployment("noop"))
    frontend = QueryFrontend()
    frontend.register_application(clipper)
    server = create_server(query=frontend)
    await server.start()
    latencies: List[float] = []
    try:
        rng = np.random.default_rng(4)
        x = rng.standard_normal(WIDE_FEATURES).astype(np.float32)
        clients = [
            AsyncClipperClient("127.0.0.1", server.port, binary=True)
            for _ in range(concurrency)
        ]
        try:
            for client in clients:
                await client.predict("hotpath", x)

            per_client = max(1, num_queries // concurrency)

            async def drive(client: AsyncClipperClient) -> None:
                for _ in range(per_client):
                    t0 = time.perf_counter()
                    await client.predict("hotpath", x)
                    latencies.append((time.perf_counter() - t0) * 1000.0)

            start = time.perf_counter()
            await asyncio.gather(*(drive(client) for client in clients))
            elapsed = time.perf_counter() - start
            if any(not client.binary for client in clients):
                raise RuntimeError(
                    "http_predict_binary fell back to JSON — the server "
                    "rejected the columnar content type"
                )
        finally:
            for client in clients:
                await client.close()
    finally:
        await server.stop()
    return _result("http_predict_binary", elapsed, latencies)


async def _run_cluster_http(
    scenario: str,
    num_workers: int,
    num_queries: int = 2000,
    concurrency: int = 32,
    num_replicas: int = 2,
) -> HotpathResult:
    """Shared driver for the cluster scaling pair.

    Spawns ``num_workers`` worker daemons as real child processes, stands up
    an in-process ingress tier whose placement hook spreads
    ``num_replicas`` device-bound replicas across them (same-host shm lane
    negotiated automatically), and drives unique-input binary HTTP traffic.
    The deployment shape is identical across the pair — only the worker
    count varies — so the throughput ratio isolates cluster scaling.  The
    batch cap keeps one dispatcher from draining the whole queue (which
    would starve the other worker's replica), and the client concurrency is
    sized so ~2k qps is reachable at ~15 ms end-to-end latency.
    """
    import os
    import shutil
    import signal
    import subprocess
    import sys
    import tempfile

    import repro
    from repro.client import AsyncClipperClient
    from repro.cluster.ingress import IngressTier
    from repro.cluster.registry import WorkerRegistry

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cluster_dir = tempfile.mkdtemp(prefix="repro-bench-cluster-")
    workers = [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cluster.worker",
                "--cluster-dir",
                cluster_dir,
                "--worker-id",
                f"bench-{i}",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for i in range(num_workers)
    ]
    latencies: List[float] = []
    try:
        registry = WorkerRegistry(cluster_dir)
        deadline = time.monotonic() + 30.0
        while len(registry.live_workers()) < num_workers:
            if time.monotonic() > deadline:
                raise RuntimeError(f"{scenario}: workers never became live")
            await asyncio.sleep(0.05)
        ingress = IngressTier(
            cluster_dir,
            config=ClipperConfig(
                app_name="hotpath",
                latency_slo_ms=BENCH_SLO_MS,
                selection_policy="single",
                input_type="floats",
                input_shape=(WIDE_FEATURES,),
                allow_empty_start=True,
            ),
        )
        from repro.containers.busy import DeviceBoundContainer

        ingress.clipper.deploy_model(
            ModelDeployment(
                name="busy",
                container_factory=lambda: DeviceBoundContainer(ms_per_input=1.0),
                factory_name="device_1ms",
                num_replicas=num_replicas,
                batching=BatchingConfig(
                    policy="aimd", initial_batch_size=4, max_batch_size=8
                ),
            )
        )
        await ingress.start()
        try:
            rng = np.random.default_rng(7)
            inputs = rng.standard_normal(
                (num_queries + concurrency, WIDE_FEATURES)
            ).astype(np.float32)
            clients = [
                AsyncClipperClient("127.0.0.1", ingress.port, binary=True)
                for _ in range(concurrency)
            ]
            try:
                # Warm connections, placement and the shm rings (unique
                # inputs, so the cache stays cold for the timed window too).
                for i, client in enumerate(clients):
                    await client.predict("hotpath", inputs[num_queries + i])
                per_client = max(1, num_queries // concurrency)

                async def drive(client: AsyncClipperClient, offset: int) -> None:
                    base = offset * per_client
                    for k in range(per_client):
                        t0 = time.perf_counter()
                        await client.predict("hotpath", inputs[base + k])
                        latencies.append((time.perf_counter() - t0) * 1000.0)

                gc.collect()
                start = time.perf_counter()
                await asyncio.gather(
                    *(drive(client, i) for i, client in enumerate(clients))
                )
                elapsed = time.perf_counter() - start
            finally:
                for client in clients:
                    await client.close()
        finally:
            await ingress.stop()
    finally:
        for proc in workers:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in workers:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
        shutil.rmtree(cluster_dir, ignore_errors=True)
    return _result(scenario, elapsed, latencies)


async def run_cluster_http_1worker(
    num_queries: int = 2000, concurrency: int = 32
) -> HotpathResult:
    """The cluster workload on ONE worker daemon: the scaling baseline."""
    return await _run_cluster_http(
        "cluster_http_1worker", 1, num_queries=num_queries, concurrency=concurrency
    )


async def run_cluster_http_2workers(
    num_queries: int = 2000, concurrency: int = 32
) -> HotpathResult:
    """The same workload across TWO worker daemons; must beat 1.5× the baseline."""
    return await _run_cluster_http(
        "cluster_http_2workers", 2, num_queries=num_queries, concurrency=concurrency
    )


async def run_overload(num_queries: int = 2000) -> HotpathResult:
    """Flash crowd against an admission-controlled application.

    Unique inputs arrive on the :class:`~repro.workloads.arrivals.BurstyArrivals`
    schedule with bursts at ~5× the admission controller's sustainable
    rate.  The application runs the ``degrade`` shed policy over a bounded
    batching queue, so overflow traffic is answered *immediately* with the
    default output instead of queueing toward its SLO.

    The scenario self-checks graceful degradation before returning:

    * every query is answered (a prediction, degraded or not) — none hang
      or fail,
    * the flash crowd actually shed (at least one degraded answer), and
    * the shed counters and the ``queue.saturation`` gauge appear in the
      Prometheus exposition.

    The returned latencies cover *answered* queries, which is all of them;
    degraded answers resolve in microseconds, admitted ones cross the
    batching layer within the SLO.
    """
    from repro.core.config import OverloadConfig
    from repro.core.exceptions import OverloadError
    from repro.observability.prometheus import render_prometheus
    from repro.workloads.arrivals import BurstyArrivals

    sustainable_qps = 800.0
    clipper = Clipper(
        ClipperConfig(
            app_name="hotpath",
            latency_slo_ms=BENCH_SLO_MS,
            selection_policy="single",
            default_output=0,
            overload=OverloadConfig(
                rate_limit_qps=sustainable_qps,
                # Cap the burst allowance well under the workload size so the
                # flash crowd actually drains the bucket even in --quick runs.
                burst=min(int(sustainable_qps / 4), max(10, num_queries // 8)),
                shed_policy="degrade",
            ),
        )
    )
    clipper.deploy_model(
        ModelDeployment(
            name="noop",
            container_factory=lambda: NoOpContainer(output=1),
            batching=BatchingConfig(
                policy="aimd", initial_batch_size=4, max_queue_depth=256
            ),
        )
    )
    await clipper.start()
    answered: List[float] = []
    outcomes = {"ok": 0, "degraded": 0, "rejected": 0}
    try:
        rng = np.random.default_rng(6)
        inputs = rng.standard_normal((num_queries, INPUT_FEATURES))
        arrivals = BurstyArrivals(
            burst_qps=5.0 * sustainable_qps,
            idle_qps=sustainable_qps / 2.0,
            random_state=6,
        )
        times = arrivals.arrival_times(num_queries)
        start = time.perf_counter()

        async def issue(i: int) -> None:
            delay = times[i] - (time.perf_counter() - start)
            if delay > 0:
                await asyncio.sleep(delay)
            t0 = time.perf_counter()
            try:
                prediction = await clipper.predict(
                    Query(app_name="hotpath", input=inputs[i])
                )
            except OverloadError:
                outcomes["rejected"] += 1
                return
            answered.append((time.perf_counter() - t0) * 1000.0)
            if prediction.default_used:
                outcomes["degraded"] += 1
            else:
                outcomes["ok"] += 1

        await asyncio.gather(*(issue(i) for i in range(num_queries)))
        elapsed = time.perf_counter() - start
        if sum(outcomes.values()) != num_queries:
            raise RuntimeError(
                f"overload scenario lost queries: {outcomes} of {num_queries}"
            )
        if outcomes["rejected"]:
            raise RuntimeError(
                "overload scenario rejected queries under the degrade "
                f"policy: {outcomes}"
            )
        if not outcomes["degraded"]:
            raise RuntimeError(
                "overload scenario never shed — the flash crowd did not "
                f"exceed the admission rate: {outcomes}"
            )
        exposition = render_prometheus({"hotpath": clipper.metrics})
        if "overload_shed_total" not in exposition:
            raise RuntimeError(
                "shed counters missing from the Prometheus exposition"
            )
        if "queue_saturation" not in exposition:
            raise RuntimeError(
                "queue.saturation gauge missing from the Prometheus exposition"
            )
    finally:
        await clipper.stop()
    return _result("overload", elapsed, answered)


async def run_ensemble(num_queries: int = 3000, width: int = 4) -> HotpathResult:
    """Four-model ensemble, repeated input: per-model bookkeeping × width."""
    clipper = _ensemble_clipper(width=width)
    await clipper.start()
    try:
        rng = np.random.default_rng(2)
        x = rng.standard_normal(INPUT_FEATURES)
        await clipper.predict(Query(app_name="hotpath", input=x))
        queries = [Query(app_name="hotpath", input=x) for _ in range(num_queries)]
        elapsed, latencies = await _drive(clipper, queries, concurrency=1)
    finally:
        await clipper.stop()
    return _result("ensemble", elapsed, latencies)


async def run_telemetry_overhead(
    num_queries: int = 4000, rounds: int = 4
) -> List[HotpathResult]:
    """Price the tracing layer on the fastest path: cache hits, traced vs not.

    Two identical single-model applications serve the same repeated input —
    one with the default tracing configuration (1/256 head sampling plus
    shadow tail-capture), one with tracing disabled outright (``begin``
    returns before touching the pool).  The workload alternates between them
    in ``rounds`` interleaved slices so scheduler drift and allocator state
    hit both sides equally.  The pair of results ("telemetry_on" /
    "telemetry_off") is the evidence for the near-zero-overhead requirement:
    the traced side must stay within a few percent of the untraced side.
    """
    clipper_on = _single_model_clipper(tracing=TracingConfig())
    clipper_off = _single_model_clipper(tracing=TracingConfig(enabled=False))
    await clipper_on.start()
    await clipper_off.start()
    elapsed = {"telemetry_on": 0.0, "telemetry_off": 0.0}
    latencies: Dict[str, List[float]] = {"telemetry_on": [], "telemetry_off": []}
    try:
        rng = np.random.default_rng(5)
        x = rng.standard_normal(INPUT_FEATURES)
        await clipper_on.predict(Query(app_name="hotpath", input=x))
        await clipper_off.predict(Query(app_name="hotpath", input=x))
        per_round = max(1, num_queries // max(1, rounds))
        for _ in range(max(1, rounds)):
            for name, clipper in (
                ("telemetry_on", clipper_on),
                ("telemetry_off", clipper_off),
            ):
                queries = [
                    Query(app_name="hotpath", input=x) for _ in range(per_round)
                ]
                took, lats = await _drive(clipper, queries, concurrency=1)
                elapsed[name] += took
                latencies[name].extend(lats)
    finally:
        await clipper_on.stop()
        await clipper_off.stop()
    return [
        _result("telemetry_on", elapsed["telemetry_on"], latencies["telemetry_on"]),
        _result("telemetry_off", elapsed["telemetry_off"], latencies["telemetry_off"]),
    ]


def run_all(quick: bool = False) -> List[HotpathResult]:
    """Run every scenario (scaled down in ``quick`` mode) and return results."""
    from repro.rpc.shm import HAS_SHARED_MEMORY

    scale = 10 if quick else 1

    async def _run() -> List[HotpathResult]:
        results = [
            await run_cache_hit(num_queries=5000 // scale),
            await run_cache_miss(num_queries=2000 // scale),
            await run_cache_miss_wide(num_queries=2000 // scale),
            await run_cache_miss_tcp(num_queries=2000 // scale),
        ]
        if HAS_SHARED_MEMORY:
            results.append(await run_cache_miss_shm(num_queries=2000 // scale))
        results.extend(
            [
                await run_ensemble(num_queries=3000 // scale),
                await run_overload(num_queries=2000 // scale),
                await run_http_predict(num_queries=2000 // scale),
                await run_http_predict_binary(num_queries=2000 // scale),
                await run_cluster_http_1worker(num_queries=2000 // scale),
                await run_cluster_http_2workers(num_queries=2000 // scale),
            ]
        )
        results.extend(await run_telemetry_overhead(num_queries=4000 // scale))
        return results

    return asyncio.run(_run())
