"""Pre-built model suites shared by the benchmarks and examples.

The paper reuses a few model line-ups across experiments: the six MNIST
containers of Figure 3/4, the five-model ensembles of Figures 7/8, and the
per-dialect speech models of Figure 10.  Building them in one place keeps
the benchmark targets thin and guarantees the same calibration everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.containers.adapters import ClassifierContainer
from repro.containers.base import ModelContainer
from repro.containers.noop import NoOpContainer
from repro.containers.overhead import LanguageOverheadContainer
from repro.datasets.speech import TimitLikeCorpus, utterances_to_fixed_features
from repro.datasets.synthetic import SyntheticClassification
from repro.mlkit.forest import RandomForestClassifier
from repro.mlkit.kernel import KernelSVM
from repro.mlkit.linear import LinearSVM, LogisticRegression
from repro.mlkit.mlp import MLPClassifier
from repro.mlkit.naive_bayes import GaussianNB
from repro.mlkit.neighbors import KNeighborsClassifier


@dataclass
class ContainerSpec:
    """A named container factory plus its reporting metadata."""

    name: str
    framework: str
    factory: Callable[[], ModelContainer]


def figure3_container_suite(
    dataset: SyntheticClassification,
    random_state: int = 0,
    kernel_support_vectors: int = 1500,
) -> List[ContainerSpec]:
    """The six model containers profiled in Figure 3, trained on ``dataset``.

    * No-Op — pure system overhead.
    * Linear SVM (SKLearn flavour) — vectorised inference with a noticeable
      per-batch fixed cost (BLAS-style: cheap marginal cost per item).
    * Linear SVM (PySpark flavour) — low fixed cost but a higher per-item
      cost, reproducing Spark's efficiency on small batches (Figure 5).
    * Random Forest (SKLearn).
    * Kernel SVM (SKLearn) — the expensive container.
    * Logistic Regression (SKLearn).
    """
    X, y = dataset.X_train, dataset.y_train
    svm = LinearSVM(epochs=5, random_state=random_state).fit(X, y)
    logreg = LogisticRegression(epochs=5, random_state=random_state + 1).fit(X, y)
    forest = RandomForestClassifier(
        n_estimators=8, max_depth=8, random_state=random_state + 2
    ).fit(X, y)
    kernel = KernelSVM(
        max_support_vectors=kernel_support_vectors, random_state=random_state + 3
    ).fit(X, y)

    return [
        ContainerSpec("no-op", "noop", lambda: NoOpContainer()),
        ContainerSpec(
            "linear-svm-sklearn",
            "sklearn",
            lambda: LanguageOverheadContainer(
                ClassifierContainer(svm, framework="sklearn"),
                per_batch_overhead_ms=0.4,
                per_item_overhead_us=1.0,
                label="sklearn",
            ),
        ),
        ContainerSpec(
            "linear-svm-pyspark",
            "pyspark",
            lambda: LanguageOverheadContainer(
                ClassifierContainer(svm, framework="pyspark"),
                per_batch_overhead_ms=0.05,
                per_item_overhead_us=25.0,
                label="pyspark",
            ),
        ),
        ContainerSpec(
            "random-forest-sklearn",
            "sklearn",
            lambda: ClassifierContainer(forest, framework="sklearn"),
        ),
        ContainerSpec(
            "kernel-svm-sklearn",
            "sklearn",
            lambda: ClassifierContainer(kernel, framework="sklearn"),
        ),
        ContainerSpec(
            "logistic-regression-sklearn",
            "sklearn",
            lambda: ClassifierContainer(logreg, framework="sklearn"),
        ),
    ]


def heterogeneous_ensemble(
    dataset: SyntheticClassification,
    n_models: int = 5,
    random_state: int = 0,
) -> Dict[str, object]:
    """Train ``n_models`` models of deliberately different quality.

    Mirrors the Figure 8 setup ("five different Caffe models with varying
    levels of accuracy"): the accuracy spread is created the way it arises in
    practice — weaker models see less data, noisier labels or fewer features —
    so model 1 is clearly the weakest and the last model is the best.
    Different model families keep the ensemble's errors decorrelated, which is
    what makes the Figure 7 agreement-based confidence informative.
    """
    if not 2 <= n_models <= 8:
        raise ValueError("n_models must be between 2 and 8")
    rng = np.random.default_rng(random_state)
    X, y = dataset.X_train, dataset.y_train
    n = X.shape[0]

    def subsample(fraction: float):
        keep = rng.choice(n, size=max(int(n * fraction), 20), replace=False)
        return X[keep], y[keep]

    def noisy_labels(noise: float):
        flipped = y.copy()
        mask = rng.random(n) < noise
        flipped[mask] = rng.integers(0, dataset.n_classes, size=int(mask.sum()))
        return X, flipped

    # (name, estimator, training-view builder) from weakest to strongest.
    candidates = [
        (
            "model-1-small-sample-nb",
            GaussianNB(),
            lambda: subsample(0.15),
        ),
        (
            "model-2-noisy-forest",
            RandomForestClassifier(n_estimators=4, max_depth=4, random_state=random_state),
            lambda: noisy_labels(0.20),
        ),
        (
            "model-3-noisy-linear-svm",
            LinearSVM(epochs=4, random_state=random_state + 1),
            lambda: noisy_labels(0.10),
        ),
        (
            "model-4-logreg",
            LogisticRegression(epochs=8, random_state=random_state + 2),
            lambda: subsample(0.8),
        ),
        (
            "model-5-mlp",
            MLPClassifier(hidden_layers=(64, 32), epochs=25, learning_rate=0.03, random_state=random_state + 3),
            lambda: (X, y),
        ),
        (
            "model-6-knn",
            KNeighborsClassifier(n_neighbors=7, max_reference_points=1500, random_state=random_state + 4),
            lambda: subsample(0.5),
        ),
        (
            "model-7-deep-mlp",
            MLPClassifier(hidden_layers=(96, 64, 32), epochs=30, learning_rate=0.03, random_state=random_state + 5),
            lambda: (X, y),
        ),
        (
            "model-8-forest",
            RandomForestClassifier(n_estimators=10, max_depth=10, random_state=random_state + 6),
            lambda: (X, y),
        ),
    ]
    models = {}
    for name, model, view in candidates[:n_models]:
        X_view, y_view = view()
        models[name] = model.fit(X_view, y_view)
    return models


def ensemble_prediction_matrix(
    models: Dict[str, object], X: np.ndarray
) -> Dict[str, np.ndarray]:
    """Evaluate every model on ``X`` and return the per-model label arrays."""
    return {name: np.asarray(model.predict(X)) for name, model in models.items()}


def dialect_model_suite(
    corpus: TimitLikeCorpus,
    random_state: int = 0,
) -> Tuple[Dict[str, object], str]:
    """Train one model per dialect plus a dialect-oblivious global model.

    Returns ``(models, global_model_name)`` where ``models`` maps model name
    to a fitted classifier over the fixed-length utterance features.  Used by
    the Figure 10 personalization experiment.
    """
    models: Dict[str, object] = {}
    for dialect in range(corpus.n_dialects):
        utterances = corpus.utterances_for_dialect(dialect, split="train")
        if not utterances:
            continue
        X, y = utterances_to_fixed_features(utterances)
        model = LogisticRegression(epochs=30, learning_rate=0.1, random_state=random_state + dialect)
        models[f"dialect-{dialect}"] = model.fit(X, y)
    X_all, y_all = utterances_to_fixed_features(corpus.train)
    global_name = "no-dialect-global"
    models[global_name] = LogisticRegression(
        epochs=30, learning_rate=0.1, random_state=random_state + 100
    ).fit(X_all, y_all)
    return models, global_name


def build_user_streams(
    corpus: TimitLikeCorpus,
    models: Dict[str, object],
    max_steps: int = 9,
) -> Tuple[Dict[str, list], Dict[str, int]]:
    """Build per-user interaction streams for the personalization experiment.

    Each stream entry is ``(step, per_model_predictions, true_label)`` for one
    utterance of one held-out test speaker.
    """
    user_streams: Dict[str, list] = {}
    dialect_of_user: Dict[str, int] = {}
    for speaker in corpus.test_speakers():
        utterances = corpus.utterances_for_speaker(speaker)[:max_steps]
        if not utterances:
            continue
        X, y = utterances_to_fixed_features(utterances)
        per_model_all = {name: np.asarray(model.predict(X)) for name, model in models.items()}
        stream = []
        for step in range(X.shape[0]):
            per_model = {name: per_model_all[name][step] for name in models}
            stream.append((step, per_model, y[step]))
        user_key = f"user-{speaker}"
        user_streams[user_key] = stream
        dialect_of_user[user_key] = utterances[0].dialect
    return user_streams, dialect_of_user
