"""Live serving measurements: throughput and latency through the full stack.

These drivers are shared by the Figure 4 (batching strategies), Figure 5
(delayed batching) and Figure 11 (TensorFlow Serving comparison) benchmark
targets.  Each builds a serving system around a caller-supplied container
factory, drives it with a workload client, and returns a
:class:`ServingMeasurement` with the throughput and latency distribution.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence

from repro.baselines.tfserving import TFServingLikeServer
from repro.containers.base import ModelContainer
from repro.core.clipper import Clipper
from repro.core.config import BatchingConfig, ClipperConfig, ModelDeployment
from repro.core.metrics import summarize_latencies, throughput_qps
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.clients import ClosedLoopClient, OpenLoopClient


@dataclass
class ServingMeasurement:
    """Throughput and latency of one serving run."""

    label: str
    throughput_qps: float
    mean_latency_ms: float
    p99_latency_ms: float
    num_queries: int
    num_errors: int
    mean_batch_size: float = 0.0

    def as_row(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "throughput_qps": self.throughput_qps,
            "mean_latency_ms": self.mean_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "mean_batch_size": self.mean_batch_size,
            "errors": self.num_errors,
        }


def run_clipper_serving(
    container_factory: Callable[[], ModelContainer],
    inputs: Sequence[Any],
    *,
    label: str = "clipper",
    num_queries: int = 500,
    latency_slo_ms: float = 20.0,
    batching: Optional[BatchingConfig] = None,
    num_replicas: int = 1,
    concurrency: int = 32,
    arrivals: Optional[ArrivalProcess] = None,
    cache_size: int = 0,
    selection_policy: str = "single",
    straggler_mitigation: bool = False,
    serialize_rpc: bool = True,
) -> ServingMeasurement:
    """Serve one model through the full Clipper stack and measure it.

    By default the workload is closed-loop (maximum sustained throughput,
    like the paper's Figures 4 and 11); pass ``arrivals`` for an open-loop
    run (moderate load, like Figure 5).  The prediction cache defaults to
    disabled so repeated benchmark inputs measure model evaluation rather
    than cache hits.
    """
    config = ClipperConfig(
        app_name=f"bench-{label}",
        latency_slo_ms=latency_slo_ms,
        selection_policy=selection_policy,
        cache_size=cache_size,
        straggler_mitigation=straggler_mitigation,
    )
    clipper = Clipper(config)
    clipper.deploy_model(
        ModelDeployment(
            name="model",
            container_factory=container_factory,
            num_replicas=num_replicas,
            batching=batching or BatchingConfig(),
            serialize_rpc=serialize_rpc,
        )
    )

    async def run() -> ServingMeasurement:
        await clipper.start()
        try:
            if arrivals is None:
                client = ClosedLoopClient(clipper, inputs, concurrency=concurrency)
            else:
                client = OpenLoopClient(clipper, inputs, arrivals)
            result = await client.run(num_queries)
        finally:
            await clipper.stop()
        batch_sizes = clipper.metrics.histogram("model.model:1.batch_size")
        mean_batch = batch_sizes.mean() if batch_sizes.count else 0.0
        summary = result.latency_summary()
        return ServingMeasurement(
            label=label,
            throughput_qps=result.throughput_qps,
            mean_latency_ms=summary["mean"],
            p99_latency_ms=summary["p99"],
            num_queries=result.num_queries,
            num_errors=result.num_errors,
            mean_batch_size=float(mean_batch),
        )

    return _run_on_fresh_loop(run())


def _run_on_fresh_loop(coroutine):
    """Run a coroutine on a dedicated event loop and close it afterwards."""
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coroutine)
    finally:
        loop.close()


def run_tfserving_baseline(
    container: ModelContainer,
    inputs: Sequence[Any],
    *,
    label: str = "tf-serving",
    num_queries: int = 500,
    batch_size: int = 32,
    batch_timeout_ms: float = 2.0,
    concurrency: int = 32,
) -> ServingMeasurement:
    """Serve one model through the TF-Serving-like baseline and measure it."""

    async def run() -> ServingMeasurement:
        server = TFServingLikeServer(
            container, batch_size=batch_size, batch_timeout_ms=batch_timeout_ms
        )
        await server.start()
        latencies = []
        errors = 0
        remaining = num_queries
        lock = asyncio.Lock()
        import time as _time

        async def worker() -> None:
            nonlocal remaining, errors
            index = 0
            while True:
                async with lock:
                    if remaining <= 0:
                        return
                    remaining -= 1
                    index = num_queries - remaining
                x = inputs[index % len(inputs)]
                start = _time.monotonic()
                try:
                    await server.predict(x)
                    latencies.append((_time.monotonic() - start) * 1000.0)
                except Exception:
                    errors += 1

        start = _time.perf_counter()
        await asyncio.gather(*[worker() for _ in range(concurrency)])
        elapsed = _time.perf_counter() - start
        await server.stop()
        summary = summarize_latencies(latencies)
        batch_hist = server.metrics.histogram("batch.size")
        mean_batch = batch_hist.mean() if batch_hist.count else 0.0
        return ServingMeasurement(
            label=label,
            throughput_qps=throughput_qps(num_queries - errors, elapsed),
            mean_latency_ms=summary["mean"],
            p99_latency_ms=summary["p99"],
            num_queries=num_queries,
            num_errors=errors,
            mean_batch_size=float(mean_batch),
        )

    return _run_on_fresh_loop(run())
