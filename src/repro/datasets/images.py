"""MNIST-, CIFAR- and ImageNet-like synthetic object-recognition datasets.

Each loader preserves the corresponding dataset's input dimensionality and
label cardinality (Table 1) while allowing a smaller sample count for fast
laptop-scale experiments.  Difficulty increases from MNIST to ImageNet so the
accuracy spread between cheap and expensive models matches the paper's
qualitative behaviour.
"""

from __future__ import annotations

from typing import Optional

from repro.datasets.synthetic import SyntheticClassification, make_classification

#: Paper input dimensionalities (Table 1).
MNIST_SHAPE = (28, 28)
CIFAR_SHAPE = (32, 32, 3)
#: The paper's ImageNet models consume 299x299x3 images; the synthetic
#: stand-in uses a reduced feature dimension (as if pre-pooled embeddings)
#: so laptop-scale serving remains feasible, but keeps the 1000-way labels
#: scaled down to 100 classes for trainability of the numpy zoo.
IMAGENET_FEATURES = 2048
IMAGENET_CLASSES = 100


def load_mnist_like(
    n_samples: int = 4000,
    random_state: Optional[int] = 0,
    n_features: Optional[int] = None,
) -> SyntheticClassification:
    """MNIST stand-in: 784 features (28×28), 10 classes, easy separability."""
    n_features = n_features or 28 * 28
    return make_classification(
        n_samples=n_samples,
        n_features=n_features,
        n_classes=10,
        n_informative=24,
        difficulty=0.5,
        name="mnist-like",
        input_shape=MNIST_SHAPE if n_features == 28 * 28 else (n_features,),
        random_state=random_state,
    )


def load_cifar_like(
    n_samples: int = 4000,
    random_state: Optional[int] = 1,
    n_features: Optional[int] = None,
) -> SyntheticClassification:
    """CIFAR-10 stand-in: 3072 features (32×32×3), 10 classes, moderate difficulty."""
    n_features = n_features or 32 * 32 * 3
    return make_classification(
        n_samples=n_samples,
        n_features=n_features,
        n_classes=10,
        n_informative=24,
        difficulty=1.5,
        name="cifar-like",
        input_shape=CIFAR_SHAPE if n_features == 32 * 32 * 3 else (n_features,),
        random_state=random_state,
    )


def load_imagenet_like(
    n_samples: int = 3000,
    n_classes: int = IMAGENET_CLASSES,
    random_state: Optional[int] = 2,
    n_features: int = IMAGENET_FEATURES,
) -> SyntheticClassification:
    """ImageNet stand-in: high-dimensional features, many classes, hard task."""
    return make_classification(
        n_samples=n_samples,
        n_features=n_features,
        n_classes=n_classes,
        n_informative=48,
        difficulty=2.5,
        name="imagenet-like",
        input_shape=(n_features,),
        random_state=random_state,
    )
