"""Synthetic stand-ins for the paper's benchmark datasets (Table 1).

The real MNIST / CIFAR-10 / ImageNet / TIMIT corpora are not available in
this offline environment, so each has a deterministic synthetic generator
matched to the original's input dimensionality, label cardinality and
relative difficulty.  The serving experiments only depend on those
structural properties, never on the semantic content of the images/audio.
"""

from repro.datasets.synthetic import SyntheticClassification, make_classification
from repro.datasets.images import (
    load_cifar_like,
    load_imagenet_like,
    load_mnist_like,
)
from repro.datasets.speech import DialectUtterance, load_timit_like
from repro.datasets.registry import DATASET_REGISTRY, DatasetInfo, dataset_table

__all__ = [
    "SyntheticClassification",
    "make_classification",
    "load_mnist_like",
    "load_cifar_like",
    "load_imagenet_like",
    "load_timit_like",
    "DialectUtterance",
    "DATASET_REGISTRY",
    "DatasetInfo",
    "dataset_table",
]
