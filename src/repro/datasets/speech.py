"""TIMIT-like synthetic speech corpus with dialect structure.

The paper's speech benchmark (§2.1, Figure 10) uses the TIMIT corpus: 630
speakers across eight English dialect regions, with per-speaker feedback
used to personalise model selection.  The synthetic stand-in generates
MFCC-like frame sequences whose class-conditional distributions are
*dialect-dependent*: a model trained on dialect ``d`` is accurate for
speakers of ``d`` and noticeably worse for other dialects, which is the
property the personalization experiment needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: TIMIT has eight dialect regions and 39 collapsed phoneme classes.
N_DIALECTS = 8
N_PHONEME_CLASSES = 39
#: Number of transcription classes (word-level labels) in the stand-in task.
N_WORD_CLASSES = 10
#: MFCC-like feature dimensionality per frame.
N_MFCC = 13


@dataclass
class DialectUtterance:
    """One synthetic utterance: a frame sequence plus its labels."""

    frames: np.ndarray  # (T, N_MFCC)
    label: int  # word/transcription class
    dialect: int
    speaker_id: int


@dataclass
class TimitLikeCorpus:
    """The generated corpus split by speaker into train and test sets."""

    train: List[DialectUtterance] = field(default_factory=list)
    test: List[DialectUtterance] = field(default_factory=list)
    n_dialects: int = N_DIALECTS
    n_classes: int = N_WORD_CLASSES
    n_features: int = N_MFCC

    def utterances_for_dialect(
        self, dialect: int, split: str = "train"
    ) -> List[DialectUtterance]:
        """All utterances of one dialect from the given split."""
        source = self.train if split == "train" else self.test
        return [u for u in source if u.dialect == dialect]

    def test_speakers(self) -> List[int]:
        """Unique speaker ids present in the test split."""
        return sorted({u.speaker_id for u in self.test})

    def utterances_for_speaker(self, speaker_id: int) -> List[DialectUtterance]:
        """Test utterances for one speaker (used to simulate a user session)."""
        return [u for u in self.test if u.speaker_id == speaker_id]


def load_timit_like(
    n_speakers: int = 64,
    utterances_per_speaker: int = 12,
    min_frames: int = 20,
    max_frames: int = 40,
    dialect_shift: float = 2.0,
    random_state: Optional[int] = 7,
) -> TimitLikeCorpus:
    """Generate the TIMIT-like corpus.

    Parameters
    ----------
    n_speakers:
        Number of synthetic speakers, distributed round-robin over the eight
        dialects; 20% of speakers per dialect are held out as the test set.
    utterances_per_speaker:
        Utterances generated for each speaker.
    dialect_shift:
        Magnitude of the dialect-specific offset applied to class centroids.
        Larger values make cross-dialect models worse, amplifying the benefit
        of personalization.
    """
    if n_speakers < N_DIALECTS * 2:
        raise ValueError(f"n_speakers must be at least {N_DIALECTS * 2}")
    if max_frames < min_frames:
        raise ValueError("max_frames must be >= min_frames")

    rng = np.random.default_rng(random_state)

    # Class centroids shared across dialects.  Each dialect then perturbs each
    # class centroid independently (dialects "pronounce" each word
    # differently), which is what makes a dialect-oblivious model genuinely
    # worse than per-dialect models — the property Figure 10 depends on.
    base_centroids = rng.normal(0.0, 1.0, size=(N_WORD_CLASSES, N_MFCC))
    dialect_class_offsets = rng.normal(
        0.0, 0.45 * dialect_shift, size=(N_DIALECTS, N_WORD_CLASSES, N_MFCC)
    )

    corpus = TimitLikeCorpus()
    speakers_per_dialect = n_speakers // N_DIALECTS
    speaker_id = 0
    for dialect in range(N_DIALECTS):
        n_test_speakers = max(1, speakers_per_dialect // 5)
        for local_idx in range(speakers_per_dialect):
            is_test = local_idx < n_test_speakers
            speaker_offset = rng.normal(0.0, 0.35, size=N_MFCC)
            for _ in range(utterances_per_speaker):
                label = int(rng.integers(0, N_WORD_CLASSES))
                T = int(rng.integers(min_frames, max_frames + 1))
                centroid = (
                    base_centroids[label]
                    + dialect_class_offsets[dialect, label]
                    + speaker_offset
                )
                # A per-utterance offset gives irreducible variability that
                # frame averaging cannot remove, keeping error rates realistic.
                utterance_offset = rng.normal(0.0, 0.7, size=N_MFCC)
                # Frames follow a slow random walk around the centroid, like
                # the temporal correlation of real MFCC streams.
                noise = rng.normal(0.0, 1.0, size=(T, N_MFCC))
                walk = np.cumsum(rng.normal(0.0, 0.15, size=(T, N_MFCC)), axis=0)
                frames = centroid[None, :] + utterance_offset[None, :] + noise + walk
                utterance = DialectUtterance(
                    frames=frames.astype(np.float64),
                    label=label,
                    dialect=dialect,
                    speaker_id=speaker_id,
                )
                if is_test:
                    corpus.test.append(utterance)
                else:
                    corpus.train.append(utterance)
            speaker_id += 1
    return corpus


def utterances_to_fixed_features(
    utterances: Sequence[DialectUtterance],
) -> Tuple[np.ndarray, np.ndarray]:
    """Summarise variable-length utterances into fixed-length feature vectors.

    Concatenates per-dimension mean, standard deviation and deltas so that
    fixed-input classifiers (linear models, MLPs) can also be trained on the
    speech task alongside the HMMs.
    """
    if not utterances:
        raise ValueError("utterances must be non-empty")
    features = []
    labels = []
    for utterance in utterances:
        frames = utterance.frames
        deltas = np.diff(frames, axis=0) if frames.shape[0] > 1 else np.zeros_like(frames)
        features.append(
            np.concatenate(
                [
                    frames.mean(axis=0),
                    frames.std(axis=0),
                    deltas.mean(axis=0),
                    deltas.std(axis=0),
                ]
            )
        )
        labels.append(utterance.label)
    return np.asarray(features), np.asarray(labels)
