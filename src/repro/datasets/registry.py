"""Dataset and model registries reproducing Tables 1 and 2 of the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.mlkit.zoo import TABLE2_ZOO, ZooEntry


@dataclass(frozen=True)
class DatasetInfo:
    """One row of Table 1 plus the synthetic stand-in's parameters."""

    name: str
    data_type: str
    paper_size: str
    paper_features: str
    paper_labels: int
    loader: str
    repro_features: int
    repro_labels: int


#: Table 1 of the paper, extended with the reproduction's stand-in metadata.
DATASET_REGISTRY: Dict[str, DatasetInfo] = {
    "mnist": DatasetInfo(
        name="MNIST",
        data_type="Image",
        paper_size="70K",
        paper_features="28x28",
        paper_labels=10,
        loader="repro.datasets.load_mnist_like",
        repro_features=28 * 28,
        repro_labels=10,
    ),
    "cifar": DatasetInfo(
        name="CIFAR",
        data_type="Image",
        paper_size="60K",
        paper_features="32x32x3",
        paper_labels=10,
        loader="repro.datasets.load_cifar_like",
        repro_features=32 * 32 * 3,
        repro_labels=10,
    ),
    "imagenet": DatasetInfo(
        name="ImageNet",
        data_type="Image",
        paper_size="1.26M",
        paper_features="299x299x3",
        paper_labels=1000,
        loader="repro.datasets.load_imagenet_like",
        repro_features=2048,
        repro_labels=100,
    ),
    "speech": DatasetInfo(
        name="Speech (TIMIT)",
        data_type="Sound",
        paper_size="6300",
        paper_features="5 sec.",
        paper_labels=39,
        loader="repro.datasets.load_timit_like",
        repro_features=13,
        repro_labels=10,
    ),
}


def dataset_table() -> List[Dict[str, object]]:
    """Render Table 1 as a list of row dictionaries (one per dataset)."""
    rows = []
    for key in ("mnist", "cifar", "imagenet", "speech"):
        info = DATASET_REGISTRY[key]
        rows.append(
            {
                "dataset": info.name,
                "type": info.data_type,
                "size": info.paper_size,
                "features": info.paper_features,
                "labels": info.paper_labels,
                "repro_features": info.repro_features,
                "repro_labels": info.repro_labels,
            }
        )
    return rows


def model_zoo_table() -> List[Dict[str, object]]:
    """Render Table 2 (the deep-model zoo) as a list of row dictionaries."""
    rows = []
    for key in sorted(TABLE2_ZOO):
        entry: ZooEntry = TABLE2_ZOO[key]
        rows.append(
            {
                "framework": entry.framework,
                "model": entry.name,
                "paper_size": entry.paper_size,
                "repro_hidden_layers": entry.hidden_layers,
            }
        )
    return rows
