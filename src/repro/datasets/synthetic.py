"""Core synthetic classification generator.

Data are drawn from per-class Gaussian clusters embedded in a random
subspace, then passed through an optional non-linear "pixel" expansion so
that linear and non-linear models separate in accuracy — the property that
drives the paper's ensemble and model-selection experiments.  A ``difficulty``
knob scales the class overlap so that the MNIST-like task is easy, the
CIFAR-like task moderate and the ImageNet-like task hard, preserving the
ordering of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class SyntheticClassification:
    """A generated classification dataset split into train and test halves."""

    name: str
    X_train: np.ndarray
    y_train: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray
    n_classes: int
    input_shape: Tuple[int, ...]

    @property
    def n_features(self) -> int:
        return int(np.prod(self.input_shape))

    @property
    def n_samples(self) -> int:
        return self.X_train.shape[0] + self.X_test.shape[0]

    def describe(self) -> str:
        return (
            f"{self.name}: {self.n_samples} samples, "
            f"{self.n_features} features {self.input_shape}, "
            f"{self.n_classes} classes"
        )


def make_classification(
    n_samples: int,
    n_features: int,
    n_classes: int,
    n_informative: Optional[int] = None,
    difficulty: float = 1.0,
    label_noise: Optional[float] = None,
    nonlinear: bool = True,
    test_fraction: float = 0.2,
    name: str = "synthetic",
    input_shape: Optional[Tuple[int, ...]] = None,
    random_state: Optional[int] = None,
) -> SyntheticClassification:
    """Generate a synthetic classification dataset.

    Parameters
    ----------
    n_samples:
        Total number of rows (train + test).
    n_features:
        Output feature dimensionality (e.g. 784 for the MNIST stand-in).
    n_classes:
        Number of class labels.
    n_informative:
        Dimensionality of the latent informative subspace; defaults to
        ``min(32, n_features)``.
    difficulty:
        Scales class overlap: 0 is trivially separable, larger values make
        the classes harder to distinguish.
    label_noise:
        Fraction of labels flipped uniformly at random, which lower-bounds
        every model's achievable error (a stand-in for Bayes error).  Defaults
        to ``min(0.04 * difficulty, 0.3)``.
    nonlinear:
        When true, the latent features are expanded through a fixed random
        non-linear map so non-linear models (forests, MLPs, kernel machines)
        can outperform linear ones.
    test_fraction:
        Fraction of rows held out as the test set.
    input_shape:
        Logical input shape recorded for Table 1 (e.g. ``(28, 28)``).
    """
    if n_samples < 2 * n_classes:
        raise ValueError("n_samples must be at least twice n_classes")
    if n_classes < 2:
        raise ValueError("n_classes must be >= 2")
    if n_features < 1:
        raise ValueError("n_features must be >= 1")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if difficulty < 0:
        raise ValueError("difficulty must be non-negative")
    if label_noise is None:
        label_noise = min(0.04 * difficulty, 0.3)
    if not 0.0 <= label_noise < 1.0:
        raise ValueError("label_noise must be in [0, 1)")

    rng = np.random.default_rng(random_state)
    n_informative = n_informative or min(32, n_features)
    n_informative = min(n_informative, n_features)

    # Class centroids in the informative subspace; spacing shrinks as
    # difficulty grows, which raises Bayes error.  The per-dimension scale is
    # normalised by sqrt(n_informative) so class overlap is controlled by
    # ``difficulty`` rather than by the latent dimensionality.
    separation = 7.0 / (0.4 + difficulty)
    centroids = rng.normal(0.0, 1.0, size=(n_classes, n_informative))
    centroids *= separation / np.maximum(
        np.linalg.norm(centroids, axis=1, keepdims=True), 1e-9
    )

    labels = rng.integers(0, n_classes, size=n_samples)
    latent = centroids[labels] + rng.normal(0.0, 1.0, size=(n_samples, n_informative))

    if label_noise > 0:
        flip_mask = rng.random(n_samples) < label_noise
        flips = rng.integers(0, n_classes, size=n_samples)
        labels = np.where(flip_mask, flips, labels)

    if nonlinear:
        # Fixed random feature map: half linear projection, half squashed
        # random projections, so class boundaries are curved in output space.
        n_linear = n_features // 2
        n_nonlinear = n_features - n_linear
        W_linear = rng.normal(0.0, 1.0, size=(n_informative, n_linear))
        W_nonlinear = rng.normal(0.0, 1.0, size=(n_informative, n_nonlinear))
        b_nonlinear = rng.normal(0.0, 0.5, size=n_nonlinear)
        X = np.concatenate(
            [latent @ W_linear, np.tanh(latent @ W_nonlinear + b_nonlinear)],
            axis=1,
        )
    else:
        projection = rng.normal(0.0, 1.0, size=(n_informative, n_features))
        X = latent @ projection

    X += rng.normal(0.0, 0.25 * (1.0 + difficulty), size=X.shape)
    X = X.astype(np.float64)

    order = rng.permutation(n_samples)
    X, labels = X[order], labels[order]
    n_test = max(1, int(round(n_samples * test_fraction)))
    X_test, y_test = X[:n_test], labels[:n_test]
    X_train, y_train = X[n_test:], labels[n_test:]

    return SyntheticClassification(
        name=name,
        X_train=X_train,
        y_train=y_train,
        X_test=X_test,
        y_test=y_test,
        n_classes=n_classes,
        input_shape=input_shape or (n_features,),
    )
