"""Linear models: multi-class linear SVM and logistic regression.

Both models are trained with mini-batch stochastic gradient descent and
predict with a single dense matrix product, which is what makes them the
cheapest "real" model containers in the paper's latency profiles (Figure 3):
per-query cost is one vector-matrix multiply and batching amortizes the
fixed dispatch overhead almost perfectly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mlkit.base import (
    BaseEstimator,
    ClassifierMixin,
    as_rng,
    check_Xy,
    check_2d,
    one_hot,
    softmax,
)


class _LinearModelBase(BaseEstimator, ClassifierMixin):
    """Shared SGD loop for linear classifiers (weights + bias per class)."""

    def __init__(
        self,
        learning_rate: float = 0.05,
        regularization: float = 1e-4,
        epochs: int = 10,
        batch_size: int = 64,
        random_state: Optional[int] = None,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.learning_rate = learning_rate
        self.regularization = regularization
        self.epochs = epochs
        self.batch_size = batch_size
        self.random_state = random_state

    def fit(self, X, y):
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        rng = as_rng(self.random_state)
        n_samples, n_features = X.shape
        n_classes = self.classes_.shape[0]
        self.coef_ = rng.normal(0.0, 0.01, size=(n_features, n_classes))
        self.intercept_ = np.zeros(n_classes)
        for epoch in range(self.epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, self.batch_size):
                batch_idx = order[start : start + self.batch_size]
                self._sgd_step(X[batch_idx], encoded[batch_idx], epoch)
        return self

    def decision_function(self, X) -> np.ndarray:
        """Raw per-class scores ``X @ coef_ + intercept_``."""
        self._check_fitted()
        X = check_2d(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fit on {self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_

    def _sgd_step(self, X_batch, y_batch, epoch: int) -> None:  # pragma: no cover
        raise NotImplementedError


class LinearSVM(_LinearModelBase):
    """Multi-class linear SVM trained with the Pegasos-style hinge-loss SGD.

    The multi-class extension uses one-vs-rest hinge losses with a shared
    SGD schedule.  ``predict_proba`` returns a softmax over margins so that
    linear SVMs can participate in probability-weighted ensembles.
    """

    def _sgd_step(self, X_batch, y_batch, epoch: int) -> None:
        n_classes = self.classes_.shape[0]
        # One-vs-rest targets in {-1, +1}.
        targets = one_hot(y_batch, n_classes) * 2.0 - 1.0
        margins = (X_batch @ self.coef_ + self.intercept_) * targets
        # Hinge subgradient: active where margin < 1.
        active = (margins < 1.0).astype(np.float64) * targets
        step = self.learning_rate / (1.0 + 0.1 * epoch)
        grad_w = -(X_batch.T @ active) / X_batch.shape[0]
        grad_w += self.regularization * self.coef_
        grad_b = -active.mean(axis=0)
        self.coef_ -= step * grad_w
        self.intercept_ -= step * grad_b

    def predict(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        return self._decode_labels(np.argmax(scores, axis=1))

    def predict_proba(self, X) -> np.ndarray:
        return softmax(self.decision_function(X))


class LogisticRegression(_LinearModelBase):
    """Multinomial logistic regression trained with mini-batch SGD."""

    def _sgd_step(self, X_batch, y_batch, epoch: int) -> None:
        n_classes = self.classes_.shape[0]
        probs = softmax(X_batch @ self.coef_ + self.intercept_)
        targets = one_hot(y_batch, n_classes)
        error = probs - targets
        step = self.learning_rate / (1.0 + 0.1 * epoch)
        grad_w = (X_batch.T @ error) / X_batch.shape[0]
        grad_w += self.regularization * self.coef_
        grad_b = error.mean(axis=0)
        self.coef_ -= step * grad_w
        self.intercept_ -= step * grad_b

    def predict_proba(self, X) -> np.ndarray:
        return softmax(self.decision_function(X))
