"""Gaussian-emission hidden Markov model — the HTK stand-in.

The paper's speech benchmark trains HTK hidden Markov models whose outputs
are phoneme sequences for TIMIT utterances.  This module implements a
Gaussian-emission HMM with:

* supervised estimation from state-labelled frame sequences (the synthetic
  TIMIT-like data provides per-frame phoneme labels, as forced alignment
  would in the real pipeline),
* forward-algorithm log-likelihood scoring, and
* Viterbi decoding of the most likely state (phoneme) sequence.

A :class:`HMMPhonemeClassifier` wraps one HMM per dialect-conditioned class
and exposes the ``predict``/``predict_proba`` classifier API used by the rest
of the serving stack, where the "label" of an utterance is its phoneme
sequence collapsed to a transcription class.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.mlkit.base import BaseEstimator, ClassifierMixin, as_rng, softmax

_LOG_ZERO = -1e30


class GaussianHMM(BaseEstimator):
    """HMM with diagonal-covariance Gaussian emissions.

    Parameters
    ----------
    n_states:
        Number of hidden states (phonemes).
    n_features:
        Dimensionality of the observation vectors (MFCC-like frames).
    var_floor:
        Lower bound applied to emission variances for numerical stability.
    """

    def __init__(
        self,
        n_states: int,
        n_features: int,
        var_floor: float = 1e-3,
        random_state: Optional[int] = None,
    ) -> None:
        if n_states < 1:
            raise ValueError("n_states must be >= 1")
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        self.n_states = n_states
        self.n_features = n_features
        self.var_floor = var_floor
        self.random_state = random_state
        rng = as_rng(random_state)
        self.start_prob_ = np.full(n_states, 1.0 / n_states)
        self.trans_prob_ = np.full((n_states, n_states), 1.0 / n_states)
        self.means_ = rng.normal(0.0, 1.0, size=(n_states, n_features))
        self.vars_ = np.ones((n_states, n_features))

    # -- estimation ---------------------------------------------------------

    def fit_supervised(
        self,
        sequences: Sequence[np.ndarray],
        state_sequences: Sequence[np.ndarray],
    ) -> "GaussianHMM":
        """Estimate parameters from frame sequences with known state labels."""
        if len(sequences) != len(state_sequences):
            raise ValueError("sequences and state_sequences must align")
        if not sequences:
            raise ValueError("at least one training sequence is required")

        start_counts = np.full(self.n_states, 1e-3)
        trans_counts = np.full((self.n_states, self.n_states), 1e-3)
        sums = np.zeros((self.n_states, self.n_features))
        sq_sums = np.zeros((self.n_states, self.n_features))
        frame_counts = np.zeros(self.n_states)

        for frames, states in zip(sequences, state_sequences):
            frames = np.asarray(frames, dtype=np.float64)
            states = np.asarray(states, dtype=int)
            if frames.shape[0] != states.shape[0]:
                raise ValueError("frames and states must have the same length")
            if frames.shape[1] != self.n_features:
                raise ValueError(
                    f"frames have {frames.shape[1]} features, expected {self.n_features}"
                )
            start_counts[states[0]] += 1.0
            for prev, nxt in zip(states[:-1], states[1:]):
                trans_counts[prev, nxt] += 1.0
            for state in range(self.n_states):
                mask = states == state
                if not np.any(mask):
                    continue
                rows = frames[mask]
                sums[state] += rows.sum(axis=0)
                sq_sums[state] += (rows * rows).sum(axis=0)
                frame_counts[state] += rows.shape[0]

        self.start_prob_ = start_counts / start_counts.sum()
        self.trans_prob_ = trans_counts / trans_counts.sum(axis=1, keepdims=True)
        for state in range(self.n_states):
            if frame_counts[state] > 0:
                mean = sums[state] / frame_counts[state]
                var = sq_sums[state] / frame_counts[state] - mean * mean
                self.means_[state] = mean
                self.vars_[state] = np.maximum(var, self.var_floor)
        return self

    # -- scoring ------------------------------------------------------------

    def _log_emission(self, frames: np.ndarray) -> np.ndarray:
        """Log emission probabilities of shape (T, n_states)."""
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 2 or frames.shape[1] != self.n_features:
            raise ValueError(
                f"frames must be (T, {self.n_features}), got {frames.shape}"
            )
        diff = frames[:, None, :] - self.means_[None, :, :]
        log_prob = -0.5 * np.sum(
            np.log(2.0 * np.pi * self.vars_)[None, :, :]
            + diff * diff / self.vars_[None, :, :],
            axis=2,
        )
        return log_prob

    def log_likelihood(self, frames: np.ndarray) -> float:
        """Forward-algorithm log-likelihood of one observation sequence."""
        log_emission = self._log_emission(frames)
        log_start = np.log(self.start_prob_ + 1e-300)
        log_trans = np.log(self.trans_prob_ + 1e-300)
        alpha = log_start + log_emission[0]
        for t in range(1, log_emission.shape[0]):
            alpha = log_emission[t] + _logsumexp_rows(alpha[:, None] + log_trans)
        return float(_logsumexp(alpha))

    def viterbi(self, frames: np.ndarray) -> np.ndarray:
        """Most likely hidden-state sequence for one observation sequence."""
        log_emission = self._log_emission(frames)
        T = log_emission.shape[0]
        log_start = np.log(self.start_prob_ + 1e-300)
        log_trans = np.log(self.trans_prob_ + 1e-300)
        delta = log_start + log_emission[0]
        backpointers = np.zeros((T, self.n_states), dtype=int)
        for t in range(1, T):
            scores = delta[:, None] + log_trans
            backpointers[t] = np.argmax(scores, axis=0)
            delta = log_emission[t] + np.max(scores, axis=0)
        states = np.zeros(T, dtype=int)
        states[-1] = int(np.argmax(delta))
        for t in range(T - 2, -1, -1):
            states[t] = backpointers[t + 1, states[t + 1]]
        return states


def _logsumexp(values: np.ndarray) -> float:
    peak = np.max(values)
    if peak <= _LOG_ZERO:
        return _LOG_ZERO
    return float(peak + np.log(np.sum(np.exp(values - peak))))


def _logsumexp_rows(matrix: np.ndarray) -> np.ndarray:
    peak = np.max(matrix, axis=0)
    return peak + np.log(np.sum(np.exp(matrix - peak[None, :]), axis=0))


class HMMPhonemeClassifier(BaseEstimator, ClassifierMixin):
    """Utterance classifier built from one Gaussian HMM per class.

    Each class (e.g. a word / transcription id in the synthetic TIMIT-like
    benchmark) gets its own HMM trained on that class's utterances; an
    utterance is classified by maximum log-likelihood across class HMMs,
    mirroring the classic HTK isolated-recognition recipe.
    """

    def __init__(
        self,
        n_states: int = 5,
        n_features: int = 13,
        random_state: Optional[int] = None,
    ) -> None:
        self.n_states = n_states
        self.n_features = n_features
        self.random_state = random_state

    def fit(self, sequences: Sequence[np.ndarray], y) -> "HMMPhonemeClassifier":
        y = np.asarray(y)
        if len(sequences) != y.shape[0]:
            raise ValueError("sequences and y must align")
        self.classes_ = np.unique(y)
        if self.classes_.shape[0] < 2:
            raise ValueError("classifier requires at least two classes")
        rng = as_rng(self.random_state)
        self.models_: Dict[object, GaussianHMM] = {}
        for cls in self.classes_:
            cls_sequences = [s for s, label in zip(sequences, y) if label == cls]
            hmm = GaussianHMM(
                n_states=self.n_states,
                n_features=self.n_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            # Without forced alignments, assign frames to states uniformly in
            # order — the standard flat-start initialisation.
            state_seqs = [
                np.minimum(
                    (np.arange(len(seq)) * self.n_states) // max(len(seq), 1),
                    self.n_states - 1,
                )
                for seq in cls_sequences
            ]
            hmm.fit_supervised(cls_sequences, state_seqs)
            self.models_[cls] = hmm
        return self

    def decision_function(self, sequences: Sequence[np.ndarray]) -> np.ndarray:
        self._check_fitted()
        scores = np.zeros((len(sequences), self.classes_.shape[0]))
        for i, seq in enumerate(sequences):
            for j, cls in enumerate(self.classes_):
                scores[i, j] = self.models_[cls].log_likelihood(np.asarray(seq))
        return scores

    def predict_proba(self, sequences: Sequence[np.ndarray]) -> np.ndarray:
        # Log-likelihoods can be large in magnitude; normalise per row before
        # the softmax so probabilities stay informative.
        scores = self.decision_function(sequences)
        scores = scores - scores.mean(axis=1, keepdims=True)
        scores = scores / (np.abs(scores).max(axis=1, keepdims=True) + 1e-9)
        return softmax(scores * 5.0)

    def predict(self, sequences: Sequence[np.ndarray]) -> np.ndarray:
        scores = self.decision_function(sequences)
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, sequences: Sequence[np.ndarray], y) -> float:
        y = np.asarray(y)
        return float(np.mean(self.predict(sequences) == y))
