"""Preprocessing utilities: feature scaling and dataset splitting."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.mlkit.base import BaseEstimator, as_rng, check_2d


class StandardScaler(BaseEstimator):
    """Standardize features to zero mean and unit variance.

    Constant features (zero variance) are left unscaled to avoid division by
    zero, matching the behaviour a user of scikit-learn would expect.
    """

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X) -> "StandardScaler":
        X = check_2d(X)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted yet; call fit() first")
        X = check_2d(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fit on {self.mean_.shape[0]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


def train_test_split(
    X,
    y,
    test_size: float = 0.25,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split ``(X, y)`` into train and test partitions.

    Parameters
    ----------
    test_size:
        Fraction of rows assigned to the test partition, in (0, 1).
    random_state:
        Seed or Generator controlling the shuffle.
    """
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y must have the same number of rows")
    rng = as_rng(random_state)
    n = X.shape[0]
    indices = rng.permutation(n)
    n_test = max(1, int(round(n * test_size)))
    n_test = min(n_test, n - 1)
    test_idx = indices[:n_test]
    train_idx = indices[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]
