"""RBF kernel SVM — the expensive model container of Figure 3.

Training uses a kernel ridge-style least-squares fit against one-hot targets
on a (sub)set of support vectors, which keeps training tractable while
preserving the property the paper cares about: *prediction* requires
computing an RBF kernel between the query and every support vector, so the
per-query cost is O(n_support · n_features) and dominates any fixed batch
overhead.  This is exactly why the kernel SVM's maximum batch size under a
20 ms SLO is ~241× smaller than the linear SVM's in the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mlkit.base import (
    BaseEstimator,
    ClassifierMixin,
    as_rng,
    check_Xy,
    check_2d,
    one_hot,
    softmax,
)


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
    """Dense RBF kernel matrix ``exp(-gamma * ||a - b||^2)``."""
    a_sq = np.sum(A * A, axis=1)[:, None]
    b_sq = np.sum(B * B, axis=1)[None, :]
    squared = a_sq + b_sq - 2.0 * (A @ B.T)
    np.maximum(squared, 0.0, out=squared)
    return np.exp(-gamma * squared)


class KernelSVM(BaseEstimator, ClassifierMixin):
    """Multi-class RBF kernel machine with a bounded support set.

    Parameters
    ----------
    gamma:
        RBF bandwidth; ``None`` uses ``1 / (n_features * Var(X))``.
    regularization:
        Ridge term added to the kernel system during training.
    max_support_vectors:
        Cap on the number of training rows kept as support vectors; a random
        subset is used when the training set is larger.  This bounds both
        training cost and, importantly for serving, per-query inference cost.
    """

    def __init__(
        self,
        gamma: Optional[float] = None,
        regularization: float = 1e-2,
        max_support_vectors: int = 2000,
        random_state: Optional[int] = None,
    ) -> None:
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        if max_support_vectors < 2:
            raise ValueError("max_support_vectors must be >= 2")
        self.gamma = gamma
        self.regularization = regularization
        self.max_support_vectors = max_support_vectors
        self.random_state = random_state

    def fit(self, X, y) -> "KernelSVM":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        rng = as_rng(self.random_state)
        if X.shape[0] > self.max_support_vectors:
            keep = rng.choice(X.shape[0], size=self.max_support_vectors, replace=False)
            X, encoded = X[keep], encoded[keep]
        self.support_vectors_ = X
        if self.gamma is None:
            variance = X.var()
            self.gamma_ = 1.0 / (X.shape[1] * variance) if variance > 0 else 1.0
        else:
            self.gamma_ = float(self.gamma)
        K = rbf_kernel(X, X, self.gamma_)
        targets = one_hot(encoded, self.classes_.shape[0]) * 2.0 - 1.0
        system = K + self.regularization * np.eye(K.shape[0])
        self.dual_coef_ = np.linalg.solve(system, targets)
        return self

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_2d(X)
        if X.shape[1] != self.support_vectors_.shape[1]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fit on "
                f"{self.support_vectors_.shape[1]}"
            )
        K = rbf_kernel(X, self.support_vectors_, self.gamma_)
        return K @ self.dual_coef_

    def predict(self, X) -> np.ndarray:
        return self._decode_labels(np.argmax(self.decision_function(X), axis=1))

    def predict_proba(self, X) -> np.ndarray:
        return softmax(self.decision_function(X))

    @property
    def n_support_(self) -> int:
        """Number of support vectors retained after fitting."""
        self._check_fitted()
        return int(self.support_vectors_.shape[0])
