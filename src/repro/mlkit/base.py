"""Estimator base classes and input validation helpers for mlkit."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def check_2d(X, name: str = "X") -> np.ndarray:
    """Coerce ``X`` to a 2-D float64 array, raising ``ValueError`` otherwise."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if X.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {X.shape}")
    if X.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one row")
    if not np.all(np.isfinite(X)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return X


def check_Xy(X, y) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix and aligned label vector."""
    X = check_2d(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-dimensional, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X and y have inconsistent lengths: {X.shape[0]} != {y.shape[0]}"
        )
    return X, y


def as_rng(random_state) -> np.random.Generator:
    """Return a numpy Generator from a seed, Generator or ``None``."""
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


class BaseEstimator:
    """Minimal base class: parameter introspection and repr."""

    def get_params(self) -> dict:
        """Return constructor parameters (public attributes set in ``__init__``)."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and not key.endswith("_")
        }

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


class ClassifierMixin:
    """Shared helpers for classifiers: label encoding, scoring and checks."""

    classes_: np.ndarray

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        """Store ``classes_`` and return integer-encoded labels."""
        self.classes_, encoded = np.unique(y, return_inverse=True)
        if self.classes_.shape[0] < 2:
            raise ValueError("classifier requires at least two classes in y")
        return encoded

    def _decode_labels(self, indices: np.ndarray) -> np.ndarray:
        return self.classes_[indices]

    def _check_fitted(self) -> None:
        if not hasattr(self, "classes_"):
            raise RuntimeError(
                f"{type(self).__name__} is not fitted yet; call fit() first"
            )

    def predict(self, X) -> np.ndarray:
        """Predict class labels by taking the argmax of ``predict_proba``."""
        proba = self.predict_proba(X)
        return self._decode_labels(np.argmax(proba, axis=1))

    def predict_proba(self, X) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def score(self, X, y) -> float:
        """Mean accuracy on ``(X, y)``."""
        X, y = check_Xy(X, y)
        return float(np.mean(self.predict(X) == y))


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def one_hot(y: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels."""
    encoded = np.zeros((y.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(y.shape[0]), y] = 1.0
    return encoded
