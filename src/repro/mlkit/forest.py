"""Random forest classifier built from bagged :class:`DecisionTreeClassifier` trees."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.mlkit.base import BaseEstimator, ClassifierMixin, as_rng, check_Xy, check_2d
from repro.mlkit.tree import DecisionTreeClassifier


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Bootstrap-aggregated decision trees with feature subsampling.

    Each tree is trained on a bootstrap resample of the data and restricted
    to sqrt(n_features) candidate features per split, the standard recipe.
    Prediction averages the per-tree class-probability vectors, which is both
    the usual bagging estimator and the source of the per-tree variance that
    the paper's agreement-based confidence scores (Figure 7) rely on.
    """

    def __init__(
        self,
        n_estimators: int = 10,
        max_depth: int = 8,
        min_samples_split: int = 4,
        max_features: Optional[int] = None,
        n_thresholds: int = 8,
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.n_thresholds = n_thresholds
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        rng = as_rng(self.random_state)
        self.n_features_ = X.shape[1]
        self.estimators_: List[DecisionTreeClassifier] = []
        n = X.shape[0]
        for _ in range(self.n_estimators):
            sample = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=self.max_features,
                n_thresholds=self.n_thresholds,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            # Trees are trained on integer-encoded labels so their per-tree
            # probability columns line up; decode happens at the forest level.
            tree.fit(X[sample], encoded[sample])
            self.estimators_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_2d(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, forest was fit on {self.n_features_}"
            )
        n_classes = self.classes_.shape[0]
        total = np.zeros((X.shape[0], n_classes))
        for tree in self.estimators_:
            tree_proba = tree.predict_proba(X)
            # A bootstrap sample may miss some classes entirely; align columns
            # by the tree's own (integer) classes_.
            aligned = np.zeros_like(total)
            aligned[:, tree.classes_.astype(int)] = tree_proba
            total += aligned
        return total / self.n_estimators
