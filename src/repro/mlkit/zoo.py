"""Deep-model zoo: named MLP architectures standing in for Table 2's networks.

The paper's ImageNet ensemble (Table 2) combines five off-the-shelf deep
networks of very different cost: VGG (13 conv + 3 FC), GoogLeNet (96 conv),
ResNet-152, CaffeNet and Inception-v3.  Here each named architecture maps to
an :class:`~repro.mlkit.mlp.MLPClassifier` whose depth/width ordering
preserves the *relative* inference cost and accuracy ranking, which is what
the ensemble-accuracy and serving-comparison experiments depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.mlkit.mlp import MLPClassifier


@dataclass(frozen=True)
class ZooEntry:
    """Description of one zoo architecture.

    Attributes
    ----------
    name:
        Architecture name as used in the paper.
    framework:
        Framework the paper attributes the model to (Caffe or TensorFlow).
    paper_size:
        Human-readable layer description from Table 2.
    hidden_layers:
        MLP hidden-layer widths used by the reproduction.
    epochs:
        Training epochs; deeper stand-ins get a few more epochs so the
        accuracy ordering (deeper = more accurate) matches the paper's zoo.
    """

    name: str
    framework: str
    paper_size: str
    hidden_layers: Tuple[int, ...]
    epochs: int


#: The Table 2 model zoo.  Ordered roughly from cheapest to most expensive.
TABLE2_ZOO: Dict[str, ZooEntry] = {
    "caffenet": ZooEntry(
        name="CaffeNet",
        framework="Caffe",
        paper_size="5 Conv. and 3 FC",
        hidden_layers=(64,),
        epochs=12,
    ),
    "vgg": ZooEntry(
        name="VGG",
        framework="Caffe",
        paper_size="13 Conv. and 3 FC",
        hidden_layers=(128, 64),
        epochs=16,
    ),
    "inception": ZooEntry(
        name="Inception-v3",
        framework="TensorFlow",
        paper_size="6 Conv, 1 FC, & 3 Incept.",
        hidden_layers=(160, 96),
        epochs=18,
    ),
    "googlenet": ZooEntry(
        name="GoogLeNet",
        framework="Caffe",
        paper_size="96 Conv. and 5 FC",
        hidden_layers=(192, 128, 64),
        epochs=20,
    ),
    "resnet": ZooEntry(
        name="ResNet-152",
        framework="Caffe",
        paper_size="151 Conv. and 1 FC",
        hidden_layers=(256, 128, 64),
        epochs=24,
    ),
}


def build_zoo_model(key: str, random_state: Optional[int] = None) -> MLPClassifier:
    """Instantiate the (untrained) MLP stand-in for one zoo architecture."""
    entry = TABLE2_ZOO.get(key)
    if entry is None:
        raise KeyError(f"unknown zoo model '{key}', expected one of {sorted(TABLE2_ZOO)}")
    return MLPClassifier(
        hidden_layers=entry.hidden_layers,
        epochs=entry.epochs,
        learning_rate=0.05,
        random_state=random_state,
    )


def build_full_zoo(random_state: int = 0) -> Dict[str, MLPClassifier]:
    """Instantiate every Table 2 architecture with deterministic seeds."""
    return {
        key: build_zoo_model(key, random_state=random_state + offset)
        for offset, key in enumerate(sorted(TABLE2_ZOO))
    }


#: The three TensorFlow models of the Figure 11 serving comparison, mapped to
#: MLP stand-ins of increasing cost, together with the hand-tuned batch sizes
#: the paper uses for TensorFlow Serving.
FIGURE11_MODELS: Dict[str, Dict[str, object]] = {
    "mnist": {
        "description": "4-layer CNN on MNIST (paper) -> small MLP",
        "hidden_layers": (64, 32),
        "static_batch_size": 512,
    },
    "cifar": {
        "description": "AlexNet on CIFAR-10 (paper) -> medium MLP",
        "hidden_layers": (256, 128),
        "static_batch_size": 128,
    },
    "imagenet": {
        "description": "Inception-v3 on ImageNet (paper) -> large MLP",
        "hidden_layers": (512, 256, 128),
        "static_batch_size": 16,
    },
}


def build_figure11_model(key: str, random_state: Optional[int] = None) -> MLPClassifier:
    """Instantiate the MLP stand-in for one Figure 11 serving workload."""
    spec = FIGURE11_MODELS.get(key)
    if spec is None:
        raise KeyError(
            f"unknown figure-11 model '{key}', expected one of {sorted(FIGURE11_MODELS)}"
        )
    return MLPClassifier(
        hidden_layers=spec["hidden_layers"],
        epochs=8,
        random_state=random_state,
    )
