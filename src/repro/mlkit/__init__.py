"""mlkit — a from-scratch numpy machine-learning framework.

This package is the substrate standing in for the machine learning frameworks
used in the Clipper paper (Scikit-Learn, Spark MLlib, Caffe, TensorFlow and
HTK).  It provides trainable classifiers whose *latency profiles* span the
same range as the paper's model containers:

* :class:`~repro.mlkit.linear.LinearSVM` — a single matrix-vector product per
  query (the cheapest real model in Figure 3).
* :class:`~repro.mlkit.linear.LogisticRegression` — similar cost, probabilistic
  outputs.
* :class:`~repro.mlkit.kernel.KernelSVM` — RBF kernel evaluations against the
  support set, orders of magnitude more expensive per query (the most
  expensive container in Figure 3).
* :class:`~repro.mlkit.forest.RandomForestClassifier` — tree traversals with
  moderate per-query cost.
* :class:`~repro.mlkit.mlp.MLPClassifier` — feed-forward networks whose depth
  and width parameterize the "deep model zoo" of Table 2.
* :class:`~repro.mlkit.hmm.GaussianHMM` — the HTK stand-in used for the
  TIMIT-like speech benchmark.

Every estimator follows the familiar ``fit`` / ``predict`` /
``predict_proba`` API and accepts an explicit ``random_state`` for
determinism.
"""

from repro.mlkit.base import BaseEstimator, ClassifierMixin, check_2d, check_Xy
from repro.mlkit.linear import LinearSVM, LogisticRegression
from repro.mlkit.kernel import KernelSVM
from repro.mlkit.tree import DecisionTreeClassifier
from repro.mlkit.forest import RandomForestClassifier
from repro.mlkit.neighbors import KNeighborsClassifier
from repro.mlkit.naive_bayes import GaussianNB
from repro.mlkit.mlp import MLPClassifier
from repro.mlkit.hmm import GaussianHMM
from repro.mlkit.preprocessing import StandardScaler, train_test_split
from repro.mlkit import metrics
from repro.mlkit import zoo

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "check_2d",
    "check_Xy",
    "LinearSVM",
    "LogisticRegression",
    "KernelSVM",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "KNeighborsClassifier",
    "GaussianNB",
    "MLPClassifier",
    "GaussianHMM",
    "StandardScaler",
    "train_test_split",
    "metrics",
    "zoo",
]
