"""k-nearest-neighbour classifier (brute-force distance computation)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mlkit.base import BaseEstimator, ClassifierMixin, check_Xy, check_2d


class KNeighborsClassifier(BaseEstimator, ClassifierMixin):
    """Brute-force kNN with optional training-set subsampling.

    Like the kernel SVM, prediction cost scales with the size of the stored
    training set, making kNN another useful "expensive container" for
    latency-profile experiments.
    """

    def __init__(
        self,
        n_neighbors: int = 5,
        max_reference_points: Optional[int] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self.max_reference_points = max_reference_points
        self.random_state = random_state

    def fit(self, X, y) -> "KNeighborsClassifier":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        if self.max_reference_points and X.shape[0] > self.max_reference_points:
            rng = np.random.default_rng(self.random_state)
            keep = rng.choice(X.shape[0], self.max_reference_points, replace=False)
            X, encoded = X[keep], encoded[keep]
        self._X = X
        self._y = encoded
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_2d(X)
        if X.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fit on {self._X.shape[1]}"
            )
        n_classes = self.classes_.shape[0]
        k = min(self.n_neighbors, self._X.shape[0])
        # Squared euclidean distances between every query and reference row.
        dists = (
            np.sum(X * X, axis=1)[:, None]
            - 2.0 * (X @ self._X.T)
            + np.sum(self._X * self._X, axis=1)[None, :]
        )
        neighbor_idx = np.argpartition(dists, kth=k - 1, axis=1)[:, :k]
        proba = np.zeros((X.shape[0], n_classes))
        for i in range(X.shape[0]):
            votes = np.bincount(self._y[neighbor_idx[i]], minlength=n_classes)
            proba[i] = votes / k
        return proba
