"""Gaussian naive Bayes classifier."""

from __future__ import annotations

import numpy as np

from repro.mlkit.base import BaseEstimator, ClassifierMixin, check_Xy, check_2d, softmax


class GaussianNB(BaseEstimator, ClassifierMixin):
    """Gaussian naive Bayes with per-class diagonal covariance.

    A cheap, well-calibrated-ish probabilistic model useful as a weak member
    of the heterogeneous ensembles in the selection-layer experiments.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        if var_smoothing <= 0:
            raise ValueError("var_smoothing must be positive")
        self.var_smoothing = var_smoothing

    def fit(self, X, y) -> "GaussianNB":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        n_classes = self.classes_.shape[0]
        n_features = X.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.class_log_prior_ = np.zeros(n_classes)
        global_var = X.var(axis=0).max()
        smoothing = self.var_smoothing * (global_var if global_var > 0 else 1.0)
        for cls in range(n_classes):
            rows = X[encoded == cls]
            if rows.shape[0] == 0:
                # A class present in classes_ but absent after filtering can't
                # happen via fit, but guard anyway for robustness.
                self.theta_[cls] = X.mean(axis=0)
                self.var_[cls] = X.var(axis=0) + smoothing
                self.class_log_prior_[cls] = -np.inf
                continue
            self.theta_[cls] = rows.mean(axis=0)
            self.var_[cls] = rows.var(axis=0) + smoothing
            self.class_log_prior_[cls] = np.log(rows.shape[0] / X.shape[0])
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        log_likelihood = np.zeros((X.shape[0], self.classes_.shape[0]))
        for cls in range(self.classes_.shape[0]):
            diff = X - self.theta_[cls]
            log_prob = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[cls]) + diff * diff / self.var_[cls],
                axis=1,
            )
            log_likelihood[:, cls] = self.class_log_prior_[cls] + log_prob
        return log_likelihood

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_2d(X)
        if X.shape[1] != self.theta_.shape[1]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fit on {self.theta_.shape[1]}"
            )
        return softmax(self._joint_log_likelihood(X))
