"""Feed-forward multi-layer perceptron classifier.

The MLP is the stand-in for the deep convolutional networks of Table 2
(VGG, GoogLeNet, ResNet, CaffeNet, Inception) and for the TensorFlow models
of the Figure 11 comparison.  Depth and width are configurable so the model
zoo spans a wide range of inference costs, just like the paper's networks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mlkit.base import (
    BaseEstimator,
    ClassifierMixin,
    as_rng,
    check_Xy,
    check_2d,
    one_hot,
    softmax,
)


class MLPClassifier(BaseEstimator, ClassifierMixin):
    """ReLU MLP trained with mini-batch SGD and momentum.

    Parameters
    ----------
    hidden_layers:
        Sequence of hidden-layer widths, e.g. ``(256, 128)``.
    learning_rate, momentum, epochs, batch_size:
        Standard SGD hyper-parameters.
    weight_scale:
        Standard deviation of the He-style weight initialisation multiplier.
    """

    def __init__(
        self,
        hidden_layers: Sequence[int] = (64,),
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        epochs: int = 20,
        batch_size: int = 64,
        l2: float = 1e-4,
        random_state: Optional[int] = None,
    ) -> None:
        hidden_layers = tuple(int(width) for width in hidden_layers)
        if any(width < 1 for width in hidden_layers):
            raise ValueError("hidden layer widths must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.hidden_layers = hidden_layers
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.random_state = random_state

    # -- training -----------------------------------------------------------

    def fit(self, X, y) -> "MLPClassifier":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        rng = as_rng(self.random_state)
        n_classes = self.classes_.shape[0]
        # Standardize features internally: SGD on raw high-variance inputs
        # diverges easily, and real deep-learning pipelines always normalise.
        self._input_mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._input_scale = scale
        X = (X - self._input_mean) / self._input_scale
        layer_sizes = [X.shape[1], *self.hidden_layers, n_classes]
        self.n_features_ = X.shape[1]
        self.weights_: List[np.ndarray] = []
        self.biases_: List[np.ndarray] = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights_.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

        velocity_w = [np.zeros_like(w) for w in self.weights_]
        velocity_b = [np.zeros_like(b) for b in self.biases_]
        targets = one_hot(encoded, n_classes)
        n_samples = X.shape[0]
        for epoch in range(self.epochs):
            order = rng.permutation(n_samples)
            step = self.learning_rate / (1.0 + 0.05 * epoch)
            for start in range(0, n_samples, self.batch_size):
                idx = order[start : start + self.batch_size]
                grads_w, grads_b = self._backprop(X[idx], targets[idx])
                for layer, (gw, gb) in enumerate(zip(grads_w, grads_b)):
                    velocity_w[layer] = (
                        self.momentum * velocity_w[layer] - step * gw
                    )
                    velocity_b[layer] = (
                        self.momentum * velocity_b[layer] - step * gb
                    )
                    self.weights_[layer] += velocity_w[layer]
                    self.biases_[layer] += velocity_b[layer]
        return self

    def _forward(self, X: np.ndarray) -> Tuple[List[np.ndarray], np.ndarray]:
        """Return per-layer activations and the final softmax output."""
        activations = [X]
        hidden = X
        for layer in range(len(self.weights_) - 1):
            hidden = hidden @ self.weights_[layer] + self.biases_[layer]
            np.maximum(hidden, 0.0, out=hidden)
            activations.append(hidden)
        logits = hidden @ self.weights_[-1] + self.biases_[-1]
        return activations, softmax(logits)

    def _backprop(self, X: np.ndarray, targets: np.ndarray):
        activations, probs = self._forward(X)
        batch = X.shape[0]
        delta = (probs - targets) / batch
        grads_w: List[np.ndarray] = [None] * len(self.weights_)
        grads_b: List[np.ndarray] = [None] * len(self.biases_)
        for layer in reversed(range(len(self.weights_))):
            grads_w[layer] = activations[layer].T @ delta + self.l2 * self.weights_[layer]
            grads_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = delta @ self.weights_[layer].T
                delta[activations[layer] <= 0.0] = 0.0
        return grads_w, grads_b

    # -- inference ----------------------------------------------------------

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_2d(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fit on {self.n_features_}"
            )
        X = (X - self._input_mean) / self._input_scale
        _, probs = self._forward(X)
        return probs

    @property
    def n_parameters_(self) -> int:
        """Total number of trainable parameters (used by the model zoo registry)."""
        self._check_fitted()
        return int(
            sum(w.size for w in self.weights_) + sum(b.size for b in self.biases_)
        )

    @property
    def n_layers_(self) -> int:
        """Number of weight layers (hidden layers + output layer)."""
        self._check_fitted()
        return len(self.weights_)
