"""CART-style decision tree classifier.

The tree is grown greedily by minimizing Gini impurity on axis-aligned
splits, with candidate thresholds drawn from feature quantiles to keep
training fast on the synthetic high-dimensional image stand-ins.  Prediction
traverses the tree per row, giving the moderate per-query cost the paper
measures for Scikit-Learn random forests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mlkit.base import BaseEstimator, ClassifierMixin, as_rng, check_Xy, check_2d


@dataclass
class _Node:
    """One node of the decision tree (leaf when ``feature`` is None)."""

    prediction: np.ndarray  # class-probability vector at this node
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return 1.0 - float(np.sum(proportions * proportions))


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """Greedy Gini-impurity decision tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth.
    min_samples_split:
        Minimum number of rows required to attempt a split.
    max_features:
        Number of candidate features examined per split (``None`` = sqrt of
        the feature count, the usual random-forest default).
    n_thresholds:
        Number of quantile-derived candidate thresholds per feature.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 4,
        max_features: Optional[int] = None,
        n_thresholds: int = 8,
        random_state: Optional[int] = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if n_thresholds < 1:
            raise ValueError("n_thresholds must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.n_thresholds = n_thresholds
        self.random_state = random_state

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X, y = check_Xy(X, y)
        encoded = self._encode_labels(y)
        self._rng = as_rng(self.random_state)
        self.n_features_ = X.shape[1]
        n_classes = self.classes_.shape[0]
        self.root_ = self._grow(X, encoded, n_classes, depth=0)
        return self

    def _leaf(self, y: np.ndarray, n_classes: int) -> _Node:
        counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        total = counts.sum()
        proba = counts / total if total > 0 else np.full(n_classes, 1.0 / n_classes)
        return _Node(prediction=proba)

    def _grow(self, X: np.ndarray, y: np.ndarray, n_classes: int, depth: int) -> _Node:
        node = self._leaf(y, n_classes)
        if (
            depth >= self.max_depth
            or X.shape[0] < self.min_samples_split
            or np.unique(y).shape[0] == 1
        ):
            return node

        n_features = X.shape[1]
        if self.max_features is None:
            n_candidates = max(1, int(np.sqrt(n_features)))
        else:
            n_candidates = min(self.max_features, n_features)
        candidate_features = self._rng.choice(n_features, size=n_candidates, replace=False)

        parent_counts = np.bincount(y, minlength=n_classes)
        parent_impurity = _gini(parent_counts)
        best_gain = 1e-7
        best: Optional[tuple] = None

        quantiles = np.linspace(0.1, 0.9, self.n_thresholds)
        for feature in candidate_features:
            column = X[:, feature]
            thresholds = np.unique(np.quantile(column, quantiles))
            for threshold in thresholds:
                left_mask = column <= threshold
                n_left = int(left_mask.sum())
                n_right = X.shape[0] - n_left
                if n_left == 0 or n_right == 0:
                    continue
                left_counts = np.bincount(y[left_mask], minlength=n_classes)
                right_counts = parent_counts - left_counts
                weighted = (
                    n_left * _gini(left_counts) + n_right * _gini(right_counts)
                ) / X.shape[0]
                gain = parent_impurity - weighted
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float(threshold), left_mask)

        if best is None:
            return node

        feature, threshold, left_mask = best
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[left_mask], y[left_mask], n_classes, depth + 1)
        node.right = self._grow(X[~left_mask], y[~left_mask], n_classes, depth + 1)
        return node

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_2d(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, tree was fit on {self.n_features_}"
            )
        out = np.empty((X.shape[0], self.classes_.shape[0]))
        for i, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        self._check_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)
