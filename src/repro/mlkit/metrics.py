"""Evaluation metrics used across the benchmarks.

The Clipper evaluation reports top-1 error (CIFAR-10), top-5 error
(ImageNet) and per-query 0/1 losses that feed the bandit selection policies,
so those are the primitives provided here.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def accuracy(y_true, y_pred) -> float:
    """Fraction of exactly-matching predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy of an empty sample")
    return float(np.mean(y_true == y_pred))


def error_rate(y_true, y_pred) -> float:
    """Top-1 error rate, ``1 - accuracy``."""
    return 1.0 - accuracy(y_true, y_pred)


def top_k_accuracy(y_true, proba, k: int = 5, classes=None) -> float:
    """Fraction of rows whose true label is within the top-``k`` scored classes.

    Parameters
    ----------
    proba:
        Array of shape ``(n_samples, n_classes)`` of class scores.
    classes:
        Optional label values corresponding to the columns of ``proba``;
        defaults to ``0..n_classes-1``.
    """
    y_true = np.asarray(y_true)
    proba = np.asarray(proba)
    if proba.ndim != 2 or proba.shape[0] != y_true.shape[0]:
        raise ValueError("proba must be (n_samples, n_classes) aligned with y_true")
    if k < 1:
        raise ValueError("k must be >= 1")
    if classes is None:
        classes = np.arange(proba.shape[1])
    classes = np.asarray(classes)
    k = min(k, proba.shape[1])
    top_k = np.argsort(-proba, axis=1)[:, :k]
    hits = np.any(classes[top_k] == y_true[:, None], axis=1)
    return float(np.mean(hits))


def top_k_error(y_true, proba, k: int = 5, classes=None) -> float:
    """Top-``k`` error rate (used for the ImageNet-like benchmark)."""
    return 1.0 - top_k_accuracy(y_true, proba, k=k, classes=classes)


def zero_one_loss(y_true_single, y_pred_single) -> float:
    """Per-query 0/1 loss used as bandit feedback: 0 if correct else 1."""
    return 0.0 if y_true_single == y_pred_single else 1.0


def confusion_matrix(y_true, y_pred, num_classes: int) -> np.ndarray:
    """Dense ``num_classes × num_classes`` confusion matrix (rows = true)."""
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for true_label, pred_label in zip(y_true, y_pred):
        matrix[true_label, pred_label] += 1
    return matrix


def log_loss(y_true, proba, eps: float = 1e-12) -> float:
    """Mean negative log-likelihood of the true labels."""
    y_true = np.asarray(y_true, dtype=int)
    proba = np.clip(np.asarray(proba, dtype=float), eps, 1.0)
    if proba.ndim != 2 or proba.shape[0] != y_true.shape[0]:
        raise ValueError("proba must be (n_samples, n_classes) aligned with y_true")
    picked = proba[np.arange(y_true.shape[0]), y_true]
    return float(-np.mean(np.log(picked)))


def classification_report(y_true, y_pred) -> Dict[str, float]:
    """Small dictionary report: accuracy, error rate and sample count."""
    return {
        "n_samples": int(np.asarray(y_true).shape[0]),
        "accuracy": accuracy(y_true, y_pred),
        "error_rate": error_rate(y_true, y_pred),
    }
