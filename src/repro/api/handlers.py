"""Handler objects binding the route table onto the two frontends.

:func:`build_route_table` registers the full external surface of the paper's
Figure 2 over a :class:`~repro.core.frontend.QueryFrontend` (the application
verbs ``predict`` and ``update``) and a
:class:`~repro.management.frontend.ManagementFrontend` (the operator verbs).
Handlers do only transport work — decode the JSON body, resolve wire
representations (base64 bytes, factory names), shape the response — and
delegate every check to the frontends, so in-process callers invoking the
same frontend methods cross the identical validation and error path.

Model containers cannot travel as JSON, so the admin ``deploy`` verb names
its container through a server-side **factory registry** (the moral
equivalent of the paper's container images): ``build_route_table`` takes a
``factories`` mapping from name to zero-argument container factory, and a
deploy request references one by name.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

import numpy as np

from repro.api.errors import RouteNotFoundError
from repro.api.routes import API_PREFIX, ApiResponse, RouteTable
from repro.api.schema import json_safe, require_field, require_object
from repro.core.config import BatchingConfig, ModelDeployment
from repro.core.exceptions import BadRequestError, ConfigurationError
from repro.core.frontend import QueryFrontend
from repro.core.types import Prediction
from repro.management.frontend import ManagementFrontend
from repro.observability.prometheus import PROMETHEUS_CONTENT_TYPE, render_prometheus


def prediction_payload(prediction: Prediction) -> Dict[str, Any]:
    """The wire shape of one prediction (mirrors the paper's REST response)."""
    return {
        "query_id": prediction.query_id,
        "app_name": prediction.app_name,
        "output": prediction.output,
        "confidence": prediction.confidence,
        "latency_ms": prediction.latency_ms,
        "default_used": prediction.default_used,
        "models_used": list(prediction.models_used),
        "models_missing": list(prediction.models_missing),
        "from_cache": prediction.from_cache,
        "trace_id": prediction.trace_id,
    }


def _wants_prometheus(params: Dict[str, str]) -> bool:
    return params.get("format", "").lower() == "prometheus"


def _parse_flag(params: Dict[str, str], name: str) -> bool:
    return params.get(name, "").lower() in ("1", "true", "yes")


def _parse_limit(params: Dict[str, str], default: int = 50) -> int:
    raw = params.get("limit")
    if raw is None:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        raise BadRequestError("query parameter 'limit' must be an integer") from None


def _optional_str(body: Dict[str, Any], name: str) -> Optional[str]:
    value = body.get(name)
    if value is not None and not isinstance(value, str):
        raise BadRequestError(f"field '{name}' must be a string")
    return value


def _optional_number(body: Dict[str, Any], name: str) -> Optional[float]:
    value = body.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError(f"field '{name}' must be a number")
    return float(value)


def _require_str(body: Dict[str, Any], name: str) -> str:
    value = require_field(body, name)
    if not isinstance(value, str) or not value:
        raise BadRequestError(f"field '{name}' must be a non-empty string")
    return value


def _require_int(body: Dict[str, Any], name: str) -> int:
    value = require_field(body, name)
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequestError(f"field '{name}' must be an integer")
    return value


def _require_number(body: Dict[str, Any], name: str) -> float:
    value = require_field(body, name)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError(f"field '{name}' must be a number")
    return float(value)


def build_route_table(
    query: Optional[QueryFrontend] = None,
    admin: Optional[ManagementFrontend] = None,
    factories: Optional[Mapping[str, Callable[[], object]]] = None,
) -> RouteTable:
    """Build the versioned route table over the given frontends.

    Either frontend may be omitted to expose only half the surface (e.g. a
    query-only ingress tier).  ``factories`` names the container factories
    the admin ``deploy`` verb may reference.
    """
    if query is None and admin is None:
        raise ValueError("build_route_table needs a query and/or admin frontend")
    table = RouteTable()
    factories = dict(factories or {})

    # -- server-level introspection -------------------------------------------

    async def get_health(params: Dict[str, str], body: Any) -> ApiResponse:
        hosts = query if query is not None else admin
        payload = {"status": "ok", "applications": hosts.applications()}
        if admin is not None:
            # Cold-start restores report what came back (and what could not),
            # so operators see a recovered process for what it is.
            recovery = admin.recovery_status()
            if recovery:
                payload["recovery"] = recovery
        return ApiResponse(200, payload)

    async def get_routes(params: Dict[str, str], body: Any) -> ApiResponse:
        return ApiResponse(200, {"routes": table.describe()})

    table.add("GET", f"{API_PREFIX}/health", "health", get_health)
    table.add("GET", f"{API_PREFIX}/routes", "routes", get_routes)

    # -- observability: metrics exposition and trace queries --------------------
    #
    # Registered before the {app}-pattern application verbs so the literal
    # ``trace``/``traces``/``metrics`` segments win over the wildcard at the
    # same segment count (first match in registration order).

    hosts = query if query is not None else admin

    def _hosted_clippers() -> Dict[str, Any]:
        return {name: hosts.application(name) for name in hosts.applications()}

    async def get_metrics(params: Dict[str, str], body: Any) -> ApiResponse:
        clippers = _hosted_clippers()
        if _wants_prometheus(params):
            text = render_prometheus(
                {name: clipper.metrics for name, clipper in clippers.items()}
            )
            return ApiResponse(
                200, text, headers={"Content-Type": PROMETHEUS_CONTENT_TYPE}
            )
        snapshots = {}
        for name, clipper in clippers.items():
            snapshot = clipper.metrics.snapshot()
            snapshots[name] = {
                "counters": snapshot.counters,
                "meters": snapshot.meters,
                "histograms": snapshot.histograms,
            }
        return ApiResponse(200, {"applications": snapshots})

    async def get_trace(params: Dict[str, str], body: Any) -> ApiResponse:
        trace_id = params["trace_id"]
        for clipper in _hosted_clippers().values():
            tree = clipper.tracer.registry.trace(trace_id)
            if tree is not None:
                return ApiResponse(200, tree)
        raise RouteNotFoundError(f"no committed trace with id '{trace_id}'")

    async def get_traces(params: Dict[str, str], body: Any) -> ApiResponse:
        slow = _parse_flag(params, "slow")
        limit = _parse_limit(params)
        merged = []
        for clipper in _hosted_clippers().values():
            merged.extend(clipper.tracer.registry.recent(slow=slow, limit=limit))
        merged.sort(key=lambda summary: summary["captured_at"], reverse=True)
        return ApiResponse(200, {"traces": merged[:limit], "slow_only": slow})

    table.add("GET", f"{API_PREFIX}/metrics", "metrics", get_metrics)
    table.add("GET", f"{API_PREFIX}/trace/{{trace_id}}", "trace", get_trace)
    table.add("GET", f"{API_PREFIX}/traces", "traces", get_traces)

    # -- application verbs (Figure 2: predict / update) -------------------------

    if query is not None:

        async def list_applications(params: Dict[str, str], body: Any) -> ApiResponse:
            return ApiResponse(
                200,
                {
                    "applications": [
                        query.schema(name).to_dict() for name in query.applications()
                    ]
                },
            )

        async def get_schema(params: Dict[str, str], body: Any) -> ApiResponse:
            return ApiResponse(200, query.schema(params["app"]).to_dict())

        async def post_predict(params: Dict[str, str], body: Any) -> ApiResponse:
            payload = require_object(body)
            app_name = params["app"]
            # Resolve the application first so an unknown name is a 404 even
            # when the body is also malformed.
            schema = query.schema(app_name)
            raw = require_field(payload, "input")
            # Binary fast path: a columnar body lands here with the input
            # already a typed ndarray (a zero-copy view into the received
            # frame) — skip the JSON wire codec and hand it to the frontend,
            # whose validation coerces conforming arrays without a copy.
            x = raw if isinstance(raw, np.ndarray) else schema.decode_wire_input(raw)
            prediction = await query.predict(
                app_name,
                x,
                user_id=_optional_str(payload, "user_id"),
                latency_slo_ms=_optional_number(payload, "latency_slo_ms"),
                trace_id=params.get("_trace_id"),
            )
            headers = (
                {"X-Clipper-Trace-Id": prediction.trace_id}
                if prediction.trace_id
                else {}
            )
            return ApiResponse(200, prediction_payload(prediction), headers=headers)

        async def post_update(params: Dict[str, str], body: Any) -> ApiResponse:
            payload = require_object(body)
            app_name = params["app"]
            schema = query.schema(app_name)
            raw = require_field(payload, "input")
            x = raw if isinstance(raw, np.ndarray) else schema.decode_wire_input(raw)
            label = require_field(payload, "label")
            await query.update(
                app_name, x, label, user_id=_optional_str(payload, "user_id")
            )
            return ApiResponse(200, {"ok": True, "app_name": app_name})

        table.add(
            "GET", f"{API_PREFIX}/applications", "applications", list_applications
        )
        table.add("GET", f"{API_PREFIX}/{{app}}/schema", "schema", get_schema)
        table.add("POST", f"{API_PREFIX}/{{app}}/predict", "predict", post_predict)
        table.add("POST", f"{API_PREFIX}/{{app}}/update", "update", post_update)

    # -- operator verbs (the management REST API) -------------------------------

    if admin is not None:
        prefix = f"{API_PREFIX}/admin"

        def _deployment_from(payload: Dict[str, Any]) -> ModelDeployment:
            factory_name = _require_str(payload, "factory")
            factory = factories.get(factory_name)
            if factory is None:
                raise BadRequestError(
                    f"unknown container factory '{factory_name}'",
                    detail={"registered": sorted(factories)},
                )
            batching_spec = payload.get("batching") or {}
            if not isinstance(batching_spec, dict):
                raise BadRequestError("field 'batching' must be an object")
            try:
                batching = BatchingConfig(**batching_spec)
            except TypeError:
                raise BadRequestError(
                    "field 'batching' has unknown parameters",
                    detail={"given": sorted(batching_spec)},
                ) from None
            kwargs: Dict[str, Any] = {}
            if "version" in payload:
                kwargs["version"] = _require_int(payload, "version")
            if "num_replicas" in payload:
                kwargs["num_replicas"] = _require_int(payload, "num_replicas")
            if "serialize_rpc" in payload:
                kwargs["serialize_rpc"] = bool(payload["serialize_rpc"])
            if "max_batch_retries" in payload:
                kwargs["max_batch_retries"] = _require_int(payload, "max_batch_retries")
            if "transport" in payload:
                kwargs["transport"] = _require_str(payload, "transport")
            try:
                return ModelDeployment(
                    name=_require_str(payload, "model_name"),
                    container_factory=factory,
                    batching=batching,
                    factory_name=factory_name,
                    **kwargs,
                )
            except ConfigurationError as exc:
                raise BadRequestError(str(exc)) from None

        async def post_deploy(params: Dict[str, str], body: Any) -> ApiResponse:
            payload = require_object(body)
            admin.application(params["app"])  # 404 before the body is parsed
            deployment = _deployment_from(payload)
            activate = payload.get("activate")
            if activate is not None and not isinstance(activate, bool):
                raise BadRequestError("field 'activate' must be a boolean")
            model_id = await admin.deploy_model(
                params["app"], deployment, activate=activate
            )
            return ApiResponse(
                200,
                {
                    "model": str(model_id),
                    "serving": model_id in admin.application(params["app"]).serving_models(),
                },
            )

        async def post_undeploy(params: Dict[str, str], body: Any) -> ApiResponse:
            payload = require_object(body)
            model_id = await admin.undeploy_model(
                params["app"], _require_str(payload, "model")
            )
            return ApiResponse(200, {"model": str(model_id), "undeployed": True})

        async def post_scale(params: Dict[str, str], body: Any) -> ApiResponse:
            payload = require_object(body)
            count = await admin.set_num_replicas(
                params["app"],
                _require_str(payload, "model"),
                _require_int(payload, "num_replicas"),
            )
            return ApiResponse(200, {"num_replicas": count})

        async def post_rollout(params: Dict[str, str], body: Any) -> ApiResponse:
            payload = require_object(body)
            model_id = await admin.rollout(
                params["app"],
                _require_str(payload, "model_name"),
                _require_int(payload, "version"),
            )
            return ApiResponse(200, {"model": str(model_id)})

        async def post_rollback(params: Dict[str, str], body: Any) -> ApiResponse:
            payload = require_object(body)
            model_id = await admin.rollback(
                params["app"], _require_str(payload, "model_name")
            )
            return ApiResponse(200, {"model": str(model_id)})

        async def post_start_canary(params: Dict[str, str], body: Any) -> ApiResponse:
            payload = require_object(body)
            split = await admin.start_canary(
                params["app"],
                _require_str(payload, "model_name"),
                _require_int(payload, "version"),
                _require_number(payload, "weight"),
            )
            return ApiResponse(200, {"split": split.to_record()})

        async def post_adjust_canary(params: Dict[str, str], body: Any) -> ApiResponse:
            payload = require_object(body)
            split = await admin.adjust_canary(
                params["app"],
                _require_str(payload, "model_name"),
                _require_number(payload, "weight"),
            )
            return ApiResponse(200, {"split": split.to_record()})

        async def post_promote(params: Dict[str, str], body: Any) -> ApiResponse:
            payload = require_object(body)
            model_id = await admin.promote(
                params["app"], _require_str(payload, "model_name")
            )
            return ApiResponse(200, {"model": str(model_id)})

        async def post_abort_canary(params: Dict[str, str], body: Any) -> ApiResponse:
            payload = require_object(body)
            model_id = await admin.abort_canary(
                params["app"], _require_str(payload, "model_name")
            )
            return ApiResponse(200, {"model": str(model_id)})

        async def get_models(params: Dict[str, str], body: Any) -> ApiResponse:
            return ApiResponse(200, {"models": admin.models(params["app"])})

        async def get_model_info(params: Dict[str, str], body: Any) -> ApiResponse:
            return ApiResponse(
                200, admin.model_info(params["app"], params["model"])
            )

        async def get_app_health(params: Dict[str, str], body: Any) -> ApiResponse:
            return ApiResponse(200, admin.describe(params["app"]))

        async def get_app_metrics(params: Dict[str, str], body: Any) -> ApiResponse:
            clipper = admin.application(params["app"])
            if _wants_prometheus(params):
                text = render_prometheus({params["app"]: clipper.metrics})
                return ApiResponse(
                    200, text, headers={"Content-Type": PROMETHEUS_CONTENT_TYPE}
                )
            snapshot = clipper.metrics.snapshot()
            return ApiResponse(
                200,
                {
                    "counters": snapshot.counters,
                    "meters": snapshot.meters,
                    "histograms": snapshot.histograms,
                },
            )

        async def get_app_routing(params: Dict[str, str], body: Any) -> ApiResponse:
            return ApiResponse(
                200, {"routing": admin.application(params["app"]).routing.describe()}
            )

        async def list_managed(params: Dict[str, str], body: Any) -> ApiResponse:
            return ApiResponse(200, {"applications": admin.applications()})

        table.add("GET", f"{prefix}/applications", "admin.applications", list_managed)
        table.add("POST", f"{prefix}/{{app}}/deploy", "admin.deploy", post_deploy)
        table.add("POST", f"{prefix}/{{app}}/undeploy", "admin.undeploy", post_undeploy)
        table.add("POST", f"{prefix}/{{app}}/scale", "admin.scale", post_scale)
        table.add("POST", f"{prefix}/{{app}}/rollout", "admin.rollout", post_rollout)
        table.add("POST", f"{prefix}/{{app}}/rollback", "admin.rollback", post_rollback)
        table.add(
            "POST",
            f"{prefix}/{{app}}/start_canary",
            "admin.start_canary",
            post_start_canary,
        )
        table.add(
            "POST",
            f"{prefix}/{{app}}/adjust_canary",
            "admin.adjust_canary",
            post_adjust_canary,
        )
        table.add("POST", f"{prefix}/{{app}}/promote", "admin.promote", post_promote)
        table.add(
            "POST",
            f"{prefix}/{{app}}/abort_canary",
            "admin.abort_canary",
            post_abort_canary,
        )
        table.add("GET", f"{prefix}/{{app}}/models", "admin.models", get_models)
        table.add(
            "GET",
            f"{prefix}/{{app}}/models/{{model}}",
            "admin.model_info",
            get_model_info,
        )
        table.add("GET", f"{prefix}/{{app}}/health", "admin.health", get_app_health)
        table.add("GET", f"{prefix}/{{app}}/metrics", "admin.metrics", get_app_metrics)
        table.add("GET", f"{prefix}/{{app}}/routing", "admin.routing", get_app_routing)

    return table


__all__ = ["build_route_table", "prediction_payload", "json_safe"]
