"""Columnar binary wire format for the REST edge.

Registers the RPC layer's tagged binary serialization (single-frame ndarray
batches, see :mod:`repro.rpc.serialization`) as an HTTP content type, so a
binary-speaking client and the serving engine exchange the **same zero-copy
buffers** that cross the container RPC boundary — no JSON→list→ndarray
round-trip at the edge:

* **Requests** (``Content-Type: application/x-clipper-columnar``) decode
  with :func:`repro.rpc.serialization.deserialize`: ndarray payloads land as
  read-only ``np.frombuffer`` views into the received body, and the predict
  handler's fast path passes them to the frontend as-is.
* **Responses** (negotiated via ``Accept``) encode with
  :func:`repro.rpc.serialization.serialize_buffers`: the encoder returns the
  writev-style *segment list*, which :class:`~repro.api.http.HttpApiServer`
  writes with ``StreamWriter.writelines`` — the body is never concatenated
  with its headers (or into one frame-sized ``bytes``).

A malformed frame is a client error: the decoder maps every
:class:`~repro.core.exceptions.SerializationError` (corrupt tag, truncated
payload, trailing bytes) to a structured 400
:class:`~repro.api.errors.BadRequestError`, never a 500.  Bodies the binary
format cannot represent verbatim (e.g. tuples-of-sets some handler might
return) are passed through :func:`~repro.api.schema.json_safe` first, so
every endpoint — not just predict — can answer a columnar ``Accept``.
"""

from __future__ import annotations

from typing import Any, List

from repro.api.errors import BadRequestError
from repro.api.schema import json_safe
from repro.core.exceptions import SerializationError
from repro.rpc.serialization import (
    COLUMNAR_CONTENT_TYPE,
    deserialize,
    serialize_buffers,
)

__all__ = [
    "COLUMNAR_CONTENT_TYPE",
    "decode_columnar",
    "encode_columnar",
    "register_columnar",
]


def encode_columnar(body: Any) -> List[Any]:
    """Encode a response body as a columnar frame (writev segment list)."""
    try:
        return serialize_buffers(body)
    except SerializationError:
        # Handler payloads are JSON-shaped by construction; anything the
        # binary format cannot take verbatim goes through the same
        # canonicalisation the JSON encoder applies.
        return serialize_buffers(json_safe(body))


def decode_columnar(data: bytes) -> Any:
    """Decode a columnar request body; malformed frames are a structured 400."""
    try:
        return deserialize(data)
    except SerializationError as exc:
        raise BadRequestError(
            f"request body is not a valid columnar frame: {exc}",
            detail={"content_type": COLUMNAR_CONTENT_TYPE},
        ) from None


def register_columnar(server: Any) -> None:
    """Register the columnar content type on an :class:`HttpApiServer`."""
    server.register_content_type(
        COLUMNAR_CONTENT_TYPE, encoder=encode_columnar, decoder=decode_columnar
    )
