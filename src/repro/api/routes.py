"""Versioned route table mapping REST paths onto handler objects.

One registry owns the entire external surface: the application verbs
(``/api/v1/<app>/predict``, ``/api/v1/<app>/update``) and the admin verb set
(deploy, undeploy, scale, rollout, rollback, the canary verbs, models,
health, metrics, routing).  The table is transport-agnostic — a handler is
just an async callable ``handler(params, body) -> ApiResponse`` — so the
same routes serve the stdlib HTTP binding (:mod:`repro.api.http`), tests
calling :meth:`RouteTable.dispatch` directly, and any future binding (e.g. a
binary columnar transport) without re-registering anything.

Patterns use ``{name}`` placeholders matched per path segment::

    table.add("POST", "/api/v1/{app}/predict", "predict", handler)
    route, params = table.match("POST", "/api/v1/digits/predict")
    # params == {"app": "digits"}

Versioning is part of the path (``API_PREFIX``): a future ``/api/v2`` tree
can register alongside v1 in the same table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.api.errors import MethodNotAllowedError, RouteNotFoundError

#: Current (and only) API version; every built-in route lives under it.
API_VERSION = "v1"
API_PREFIX = f"/api/{API_VERSION}"

#: A handler takes the path parameters and the decoded JSON body (None for
#: bodiless requests) and returns an :class:`ApiResponse`.
Handler = Callable[[Dict[str, str], Any], Awaitable["ApiResponse"]]


@dataclass
class ApiResponse:
    """Transport-agnostic handler result: a status code and a JSON-able body."""

    status: int = 200
    body: Any = None
    headers: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class Route:
    """One entry of the route table: a verb bound to a handler object."""

    method: str
    pattern: str
    name: str
    handler: Handler
    #: Pre-split pattern segments; ``{x}`` segments capture into params.
    segments: Tuple[str, ...] = ()

    def match_path(self, parts: Tuple[str, ...]) -> Optional[Dict[str, str]]:
        """Path params when ``parts`` matches this route's pattern, else None."""
        if len(parts) != len(self.segments):
            return None
        params: Dict[str, str] = {}
        for segment, part in zip(self.segments, parts):
            if segment.startswith("{") and segment.endswith("}"):
                if not part:
                    return None
                params[segment[1:-1]] = part
            elif segment != part:
                return None
        return params


def _split_path(path: str) -> Tuple[str, ...]:
    return tuple(part for part in path.strip("/").split("/"))


class RouteTable:
    """The one registry of every externally callable verb."""

    def __init__(self) -> None:
        self._routes: List[Route] = []

    @staticmethod
    def _shape_of(segments: Tuple[str, ...]) -> Tuple[str, ...]:
        # Two patterns that differ only in parameter names match the same
        # requests; normalize for the duplicate check.
        return tuple(
            "{}" if s.startswith("{") and s.endswith("}") else s for s in segments
        )

    def add(self, method: str, pattern: str, name: str, handler: Handler) -> Route:
        """Register a route; duplicate (method, pattern) pairs are rejected."""
        method = method.upper()
        segments = _split_path(pattern)
        shape = self._shape_of(segments)
        for route in self._routes:
            if route.method == method and self._shape_of(route.segments) == shape:
                raise ValueError(f"route {method} {pattern} is already registered")
        route = Route(
            method=method,
            pattern=pattern,
            name=name,
            handler=handler,
            segments=segments,
        )
        self._routes.append(route)
        return route

    def routes(self) -> List[Route]:
        """Every registered route, in registration order."""
        return list(self._routes)

    def match(self, method: str, path: str) -> Tuple[Route, Dict[str, str]]:
        """Resolve a request to (route, path params).

        Raises :class:`RouteNotFoundError` when no pattern matches the path
        and :class:`MethodNotAllowedError` when a pattern matches but not
        for this method (the HTTP binding turns these into 404/405).
        """
        parts = _split_path(path)
        method = method.upper()
        allowed: List[str] = []
        for route in self._routes:
            params = route.match_path(parts)
            if params is None:
                continue
            if route.method == method:
                return route, params
            allowed.append(route.method)
        if allowed:
            raise MethodNotAllowedError(
                f"{method} is not allowed on {path}",
                detail={"allowed": sorted(set(allowed))},
            )
        raise RouteNotFoundError(f"no route matches {path}")

    async def dispatch(
        self,
        method: str,
        path: str,
        body: Any = None,
        query: Optional[Dict[str, str]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> ApiResponse:
        """Resolve and invoke a handler in-process (no HTTP framing).

        Tests and embedders use this to drive the exact handler/validation
        path HTTP callers hit, minus the socket.  ``query`` (URL query
        parameters) merges into the handler params with path parameters
        winning on collision; a caller-supplied ``X-Clipper-Trace-Id``
        header surfaces as the reserved ``_trace_id`` param so handlers can
        force-sample the query's trace.
        """
        route, params = self.match(method, path)
        if query:
            merged = dict(query)
            merged.update(params)
            params = merged
        if headers:
            trace_id = headers.get("x-clipper-trace-id")
            if trace_id:
                params["_trace_id"] = trace_id
        return await route.handler(params, body)

    def describe(self) -> List[Dict[str, str]]:
        """JSON-friendly listing of the surface (method, path, name)."""
        return [
            {"method": route.method, "path": route.pattern, "name": route.name}
            for route in self._routes
        ]
