"""The transport-agnostic external API layer of the reproduction.

Layers, bottom to top:

``repro.api.schema``
    Typed per-application contracts (declared input type/shape, default
    output, SLO) plus the JSON wire codec — the single validation path every
    caller crosses.
``repro.api.errors``
    The structured error model: every library exception carries a stable
    ``code`` and an ``http_status``; :func:`error_payload` renders them as
    the wire error object.
``repro.api.routes``
    The versioned route table binding ``/api/v1/...`` paths to handler
    objects, independent of any transport.
``repro.api.columnar``
    The binary columnar content type: the RPC layer's zero-copy wire
    format registered as an HTTP encoding.
``repro.api.handlers``
    Builds the route table over a :class:`~repro.core.frontend.QueryFrontend`
    and a :class:`~repro.management.frontend.ManagementFrontend`.
``repro.api.http``
    The stdlib asyncio HTTP/1.1 binding hosting the route table.

Only the leaf modules are imported eagerly; the handler/HTTP layers (which
import the frontends) load on first attribute access, keeping the package
importable from inside :mod:`repro.core` without cycles.
"""

from repro.api.errors import (
    ApiError,
    BadRequestError,
    DuplicateApplicationError,
    MethodNotAllowedError,
    NotAcceptableError,
    RouteNotFoundError,
    UnknownApplicationError,
    UnsupportedMediaTypeError,
    ValidationError,
    error_payload,
)
from repro.api.routes import API_PREFIX, API_VERSION, ApiResponse, Route, RouteTable
from repro.api.schema import INPUT_TYPES, ApplicationSchema, json_safe

__all__ = [
    "API_PREFIX",
    "API_VERSION",
    "ApiError",
    "ApiResponse",
    "ApplicationSchema",
    "BadRequestError",
    "COLUMNAR_CONTENT_TYPE",
    "DuplicateApplicationError",
    "HttpApiServer",
    "INPUT_TYPES",
    "MethodNotAllowedError",
    "NotAcceptableError",
    "Route",
    "RouteNotFoundError",
    "RouteTable",
    "UnknownApplicationError",
    "UnsupportedMediaTypeError",
    "ValidationError",
    "build_route_table",
    "create_server",
    "error_payload",
    "json_safe",
    "register_columnar",
]

#: Names resolved lazily to their defining module (PEP 562): these modules
#: import the frontends, which in turn import this package's leaf modules.
_LAZY = {
    "HttpApiServer": "repro.api.http",
    "create_server": "repro.api.http",
    "build_route_table": "repro.api.handlers",
    "COLUMNAR_CONTENT_TYPE": "repro.api.columnar",
    "register_columnar": "repro.api.columnar",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.api' has no attribute '{name}'")
    import importlib

    return getattr(importlib.import_module(module_name), name)
