"""Typed per-application schemas for the REST serving surface.

The paper's application registration declares, besides the name and the
latency SLO, the *input type* of the application — one of ``bytes``,
``ints``, ``floats``, ``doubles`` or ``strings`` — and Clipper rejects
queries whose input does not conform before they ever reach the serving
engine.  :class:`ApplicationSchema` is that contract for the reproduction:

* the declared input type and (optionally) the exact input shape,
* the default output rendered on SLO misses, and
* the application latency SLO,

derived from the application's :class:`~repro.core.config.ClipperConfig`
when it registers with a frontend.  Validation lives here — **once** — and
both surfaces run it: in-process callers through
:meth:`~repro.core.frontend.QueryFrontend.predict` and HTTP callers through
the same method behind :mod:`repro.api.http`, so a malformed input fails
identically whichever edge it entered through.

The module also owns the wire codec for inputs and outputs: JSON arrays for
the numeric types, plain strings for ``strings``, and base64 text for
``bytes`` (JSON has no binary type), plus :func:`json_safe` which renders
arbitrary prediction outputs (numpy scalars, arrays, bytes) as JSON values.
"""

from __future__ import annotations

import base64
import binascii
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.exceptions import (
    BadRequestError,
    ConfigurationError,
    ValidationError,
)

#: The paper's application input types mapped onto numpy dtypes (``bytes``
#: and ``strings`` stay native Python values).
INPUT_TYPES: Dict[str, Optional[np.dtype]] = {
    "ints": np.dtype(np.int64),
    "floats": np.dtype(np.float32),
    "doubles": np.dtype(np.float64),
    "bytes": None,
    "strings": None,
}

#: Numpy dtype kinds accepted per declared numeric type.  Integer inputs may
#: widen to floats; float inputs never silently truncate to ints.
_ACCEPTED_KINDS = {
    "ints": ("i", "u"),
    "floats": ("f", "i", "u"),
    "doubles": ("f", "i", "u"),
}


def check_type_name(type_name: str) -> str:
    """Validate a declared input/output type name, returning it unchanged."""
    if type_name not in INPUT_TYPES:
        raise ConfigurationError(
            f"unknown input type '{type_name}', expected one of "
            f"{sorted(INPUT_TYPES)}"
        )
    return type_name


def _conforms(type_name: str, value: Any) -> bool:
    """Whether a scalar value conforms to a declared output type."""
    if type_name == "ints":
        return isinstance(value, (int, np.integer)) and not isinstance(value, bool)
    if type_name in ("floats", "doubles"):
        return isinstance(
            value, (int, float, np.integer, np.floating)
        ) and not isinstance(value, bool)
    if type_name == "bytes":
        return isinstance(value, (bytes, bytearray))
    return isinstance(value, str)  # "strings"


def check_output_value(type_name: str, value: Any, *, what: str = "output") -> Any:
    """Validate a scalar output value against a declared type.

    Used by :class:`~repro.core.config.ClipperConfig` to reject a
    ``default_output`` that contradicts the application's declared output
    contract at construction time, before the application ever serves.
    """
    check_type_name(type_name)
    if not _conforms(type_name, value):
        raise ConfigurationError(
            f"{what} {value!r} does not conform to declared type '{type_name}'"
        )
    return value


@dataclass(frozen=True)
class ApplicationSchema:
    """The declarative serving contract of one application.

    ``input_type=None`` declares an untyped application: inputs pass through
    unvalidated (the pre-existing library behaviour), which keeps in-process
    embedders working but is discouraged for applications served over HTTP.
    """

    app_name: str
    input_type: Optional[str] = None
    input_shape: Optional[Tuple[int, ...]] = None
    output_type: Optional[str] = None
    default_output: Optional[Any] = None
    latency_slo_ms: float = 20.0
    selection_policy: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_config(cls, config: Any) -> "ApplicationSchema":
        """Derive the schema from a :class:`~repro.core.config.ClipperConfig`."""
        shape = config.input_shape
        return cls(
            app_name=config.app_name,
            input_type=config.input_type,
            input_shape=tuple(shape) if shape is not None else None,
            output_type=config.output_type,
            default_output=config.default_output,
            latency_slo_ms=config.latency_slo_ms,
            selection_policy=config.selection_policy,
        )

    # -- validation (shared by in-process and HTTP callers) --------------------

    def validate_input(self, x: Any) -> Any:
        """Coerce ``x`` to the declared contract or raise :class:`ValidationError`.

        This is the single input-validation path: every caller — in-process
        or HTTP — crosses it before a ``Query`` is built.  Numeric types
        return a C-contiguous ndarray of the declared dtype; ``bytes`` and
        ``strings`` return native values; an untyped schema passes ``x``
        through unchanged.
        """
        if self.input_type is None:
            return x
        if self.input_type == "bytes":
            if not isinstance(x, (bytes, bytearray, memoryview)):
                raise ValidationError(
                    f"application '{self.app_name}' takes bytes input, "
                    f"got {type(x).__name__}",
                    detail={"expected": "bytes", "got": type(x).__name__},
                )
            return bytes(x)
        if self.input_type == "strings":
            if not isinstance(x, str):
                raise ValidationError(
                    f"application '{self.app_name}' takes string input, "
                    f"got {type(x).__name__}",
                    detail={"expected": "strings", "got": type(x).__name__},
                )
            return x
        # Numeric vector types: ints / floats / doubles.
        if isinstance(x, (str, bytes, bytearray, memoryview, dict)):
            raise ValidationError(
                f"application '{self.app_name}' takes {self.input_type} input, "
                f"got {type(x).__name__}",
                detail={"expected": self.input_type, "got": type(x).__name__},
            )
        try:
            arr = np.asarray(x)
        except (ValueError, TypeError) as exc:
            raise ValidationError(
                f"input for application '{self.app_name}' is not a uniform "
                f"numeric array: {exc}",
                detail={"expected": self.input_type},
            ) from None
        if arr.dtype.kind not in _ACCEPTED_KINDS[self.input_type]:
            raise ValidationError(
                f"application '{self.app_name}' takes {self.input_type} input, "
                f"got array of dtype {arr.dtype}",
                detail={"expected": self.input_type, "got_dtype": str(arr.dtype)},
            )
        if self.input_shape is not None and arr.shape != self.input_shape:
            raise ValidationError(
                f"application '{self.app_name}' takes input of shape "
                f"{self.input_shape}, got {arr.shape}",
                detail={
                    "expected_shape": list(self.input_shape),
                    "got_shape": list(arr.shape),
                },
            )
        return np.ascontiguousarray(arr, dtype=INPUT_TYPES[self.input_type])

    def validate_label(self, label: Any) -> Any:
        """Check a feedback label against the declared output contract.

        Runs on every ``update`` — in-process or HTTP — so a label of the
        wrong type is rejected at the edge instead of silently scoring
        every model as wrong inside the selection policy.  An undeclared
        ``output_type`` passes everything through.
        """
        if self.output_type is None or _conforms(self.output_type, label):
            return label
        raise ValidationError(
            f"application '{self.app_name}' takes {self.output_type} labels, "
            f"got {type(label).__name__}",
            detail={"expected": self.output_type, "got": type(label).__name__},
        )

    # -- wire codec ------------------------------------------------------------

    def decode_wire_input(self, raw: Any) -> Any:
        """Decode the ``input`` field of a request body.

        The only transport-specific step: over JSON, ``bytes`` inputs travel
        as base64 text (JSON has no binary type) and are decoded here; the
        binary columnar encoding carries bytes natively, so ``bytes``-like
        values pass straight through.  Every other type's wire value is
        already the in-process representation.  Full validation happens
        afterwards in :meth:`validate_input`, shared with in-process
        callers.
        """
        if self.input_type == "bytes":
            if isinstance(raw, (bytes, bytearray, memoryview)):
                return bytes(raw)
            if not isinstance(raw, str):
                raise ValidationError(
                    f"application '{self.app_name}' takes bytes input, "
                    "encoded as a base64 string on the wire",
                    detail={"expected": "base64 string"},
                )
            try:
                return base64.b64decode(raw.encode("ascii"), validate=True)
            except (binascii.Error, ValueError, UnicodeEncodeError):
                raise ValidationError(
                    f"input for application '{self.app_name}' is not valid base64",
                    detail={"expected": "base64 string"},
                ) from None
        return raw

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly description of the contract (admin/introspection)."""
        return {
            "app_name": self.app_name,
            "input_type": self.input_type,
            "input_shape": list(self.input_shape) if self.input_shape else None,
            "output_type": self.output_type,
            "default_output": json_safe(self.default_output),
            "latency_slo_ms": self.latency_slo_ms,
            "selection_policy": self.selection_policy,
        }


def json_safe(value: Any) -> Any:
    """Render an arbitrary library value as a JSON-serializable one.

    Prediction outputs and metric snapshots carry numpy scalars/arrays and
    occasionally raw bytes; JSON has none of those.  Containers recurse;
    bytes become base64 text; anything unknown falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # NaN/Infinity are not JSON; render them as strings so a metrics
        # snapshot with an empty histogram still serializes.
        if value != value or value in (float("inf"), float("-inf")):
            return str(value)
        return value
    if isinstance(value, np.generic):
        return json_safe(value.item())
    if isinstance(value, np.ndarray):
        return json_safe(value.tolist())
    if isinstance(value, (bytes, bytearray)):
        return base64.b64encode(bytes(value)).decode("ascii")
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(item) for item in value]
    return str(value)


def require_object(body: Any, *, what: str = "request body") -> Dict[str, Any]:
    """Assert a decoded JSON body is an object; 400 otherwise."""
    if not isinstance(body, dict):
        raise BadRequestError(
            f"{what} must be a JSON object, got "
            f"{type(body).__name__ if body is not None else 'empty body'}"
        )
    return body


def require_field(body: Dict[str, Any], name: str) -> Any:
    """Fetch a required field from a JSON object body; 400 when absent."""
    if name not in body:
        raise BadRequestError(f"request body is missing required field '{name}'")
    return body[name]
