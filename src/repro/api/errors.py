"""Structured error model of the REST surface.

Every library exception carries a machine-readable ``code`` and an
``http_status`` (see :mod:`repro.core.exceptions`); this module renders them
into the wire payload both frontends return::

    {"error": {"code": "invalid_input", "status": 422,
               "message": "...", "detail": {...}}}

and defines the two errors that only exist at the routing edge (no route
matched; route exists but not for this method).  The mapping is total: any
exception that is not a :class:`~repro.core.exceptions.ClipperError` renders
as an opaque ``internal`` error so tracebacks never cross the boundary.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.exceptions import (
    BadRequestError,
    ClipperError,
    DuplicateApplicationError,
    OverloadError,
    UnknownApplicationError,
    ValidationError,
)

__all__ = [
    "ApiError",
    "BadRequestError",
    "DuplicateApplicationError",
    "MethodNotAllowedError",
    "NotAcceptableError",
    "OverloadError",
    "RouteNotFoundError",
    "UnknownApplicationError",
    "UnsupportedMediaTypeError",
    "ValidationError",
    "error_payload",
    "status_of",
]

#: Alias: the whole library hierarchy doubles as the API error hierarchy.
ApiError = ClipperError


class RouteNotFoundError(ClipperError):
    """No route in the table matches the request path."""

    code = "route_not_found"
    http_status = 404


class MethodNotAllowedError(ClipperError):
    """A route matches the path but not the request method."""

    code = "method_not_allowed"
    http_status = 405


class UnsupportedMediaTypeError(ClipperError):
    """The request body's content type has no registered decoder."""

    code = "unsupported_media_type"
    http_status = 415


class NotAcceptableError(ClipperError):
    """None of the media types the ``Accept`` header lists has an encoder."""

    code = "not_acceptable"
    http_status = 406


def status_of(exc: BaseException) -> int:
    """The HTTP status an exception maps to (500 for non-library errors)."""
    return getattr(exc, "http_status", 500)


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """Render any exception as the structured wire error object."""
    if isinstance(exc, ClipperError):
        code = exc.code
        status = exc.http_status
        message = str(exc)
        detail = dict(getattr(exc, "detail", {}) or {})
    else:
        # Never leak internals of an unexpected failure across the edge.
        code, status, message, detail = "internal", 500, "internal server error", {}
    return {
        "error": {
            "code": code,
            "status": status,
            "message": message,
            "detail": detail,
        }
    }
