"""Stdlib asyncio HTTP/1.1 binding for the versioned route table.

The thinnest possible REST edge: :class:`HttpApiServer` hosts a
:class:`~repro.api.routes.RouteTable` on ``asyncio.start_server`` — no
framework, no new dependencies.  It implements exactly what the serving
surface needs:

* HTTP/1.1 request parsing (request line, headers, ``Content-Length``
  bodies) with bounded header/body sizes,
* **keep-alive** connections (``Connection: close`` honoured; HTTP/1.0
  defaults to close) so clients amortize the TCP handshake across queries,
* JSON request/response bodies (binary inputs travel as base64 per the
  application schema), with **content-type negotiation**
  (:meth:`HttpApiServer.register_content_type`): proper ``Accept`` handling
  — multi-valued headers, ``q`` values, ``*/*``, 406 when nothing matches —
  selects among registered encodings.  :func:`create_server` registers the
  binary columnar format (:mod:`repro.api.columnar`) alongside JSON, whose
  responses stream out as zero-copy buffer segments,
* the structured error model: every failure — framing, routing, validation,
  serving — renders as ``{"error": {code, status, message, detail}}``.

Application lifecycle is delegated to the same
:func:`~repro.core.frontend.start_applications` /
:func:`~repro.core.frontend.stop_applications` helpers the frontends use:
applications start (all-or-nothing) *before* the listening socket binds, so
a partial start never leaves a listener accepting traffic it cannot serve.
"""

from __future__ import annotations

import asyncio
import json
import math
import socket
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple
from urllib.parse import parse_qsl

from repro.api.errors import (
    ApiError,
    BadRequestError,
    NotAcceptableError,
    UnsupportedMediaTypeError,
    error_payload,
    status_of,
)
from repro.api.routes import RouteTable
from repro.api.schema import json_safe
from repro.core.frontend import start_applications, stop_applications
from repro.observability.logging import configure_logging, get_logger

logger = get_logger("api.http")

#: Reason phrases for the statuses the API layer emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    406: "Not Acceptable",
    409: "Conflict",
    413: "Content Too Large",
    415: "Unsupported Media Type",
    422: "Unprocessable Content",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

JSON_CONTENT_TYPE = "application/json"

#: Static response-head fragments, rendered once and reused: the per-response
#: head is a join of cached byte fragments plus the one dynamic number
#: (``Content-Length``) — no per-response f-string assembly on the hot path.
_HEAD_PREFIXES: Dict[Tuple[int, bool], bytes] = {}
_CT_LINES: Dict[str, bytes] = {}


def _head_prefix(status: int, keep_alive: bool) -> bytes:
    """``HTTP/1.1 <status> <reason>\\r\\nConnection: ...\\r\\n``, cached."""
    key = (status, keep_alive)
    prefix = _HEAD_PREFIXES.get(key)
    if prefix is None:
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        prefix = f"HTTP/1.1 {status} {reason}\r\nConnection: {connection}\r\n".encode(
            "ascii"
        )
        _HEAD_PREFIXES[key] = prefix
    return prefix


def _content_type_line(content_type: str) -> bytes:
    line = _CT_LINES.get(content_type)
    if line is None:
        line = f"Content-Type: {content_type}\r\n".encode("ascii")
        _CT_LINES[content_type] = line
    return line


class _FramingError(Exception):
    """The connection's byte stream is not parseable HTTP; cannot resync."""


def _encode_json(body: Any) -> bytes:
    return json.dumps(json_safe(body), separators=(",", ":")).encode("utf-8")


def _decode_json(data: bytes) -> Any:
    return json.loads(data.decode("utf-8"))


class HttpApiServer:
    """Serves a route table over HTTP/1.1 on the asyncio event loop."""

    def __init__(
        self,
        routes: RouteTable,
        host: str = "127.0.0.1",
        port: int = 0,
        applications: Optional[Mapping[str, Any]] = None,
        managers: Sequence[Any] = (),
        max_body_bytes: int = 32 * 1024 * 1024,
        max_header_count: int = 100,
        keep_alive_timeout_s: Optional[float] = None,
    ) -> None:
        self.routes = routes
        self.host = host
        self._requested_port = port
        # Deliberately NOT copied: the frontends' live mapping is passed by
        # reference so applications registered after construction are still
        # started/stopped by the server's lifecycle.
        self._applications: Mapping[str, Any] = (
            applications if applications is not None else {}
        )
        # Lifecycle managers (e.g. a ManagementFrontend, whose start() brings
        # up health monitors and canary controllers) started after the
        # applications and stopped before them.  Their start/stop must be
        # idempotent for already-running state.
        self._managers: Sequence[Any] = tuple(managers)
        self._max_body_bytes = max_body_bytes
        self._max_header_count = max_header_count
        self._keep_alive_timeout_s = keep_alive_timeout_s
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: set = set()
        self._draining = False
        self._inflight = 0
        # Set whenever no request is mid-dispatch; drain() waits on it.
        self._idle = asyncio.Event()
        self._idle.set()
        self._encoders: Dict[str, Callable[[Any], bytes]] = {
            JSON_CONTENT_TYPE: _encode_json
        }
        self._decoders: Dict[str, Callable[[bytes], Any]] = {
            JSON_CONTENT_TYPE: _decode_json
        }
        self._applications_started = False
        self._managers_started = False

    # -- content-type negotiation hook -----------------------------------------

    def register_content_type(
        self,
        content_type: str,
        encoder: Optional[Callable[[Any], bytes]] = None,
        decoder: Optional[Callable[[bytes], Any]] = None,
    ) -> None:
        """Register an alternative wire encoding (e.g. a binary/columnar one).

        Requests select the decoder through ``Content-Type`` and the encoder
        through ``Accept``; JSON stays the default for both.
        """
        content_type = content_type.lower()
        if encoder is not None:
            self._encoders[content_type] = encoder
        if decoder is not None:
            self._decoders[content_type] = decoder

    # -- lifecycle -------------------------------------------------------------

    @property
    def port(self) -> Optional[int]:
        """The bound port (None until :meth:`start` succeeds)."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        """``http://host:port`` of the listening socket."""
        port = self.port
        if port is None:
            raise RuntimeError("server is not listening")
        return f"http://{self.host}:{port}"

    @property
    def is_serving(self) -> bool:
        return self._server is not None and self._server.is_serving()

    async def start(self) -> None:
        """Start applications and lifecycle managers, then bind the socket.

        All-or-nothing like the frontends: applications first (a failure
        stops the ones already up), then the managers (a
        ``ManagementFrontend``'s health monitors and canary controllers),
        and only then the listener — so **no listener is ever bound** to
        backends that cannot serve.  Any later failure unwinds everything
        started before the error propagates.
        """
        if self._server is not None:
            return
        # Idempotent process-wide logging setup: repeat server starts (or
        # multiple servers in one process) never stack duplicate handlers.
        configure_logging()
        if self._applications:
            await start_applications(self._applications)
            self._applications_started = True
        started_managers = []
        try:
            for manager in self._managers:
                await manager.start()
                started_managers.append(manager)
            self._managers_started = True
            self._server = await asyncio.start_server(
                self._serve_connection, host=self.host, port=self._requested_port
            )
            logger.info(
                "http server started",
                extra={"host": self.host, "port": self.port},
            )
        except BaseException:
            self._managers_started = False
            for manager in reversed(started_managers):
                try:
                    await manager.stop()
                except Exception:
                    pass  # surface the original failure, not the unwind
            if self._applications_started:
                self._applications_started = False
                try:
                    await stop_applications(self._applications)
                except Exception:
                    pass  # surface the original failure, not the unwind
            raise

    async def drain(self, timeout_s: float = 5.0) -> None:
        """Graceful SIGTERM path: stop accepting, finish in-flight, stop.

        The listening socket closes immediately (new connections are
        refused), responses currently being computed or written are allowed
        up to ``timeout_s`` to complete — requests answered while draining
        carry ``Connection: close`` — and then the ordinary :meth:`stop`
        teardown runs, which also hangs up idle keep-alive connections.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=timeout_s)
        except asyncio.TimeoutError:
            pass
        await self.stop()

    async def stop(self) -> None:
        """Close the listener and connections, then managers, then applications."""
        if self._server is not None:
            self._server.close()
            for writer in list(self._writers):
                writer.close()
            try:
                await self._server.wait_closed()
            finally:
                self._server = None
            logger.info("http server stopped", extra={"host": self.host})
        if self._managers_started:
            self._managers_started = False
            for manager in reversed(self._managers):
                await manager.stop()
        if self._applications_started:
            self._applications_started = False
            await stop_applications(self._applications)

    async def __aenter__(self) -> "HttpApiServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- connection handling ---------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None and sock.family in (socket.AF_INET, socket.AF_INET6):
            # Responses are written whole; never trade latency for batching.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _FramingError as exc:
                    # The stream cannot be re-synchronized: answer once and
                    # hang up.
                    await self._write_response(
                        writer,
                        400,
                        error_payload(BadRequestError(str(exc))),
                        JSON_CONTENT_TYPE,
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break  # client closed cleanly between requests
                method, path, query_string, headers, body_bytes = request
                keep_alive = self._wants_keep_alive(headers) and not self._draining
                self._inflight += 1
                self._idle.clear()
                try:
                    status, body, content_type, extra_headers = await self._dispatch(
                        method, path, query_string, headers, body_bytes
                    )
                    await self._write_response(
                        writer,
                        status,
                        body,
                        content_type,
                        keep_alive=keep_alive,
                        extra_headers=extra_headers,
                    )
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass  # peer went away mid-exchange; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, str, Dict[str, str], bytes]]:
        """Parse one request; None on clean EOF, :class:`_FramingError` on junk."""
        try:
            if self._keep_alive_timeout_s is not None:
                request_line = await asyncio.wait_for(
                    reader.readline(), timeout=self._keep_alive_timeout_s
                )
            else:
                request_line = await reader.readline()
        except asyncio.TimeoutError:
            return None
        except ValueError:
            raise _FramingError("request line exceeds the size limit") from None
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        try:
            parts = request_line.decode("ascii").split()
        except UnicodeDecodeError:
            raise _FramingError("request line is not ASCII") from None
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _FramingError("malformed HTTP request line")
        method, target, version = parts
        headers: Dict[str, str] = {"_http_version": version}
        # One extra iteration beyond the limit for the terminating blank
        # line, so a request with exactly max_header_count headers passes.
        for _ in range(self._max_header_count + 1):
            try:
                line = await reader.readline()
            except ValueError:
                raise _FramingError("header line exceeds the size limit") from None
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _FramingError("malformed HTTP header line")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _FramingError("too many HTTP headers")
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _FramingError("chunked request bodies are not supported")
        body = b""
        length_text = headers.get("content-length")
        if length_text is not None:
            try:
                length = int(length_text)
            except ValueError:
                raise _FramingError("Content-Length is not an integer") from None
            if length < 0:
                raise _FramingError("Content-Length is negative")
            if length > self._max_body_bytes:
                raise _FramingError(
                    f"request body exceeds the {self._max_body_bytes}-byte limit"
                )
            if length:
                try:
                    body = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    return None  # peer hung up mid-body
        path, _, query_string = target.partition("?")
        return method, path, query_string, headers, body

    @staticmethod
    def _wants_keep_alive(headers: Dict[str, str]) -> bool:
        connection = headers.get("connection", "").lower()
        if "close" in connection:
            return False
        if headers.get("_http_version") == "HTTP/1.0":
            return "keep-alive" in connection
        return True  # HTTP/1.1 default

    def _negotiate_accept(self, header: Optional[str]) -> str:
        """Pick the response encoding from the ``Accept`` header.

        Full media-range negotiation over the registered encoders:
        comma-separated ranges with ``q`` values; ``*/*`` (and
        ``application/*``) mean "anything", which negotiation answers with
        JSON; the highest ``q`` wins and the first-listed range wins ties.
        No header — or one with no parseable range — keeps the JSON
        default; a header that explicitly rules out every registered
        encoder is a 406 :class:`NotAcceptableError`.
        """
        if header is None:
            return JSON_CONTENT_TYPE
        best: Optional[str] = None
        best_q = 0.0
        saw_range = False
        for item in header.split(","):
            fields = item.split(";")
            media = fields[0].strip().lower()
            if not media:
                continue
            saw_range = True
            q = 1.0
            for param in fields[1:]:
                name, _, value = param.strip().partition("=")
                if name.strip().lower() == "q":
                    try:
                        q = float(value)
                    except ValueError:
                        q = 0.0
            if q <= 0.0:
                continue  # q=0 means "never send me this"
            if media in ("*/*", "application/*"):
                candidate = JSON_CONTENT_TYPE
            elif media in self._encoders:
                candidate = media
            else:
                continue
            if q > best_q:
                best, best_q = candidate, q
        if best is not None:
            return best
        if not saw_range:
            return JSON_CONTENT_TYPE
        raise NotAcceptableError(
            f"no registered encoder satisfies Accept '{header}'",
            detail={"supported": sorted(self._encoders)},
        )

    async def _dispatch(
        self,
        method: str,
        path: str,
        query_string: str,
        headers: Dict[str, str],
        body_bytes: bytes,
    ) -> Tuple[int, Any, str, Dict[str, str]]:
        """Route one request; every failure renders as the structured error.

        Errors always render as JSON regardless of the negotiated encoding
        (negotiation itself may be what failed); clients pick their response
        decoder by the ``Content-Type`` header, not by what they asked for.
        """
        try:
            accept = self._negotiate_accept(headers.get("accept"))
            body: Any = None
            if body_bytes:
                content_type = (
                    headers.get("content-type", JSON_CONTENT_TYPE)
                    .split(";")[0]
                    .strip()
                    .lower()
                )
                decoder = self._decoders.get(content_type)
                if decoder is None:
                    raise UnsupportedMediaTypeError(
                        f"no decoder registered for content type '{content_type}'",
                        detail={"supported": sorted(self._decoders)},
                    )
                try:
                    body = decoder(body_bytes)
                except ApiError:
                    # A decoder speaking the structured error model (e.g. the
                    # columnar codec's 400 on a corrupt frame) speaks for
                    # itself; everything else is a generic bad request.
                    raise
                except Exception:
                    raise BadRequestError(
                        f"request body is not valid {content_type}"
                    ) from None
            query = dict(parse_qsl(query_string)) if query_string else None
            response = await self.routes.dispatch(
                method, path, body, query=query, headers=headers
            )
            return response.status, response.body, accept, response.headers or {}
        except Exception as exc:  # noqa: BLE001 — the edge maps everything
            status = status_of(exc)
            if status >= 500:
                logger.error(
                    "request failed",
                    extra={
                        "method": method,
                        "path": path,
                        "status": status,
                        "error_type": type(exc).__name__,
                    },
                    exc_info=True,
                )
            extra_headers: Dict[str, str] = {}
            retry_after_s = getattr(exc, "retry_after_s", None)
            if retry_after_s is not None:
                # Load-shed responses (429/503) tell clients when to come
                # back; integral seconds per RFC 9110, rounded up so a
                # sub-second hint never renders as "retry immediately".
                extra_headers["Retry-After"] = str(
                    max(1, int(math.ceil(retry_after_s)))
                )
            return status, error_payload(exc), JSON_CONTENT_TYPE, extra_headers

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: Any,
        content_type: str,
        keep_alive: bool,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        """Write one response; ``extra_headers`` come from the handler.

        A handler-supplied ``Content-Type`` overrides negotiation and makes
        a ``str``/``bytes`` body travel raw (how the Prometheus text
        exposition bypasses the JSON encoder); other extra headers are
        emitted verbatim (e.g. ``X-Clipper-Trace-Id``).

        Encoders may return either one ``bytes`` payload or a writev-style
        *list* of byte segments (how the columnar encoder hands back
        zero-copy ndarray views): the head is joined from precomputed
        fragments and the body segments go to the stream with
        ``writelines`` — the body is never concatenated with its headers.
        """
        extra = b""
        if extra_headers:
            override = None
            lines = []
            for name, value in extra_headers.items():
                if name.lower() == "content-type":
                    override = value
                else:
                    lines.append(f"{name}: {value}\r\n")
            if lines:
                extra = "".join(lines).encode("latin-1")
            if override is not None:
                content_type = override
        if isinstance(body, (str, bytes)) and content_type not in self._encoders:
            segments = [body.encode("utf-8") if isinstance(body, str) else body]
        else:
            encoder = self._encoders.get(content_type, _encode_json)
            try:
                payload = encoder(body)
            except Exception:
                # A response the negotiated encoder cannot represent is an
                # internal error; fall back to the JSON error shape.
                content_type = JSON_CONTENT_TYPE
                status = 500
                payload = _encode_json(error_payload(Exception()))
            segments = payload if isinstance(payload, list) else [payload]
        length = sum(len(segment) for segment in segments)
        head = b"".join(
            (
                _head_prefix(status, keep_alive),
                _content_type_line(content_type),
                b"Content-Length: %d\r\n" % length,
                extra,
                b"\r\n",
            )
        )
        writer.write(head)
        writer.writelines(segments)
        await writer.drain()


def create_server(
    query=None,
    admin=None,
    factories: Optional[Mapping[str, Callable[[], object]]] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    columnar: bool = True,
    **server_kwargs: Any,
) -> HttpApiServer:
    """Build the route table over the frontends and wrap it in a server.

    Unless ``columnar=False``, the binary columnar content type
    (:mod:`repro.api.columnar`) is registered alongside JSON, so
    binary-speaking clients negotiate it via ``Accept``/``Content-Type``
    out of the box.

    The server owns the lifecycle of every application either frontend
    hosts — including ones registered *after* this call: the frontends'
    live mappings are handed to the server by reference (a
    :class:`~collections.ChainMap` view when both frontends are given), so
    :meth:`HttpApiServer.start` brings up exactly the applications hosted
    at start time (all-or-nothing) before binding, and
    :meth:`HttpApiServer.stop` stops the ones hosted at stop time.  An
    ``admin`` frontend is also registered as a lifecycle *manager*: the
    server starts/stops it, so its health monitors and canary controllers
    run whenever the server serves (both are idempotent if the operator
    already started the frontend themselves).
    """
    from collections import ChainMap

    from repro.api.handlers import build_route_table

    maps = [
        frontend.hosted_applications()
        for frontend in (query, admin)
        if frontend is not None
    ]
    applications: Mapping[str, Any] = maps[0] if len(maps) == 1 else ChainMap(*maps)
    routes = build_route_table(query=query, admin=admin, factories=factories)
    server = HttpApiServer(
        routes,
        host=host,
        port=port,
        applications=applications,
        managers=(admin,) if admin is not None else (),
        **server_kwargs,
    )
    if columnar:
        from repro.api.columnar import register_columnar

        register_columnar(server)
    return server
