"""Arrival processes for open-loop query workloads.

The serving experiments in the paper are driven by request streams of
different shapes: steady high-rate load (throughput measurements), moderate
load (the delayed-batching experiment explicitly targets "moderate or bursty
loads"), and bursty flash-crowd style arrivals.  Each process yields
inter-arrival gaps in seconds and is deterministic under a fixed seed.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np


class ArrivalProcess:
    """Base class: an iterator of inter-arrival gaps (seconds)."""

    def gaps(self, n: int) -> Iterator[float]:
        """Yield ``n`` inter-arrival gaps."""
        raise NotImplementedError

    def arrival_times(self, n: int, start: float = 0.0) -> np.ndarray:
        """Absolute arrival times of ``n`` queries starting at ``start``."""
        times = np.empty(n)
        current = start
        for i, gap in enumerate(self.gaps(n)):
            current += gap
            times[i] = current
        return times


class ConstantArrivals(ArrivalProcess):
    """Fixed-rate arrivals: one query every ``1/rate_qps`` seconds."""

    def __init__(self, rate_qps: float) -> None:
        if rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        self.rate_qps = rate_qps

    def gaps(self, n: int) -> Iterator[float]:
        gap = 1.0 / self.rate_qps
        for _ in range(n):
            yield gap


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals with exponential inter-arrival gaps."""

    def __init__(self, rate_qps: float, random_state: Optional[int] = None) -> None:
        if rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        self.rate_qps = rate_qps
        self._rng = np.random.default_rng(random_state)

    def gaps(self, n: int) -> Iterator[float]:
        for gap in self._rng.exponential(1.0 / self.rate_qps, size=n):
            yield float(gap)


class BurstyArrivals(ArrivalProcess):
    """Two-state (on/off) bursty arrivals.

    Alternates between a burst state, where queries arrive at ``burst_qps``,
    and an idle state at ``idle_qps``; state dwell times are geometric with
    the configured mean lengths.  Models flash-crowd behaviour such as a
    breaking-news traffic spike.
    """

    def __init__(
        self,
        burst_qps: float,
        idle_qps: float,
        mean_burst_length: int = 50,
        mean_idle_length: int = 50,
        random_state: Optional[int] = None,
    ) -> None:
        if burst_qps <= 0 or idle_qps <= 0:
            raise ValueError("rates must be positive")
        if mean_burst_length < 1 or mean_idle_length < 1:
            raise ValueError("mean state lengths must be >= 1")
        self.burst_qps = burst_qps
        self.idle_qps = idle_qps
        self.mean_burst_length = mean_burst_length
        self.mean_idle_length = mean_idle_length
        self._rng = np.random.default_rng(random_state)

    def gaps(self, n: int) -> Iterator[float]:
        emitted = 0
        in_burst = True
        while emitted < n:
            mean_length = self.mean_burst_length if in_burst else self.mean_idle_length
            length = int(self._rng.geometric(1.0 / mean_length))
            length = min(length, n - emitted)
            rate = self.burst_qps if in_burst else self.idle_qps
            for gap in self._rng.exponential(1.0 / rate, size=length):
                yield float(gap)
            emitted += length
            in_burst = not in_burst
