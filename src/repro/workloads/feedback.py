"""Simulated feedback streams for the online-learning experiments.

The selection-layer experiments (Figures 8 and 10) replay a stream of
labelled queries: every query is answered, then its true label is returned
to Clipper as feedback so the selection policy can adapt.  A
:class:`FeedbackStream` packages that loop, including the *model degradation
window* used in Figure 8 where the best model's predictions are corrupted
for a span of queries and later recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence

import numpy as np


@dataclass
class FeedbackEvent:
    """One step of the feedback replay: an input and its true label."""

    index: int
    input: Any
    label: Any
    user_id: Optional[str] = None


class FeedbackStream:
    """Replays labelled data as an online query-then-feedback stream."""

    def __init__(
        self,
        inputs: Sequence[Any],
        labels: Sequence[Any],
        user_ids: Optional[Sequence[Optional[str]]] = None,
        shuffle: bool = True,
        random_state: Optional[int] = None,
    ) -> None:
        if len(inputs) != len(labels):
            raise ValueError("inputs and labels must align")
        if len(inputs) == 0:
            raise ValueError("inputs must be non-empty")
        if user_ids is not None and len(user_ids) != len(inputs):
            raise ValueError("user_ids must align with inputs when provided")
        self.inputs = list(inputs)
        self.labels = list(labels)
        self.user_ids = list(user_ids) if user_ids is not None else None
        self.shuffle = shuffle
        self._rng = np.random.default_rng(random_state)

    def events(self, n: int) -> Iterator[FeedbackEvent]:
        """Yield ``n`` feedback events, cycling (reshuffled) through the data."""
        if n < 1:
            raise ValueError("n must be >= 1")
        emitted = 0
        while emitted < n:
            order = np.arange(len(self.inputs))
            if self.shuffle:
                self._rng.shuffle(order)
            for index in order:
                if emitted >= n:
                    return
                yield FeedbackEvent(
                    index=emitted,
                    input=self.inputs[index],
                    label=self.labels[index],
                    user_id=self.user_ids[index] if self.user_ids is not None else None,
                )
                emitted += 1


def degrade_prediction(
    prediction: Any,
    n_classes: int,
    rng: np.random.Generator,
    corruption_rate: float = 0.9,
) -> Any:
    """Corrupt a model prediction with the given probability.

    Used to simulate the "severe model degradation" of Figure 8: while the
    degradation window is active, the failing model's outputs are replaced by
    a uniformly random wrong label with probability ``corruption_rate``.
    """
    if not 0.0 <= corruption_rate <= 1.0:
        raise ValueError("corruption_rate must be in [0, 1]")
    if rng.random() >= corruption_rate:
        return prediction
    wrong = int(rng.integers(0, n_classes))
    if wrong == prediction:
        wrong = (wrong + 1) % n_classes
    return wrong
