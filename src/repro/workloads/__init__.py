"""Query workload generation: arrival processes, clients and feedback streams."""

from repro.workloads.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    ConstantArrivals,
    PoissonArrivals,
)
from repro.workloads.clients import ClosedLoopClient, OpenLoopClient, WorkloadResult
from repro.workloads.feedback import FeedbackStream

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "ConstantArrivals",
    "BurstyArrivals",
    "OpenLoopClient",
    "ClosedLoopClient",
    "WorkloadResult",
    "FeedbackStream",
]
