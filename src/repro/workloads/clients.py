"""Workload clients driving a Clipper instance and collecting measurements.

Two client shapes cover the paper's serving experiments:

* :class:`ClosedLoopClient` — a fixed number of concurrent "users", each
  issuing the next query as soon as the previous prediction returns.  This is
  how the maximum-sustained-throughput numbers (Figures 4 and 11) are
  measured: concurrency is raised until the system saturates.
* :class:`OpenLoopClient` — queries arrive according to an
  :class:`~repro.workloads.arrivals.ArrivalProcess` independent of response
  times, which is the right model for the moderate/bursty-load experiments
  (Figure 5) where queueing behaviour matters.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


from repro.core.clipper import Clipper
from repro.core.exceptions import ClipperError, PredictionTimeoutError
from repro.core.metrics import summarize_latencies, throughput_qps
from repro.core.types import Prediction, Query
from repro.workloads.arrivals import ArrivalProcess


@dataclass
class WorkloadResult:
    """Aggregate measurements from one workload run."""

    num_queries: int
    num_errors: int
    elapsed_s: float
    latencies_ms: List[float] = field(default_factory=list)
    predictions: List[Prediction] = field(default_factory=list)

    @property
    def throughput_qps(self) -> float:
        return throughput_qps(self.num_queries - self.num_errors, self.elapsed_s)

    def latency_summary(self) -> Dict[str, float]:
        return summarize_latencies(self.latencies_ms)

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_summary()["mean"]

    @property
    def p99_latency_ms(self) -> float:
        return self.latency_summary()["p99"]


class _QuerySource:
    """Cycles through a pool of inputs, assigning optional user contexts."""

    def __init__(
        self,
        app_name: str,
        inputs: Sequence[Any],
        user_ids: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        if len(inputs) == 0:
            raise ValueError("inputs must be non-empty")
        self.app_name = app_name
        self.inputs = list(inputs)
        self.user_ids = list(user_ids) if user_ids is not None else None
        if self.user_ids is not None and len(self.user_ids) != len(self.inputs):
            raise ValueError("user_ids must align with inputs when provided")
        self._next = 0

    def next_query(self) -> Query:
        index = self._next % len(self.inputs)
        self._next += 1
        user_id = self.user_ids[index] if self.user_ids is not None else None
        return Query(app_name=self.app_name, input=self.inputs[index], user_id=user_id)


class ClosedLoopClient:
    """Fixed-concurrency client measuring sustained throughput and latency."""

    def __init__(
        self,
        clipper: Clipper,
        inputs: Sequence[Any],
        concurrency: int = 8,
        user_ids: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.clipper = clipper
        self.concurrency = concurrency
        self._source = _QuerySource(clipper.config.app_name, inputs, user_ids)

    async def run(self, num_queries: int) -> WorkloadResult:
        """Issue ``num_queries`` queries with the configured concurrency."""
        if num_queries < 1:
            raise ValueError("num_queries must be >= 1")
        latencies: List[float] = []
        predictions: List[Prediction] = []
        errors = 0
        remaining = num_queries
        lock = asyncio.Lock()

        async def worker() -> None:
            nonlocal remaining, errors
            while True:
                async with lock:
                    if remaining <= 0:
                        return
                    remaining -= 1
                    query = self._source.next_query()
                try:
                    prediction = await self.clipper.predict(query)
                    latencies.append(prediction.latency_ms)
                    predictions.append(prediction)
                except (PredictionTimeoutError, ClipperError):
                    errors += 1

        start = time.perf_counter()
        await asyncio.gather(*[worker() for _ in range(self.concurrency)])
        elapsed = time.perf_counter() - start
        return WorkloadResult(
            num_queries=num_queries,
            num_errors=errors,
            elapsed_s=elapsed,
            latencies_ms=latencies,
            predictions=predictions,
        )

    def run_sync(self, num_queries: int) -> WorkloadResult:
        """Blocking wrapper (runs on the Clipper instance's private loop)."""
        return self.clipper._run_coroutine_now(self.run(num_queries))


class OpenLoopClient:
    """Arrival-process-driven client (queries issued independent of responses)."""

    def __init__(
        self,
        clipper: Clipper,
        inputs: Sequence[Any],
        arrivals: ArrivalProcess,
        user_ids: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        self.clipper = clipper
        self.arrivals = arrivals
        self._source = _QuerySource(clipper.config.app_name, inputs, user_ids)

    async def run(self, num_queries: int) -> WorkloadResult:
        """Issue ``num_queries`` queries following the arrival process."""
        if num_queries < 1:
            raise ValueError("num_queries must be >= 1")
        latencies: List[float] = []
        predictions: List[Prediction] = []
        errors = 0
        tasks: List[asyncio.Task] = []

        async def issue(query: Query) -> None:
            nonlocal errors
            try:
                prediction = await self.clipper.predict(query)
                latencies.append(prediction.latency_ms)
                predictions.append(prediction)
            except (PredictionTimeoutError, ClipperError):
                errors += 1

        start = time.perf_counter()
        loop_start = time.monotonic()
        arrival_offsets = self.arrivals.arrival_times(num_queries)
        # Normalise so the first query fires immediately.
        arrival_offsets = arrival_offsets - arrival_offsets[0]
        for offset in arrival_offsets:
            now = time.monotonic() - loop_start
            delay = float(offset) - now
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.get_event_loop().create_task(issue(self._source.next_query())))
        if tasks:
            await asyncio.gather(*tasks)
        elapsed = time.perf_counter() - start
        return WorkloadResult(
            num_queries=num_queries,
            num_errors=errors,
            elapsed_s=elapsed,
            latencies_ms=latencies,
            predictions=predictions,
        )

    def run_sync(self, num_queries: int) -> WorkloadResult:
        """Blocking wrapper (runs on the Clipper instance's private loop)."""
        return self.clipper._run_coroutine_now(self.run(num_queries))
