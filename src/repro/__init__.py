"""repro — a from-scratch Python reproduction of Clipper (NSDI 2017).

Clipper is a low-latency online prediction serving system that interposes
between end-user applications and machine learning frameworks.  It is split
into a *model abstraction layer* (prediction cache, adaptive batching, model
containers connected over a lightweight RPC system) and a *model selection
layer* (bandit-based single-model and ensemble selection policies, confidence
estimation, straggler mitigation and contextualization).

The top-level package re-exports the most commonly used entry points so that
a downstream user can write::

    from repro import Clipper, ClipperConfig, ModelContainer

and get a working serving system.  Sub-packages:

``repro.core``
    The Clipper serving engine, query frontend, configuration and metrics.
``repro.cache``
    Prediction cache with CLOCK/LRU eviction (paper §4.2).
``repro.batching``
    Adaptive batching queues and batch-size controllers (paper §4.3).
``repro.containers``
    Model containers and replica management (paper §4.4).
``repro.rpc``
    The lightweight RPC system connecting Clipper to model containers.
``repro.selection``
    Model selection policies: Exp3, Exp4, ensembles, contextualization (§5).
``repro.state``
    In-memory key-value store used for externalized selection state.
``repro.routing``
    The routing layer: traffic-split tables, deterministic weighted arm
    assignment, canary rollout lifecycle and metrics-driven promotion.
``repro.management``
    The management plane: versioned model registry, live rollout/rollback,
    runtime replica scaling and health-driven replica recovery.
``repro.api``
    The REST surface: typed application schemas, the structured error
    model, the versioned route table and the stdlib asyncio HTTP binding.
``repro.client``
    The client SDK (``ClipperClient`` / ``AdminClient``): applications talk
    to a served Clipper over HTTP without importing the serving engine.
``repro.mlkit``
    A from-scratch numpy machine-learning framework standing in for
    Scikit-Learn / Spark MLlib / Caffe / TensorFlow / HTK.
``repro.datasets``
    Synthetic stand-ins for MNIST, CIFAR-10, ImageNet and TIMIT.
``repro.workloads``
    Open/closed-loop query workload generators and feedback simulation.
``repro.simulation``
    Discrete-event cluster simulator for scale-out experiments.
``repro.baselines``
    TensorFlow-Serving-like comparator and non-adaptive selection baselines.
"""

from repro.core.clipper import Clipper
from repro.core.config import BatchingConfig, ClipperConfig, ModelDeployment
from repro.core.frontend import QueryFrontend
from repro.core.types import Feedback, Prediction, Query
from repro.containers.base import ModelContainer
from repro.management.frontend import ManagementFrontend
from repro.routing.split import TrafficSplit
from repro.selection.policy import SelectionPolicy

__version__ = "1.0.0"

__all__ = [
    "Clipper",
    "ClipperConfig",
    "BatchingConfig",
    "ModelDeployment",
    "ManagementFrontend",
    "QueryFrontend",
    "TrafficSplit",
    "Query",
    "Prediction",
    "Feedback",
    "ModelContainer",
    "SelectionPolicy",
    "__version__",
]
