"""Prometheus text-format (0.0.4) exposition of :class:`MetricsRegistry`.

The registry's internal names are dotted (``predict.latency_ms``) and may
carry one inline label from the family API (``predict.stage_ms{stage="rpc.send"}``);
the renderer sanitises names, re-parses inline labels, and always adds an
``app`` label identifying which application's registry a sample came from.

Mapping:

* ``Counter`` → ``counter`` with the conventional ``_total`` suffix.
* ``Meter``   → ``gauge`` (the windowed events/second rate, ``_rate`` suffix).
* ``Gauge``   → ``gauge`` (point-in-time value, no suffix).
* ``Histogram`` → ``histogram`` with cumulative ``_bucket{le=...}`` lines
  plus ``_sum``/``_count`` — all computed over the *sliding window* of
  retained observations (the reservoir drops old samples, so these are
  window-consistent rather than lifetime-cumulative; HELP says so).

A minimal parser/validator (:func:`parse_exposition`, :func:`validate`)
lives here too, shared by the CI smoke script and the tests, so the
exposition is checked by something independent of the renderer's string
building.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.metrics import MetricsRegistry

__all__ = [
    "DEFAULT_BUCKETS_MS",
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "parse_exposition",
    "validate",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Latency bucket upper bounds in milliseconds — spans the sub-ms in-process
#: hot path through the HTTP edge and slow containers.
DEFAULT_BUCKETS_MS = (
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
)

_NAME_SANITISE = re.compile(r"[^a-zA-Z0-9_:]")
_INLINE_LABEL = re.compile(r'^(?P<base>[^{]+)\{(?P<label>[^=]+)="(?P<value>.*)"\}$')


def _metric_name(raw: str, namespace: str, suffix: str = "") -> str:
    name = _NAME_SANITISE.sub("_", raw)
    if name and name[0].isdigit():
        name = "_" + name
    return f"{namespace}_{name}{suffix}" if namespace else f"{name}{suffix}"


def _split_inline_label(raw: str) -> Tuple[str, Optional[Tuple[str, str]]]:
    """Split ``base{stage="x"}`` family-child names into (base, (label, value))."""
    match = _INLINE_LABEL.match(raw)
    if match is None:
        return raw, None
    return match.group("base"), (match.group("label").strip(), match.group("value"))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


class _FamilyBuffer:
    """Accumulates samples per exposition family so HELP/TYPE render once."""

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples: List[str] = []


def render_prometheus(
    registries: Mapping[str, MetricsRegistry],
    namespace: str = "clipper",
    buckets_ms: Tuple[float, ...] = DEFAULT_BUCKETS_MS,
) -> str:
    """Render one or more registries as a Prometheus text exposition.

    ``registries`` maps an ``app`` label value (application name, or e.g.
    ``"server"``) to its registry; every sample carries that label so one
    scrape covers every application a server hosts.
    """
    families: Dict[str, _FamilyBuffer] = {}

    def family(name: str, kind: str, help_text: str) -> _FamilyBuffer:
        buf = families.get(name)
        if buf is None:
            buf = families[name] = _FamilyBuffer(name, kind, help_text)
        return buf

    for app, registry in registries.items():
        counters, meters, histograms, gauges = registry.all_metrics()
        for raw, counter in counters.items():
            base, inline = _split_inline_label(raw)
            name = _metric_name(base, namespace, "_total")
            labels = {"app": app}
            if inline:
                labels[_NAME_SANITISE.sub("_", inline[0])] = inline[1]
            buf = family(name, "counter", f"Counter {base} from MetricsRegistry.")
            buf.samples.append(
                f"{name}{_render_labels(labels)} {_format_value(float(counter.value))}"
            )
        for raw, meter in meters.items():
            base, inline = _split_inline_label(raw)
            name = _metric_name(base, namespace, "_rate")
            labels = {"app": app}
            if inline:
                labels[_NAME_SANITISE.sub("_", inline[0])] = inline[1]
            buf = family(
                name, "gauge", f"Events/second rate of meter {base} since reset."
            )
            buf.samples.append(
                f"{name}{_render_labels(labels)} {_format_value(meter.rate())}"
            )
        for raw, gauge in gauges.items():
            base, inline = _split_inline_label(raw)
            name = _metric_name(base, namespace)
            labels = {"app": app}
            if inline:
                labels[_NAME_SANITISE.sub("_", inline[0])] = inline[1]
            buf = family(name, "gauge", f"Gauge {base} from MetricsRegistry.")
            buf.samples.append(
                f"{name}{_render_labels(labels)} {_format_value(gauge.value)}"
            )
        for raw, histogram in histograms.items():
            base, inline = _split_inline_label(raw)
            name = _metric_name(base, namespace)
            labels = {"app": app}
            if inline:
                labels[_NAME_SANITISE.sub("_", inline[0])] = inline[1]
            buf = family(
                name,
                "histogram",
                f"Sliding-window distribution of {base} "
                "(buckets cover retained observations only).",
            )
            values = histogram.values()
            counts = [0] * len(buckets_ms)
            total = 0.0
            for value in values:
                total += value
                for i, bound in enumerate(buckets_ms):
                    if value <= bound:
                        counts[i] += 1
                        break
            cumulative = 0
            for bound, bucket_count in zip(buckets_ms, counts):
                cumulative += bucket_count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_value(bound)
                buf.samples.append(
                    f"{name}_bucket{_render_labels(bucket_labels)} {cumulative}"
                )
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            buf.samples.append(
                f"{name}_bucket{_render_labels(inf_labels)} {len(values)}"
            )
            buf.samples.append(
                f"{name}_sum{_render_labels(labels)} {_format_value(total)}"
            )
            buf.samples.append(f"{name}_count{_render_labels(labels)} {len(values)}")

    lines: List[str] = []
    for name in sorted(families):
        buf = families[name]
        lines.append(f"# HELP {buf.name} {_escape_help(buf.help)}")
        lines.append(f"# TYPE {buf.name} {buf.kind}")
        lines.extend(buf.samples)
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# Minimal parser / validator (used by tests and the CI smoke script).
# ---------------------------------------------------------------------------

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(text: str) -> str:
    return (
        text.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def parse_exposition(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse a text exposition into ``{family: {type, help, samples}}``.

    Raises ``ValueError`` on malformed lines, samples preceding their TYPE
    declaration being typed inconsistently, or unparsable values — enough
    validation to catch renderer regressions without reimplementing a full
    Prometheus client.
    """
    families: Dict[str, Dict[str, Any]] = {}

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and base in families:
                return base
        if sample_name in families:
            return sample_name
        return sample_name

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(" ", 1)
            name = parts[0]
            families.setdefault(name, {"samples": []})["help"] = (
                parts[1] if len(parts) > 1 else ""
            )
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split(" ", 1)
            if len(parts) != 2 or parts[1] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                raise ValueError(f"line {lineno}: malformed TYPE line: {line!r}")
            families.setdefault(parts[0], {"samples": []})["type"] = parts[1]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample line: {line!r}")
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: unparsable sample value {raw_value!r}"
            ) from exc
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for pair in _LABEL_PAIR.finditer(raw_labels):
                labels[pair.group(1)] = _unescape_label_value(pair.group(2))
                consumed = pair.end()
            remainder = raw_labels[consumed:].strip().strip(",")
            if remainder:
                raise ValueError(
                    f"line {lineno}: malformed labels {raw_labels!r}"
                )
        name = match.group("name")
        families.setdefault(family_of(name), {"samples": []})["samples"].append(
            {"name": name, "labels": labels, "value": value}
        )
    return families


def validate(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse and structurally validate an exposition; returns the families.

    Beyond :func:`parse_exposition`, checks that every family with samples
    has TYPE and HELP lines and that histogram families have monotonically
    non-decreasing buckets ending in a ``+Inf`` bucket that equals ``_count``.
    """
    families = parse_exposition(text)
    if not families:
        raise ValueError("empty exposition")
    for name, info in families.items():
        samples = info.get("samples", [])
        if not samples:
            continue
        if "type" not in info:
            raise ValueError(f"family {name}: missing TYPE line")
        if "help" not in info:
            raise ValueError(f"family {name}: missing HELP line")
        if info["type"] == "histogram":
            _validate_histogram(name, samples)
    return families


def _validate_histogram(name: str, samples: List[Dict[str, Any]]) -> None:
    series: Dict[Tuple[Tuple[str, str], ...], Dict[str, Any]] = {}
    for sample in samples:
        labels = {k: v for k, v in sample["labels"].items() if k != "le"}
        key = tuple(sorted(labels.items()))
        entry = series.setdefault(key, {"buckets": [], "count": None})
        if sample["name"] == f"{name}_bucket":
            le = sample["labels"].get("le")
            if le is None:
                raise ValueError(f"family {name}: bucket sample missing le label")
            bound = math.inf if le == "+Inf" else float(le)
            entry["buckets"].append((bound, sample["value"]))
        elif sample["name"] == f"{name}_count":
            entry["count"] = sample["value"]
    for key, entry in series.items():
        buckets = sorted(entry["buckets"])
        if not buckets:
            raise ValueError(f"family {name}: histogram series {key} has no buckets")
        if buckets[-1][0] != math.inf:
            raise ValueError(f"family {name}: series {key} missing +Inf bucket")
        last = -math.inf
        for bound, count in buckets:
            if count < last:
                raise ValueError(
                    f"family {name}: series {key} buckets not cumulative"
                )
            last = count
        if entry["count"] is not None and buckets[-1][1] != entry["count"]:
            raise ValueError(
                f"family {name}: series {key} +Inf bucket != _count"
            )
