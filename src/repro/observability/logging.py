"""Structured JSON logging with trace-id correlation.

All repro components log through ``get_logger(name)``, which returns a child
of the ``repro`` logger.  :func:`configure_logging` installs a single
JSON-lines handler on that root exactly once per process — calling it again
(each HTTP server start does) is a no-op, so multiple servers in one process
never duplicate handlers.  Extra keyword context rides along via ``extra=``
and is merged into the JSON record, which is how log lines carry
``trace_id`` fields that join against the :class:`~repro.observability.tracing.TraceRegistry`.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Dict, Optional, TextIO

__all__ = ["JsonFormatter", "configure_logging", "get_logger"]

ROOT_LOGGER_NAME = "repro"

#: Attribute marking handlers installed by :func:`configure_logging`, so
#: repeat calls (and the asyncio-logger guard) can detect them.
_MARKER = "_repro_structured"

#: LogRecord attributes that are plumbing, not user context.
_RESERVED = frozenset(
    (
        "args",
        "asctime",
        "created",
        "exc_info",
        "exc_text",
        "filename",
        "funcName",
        "levelname",
        "levelno",
        "lineno",
        "message",
        "module",
        "msecs",
        "msg",
        "name",
        "pathname",
        "process",
        "processName",
        "relativeCreated",
        "stack_info",
        "taskName",
        "thread",
        "threadName",
    )
)


class JsonFormatter(logging.Formatter):
    """Render each record as one JSON object per line.

    Standard fields: ``ts`` (epoch seconds), ``level``, ``logger``,
    ``event`` (the formatted message).  Anything passed via ``extra=`` —
    ``trace_id``, ``model``, ``app`` … — is merged in at the top level.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_") or key in payload:
                continue
            payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def _structured_handler(stream: Optional[TextIO]) -> logging.Handler:
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter())
    setattr(handler, _MARKER, True)
    return handler


def _has_structured_handler(logger: logging.Logger) -> bool:
    return any(getattr(h, _MARKER, False) for h in logger.handlers)


def _guard_asyncio_logger(stream: Optional[TextIO]) -> None:
    """Give the ``asyncio`` logger one structured handler, never more.

    The stdlib event loop logs callback exceptions through this logger; an
    unconditional ``addHandler`` here would stack a duplicate per server
    started in the process, so the guard is the whole point.
    """
    logger = logging.getLogger("asyncio")
    if not _has_structured_handler(logger):
        logger.addHandler(_structured_handler(stream))


def configure_logging(
    level: int = logging.INFO,
    stream: Optional[TextIO] = None,
    force: bool = False,
) -> logging.Logger:
    """Idempotently set up structured JSON logging for the process.

    Installs one JSON handler on the ``repro`` root logger (and guards the
    ``asyncio`` logger the same way).  Safe to call from every server
    start; ``force=True`` tears down previous structured handlers first
    (used by tests to redirect the stream).
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if force:
        for logger in (root, logging.getLogger("asyncio")):
            for handler in list(logger.handlers):
                if getattr(handler, _MARKER, False):
                    logger.removeHandler(handler)
    if not _has_structured_handler(root):
        root.addHandler(_structured_handler(stream))
        root.setLevel(level)
        root.propagate = False
    _guard_asyncio_logger(stream)
    return root


def get_logger(name: str) -> logging.Logger:
    """A structured logger namespaced under the ``repro`` root."""
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def _utc_ts() -> float:  # pragma: no cover - convenience for manual tooling
    return time.time()
