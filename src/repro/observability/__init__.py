"""Observability plane: request tracing, Prometheus exposition, JSON logs.

Three pieces share this package:

* :mod:`repro.observability.tracing` — per-query span capture with head
  sampling plus tail-based capture of SLO misses / fallbacks / stragglers,
  joined into trace trees by a :class:`TraceRegistry`.
* :mod:`repro.observability.prometheus` — text-format (0.0.4) exposition of
  any :class:`~repro.core.metrics.MetricsRegistry`, plus the minimal parser
  used by CI to validate it.
* :mod:`repro.observability.logging` — structured JSON logging with
  trace-id correlation and an idempotent process-wide setup.
"""

from repro.observability.logging import JsonFormatter, configure_logging, get_logger
from repro.observability.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    parse_exposition,
    render_prometheus,
    validate,
)
from repro.observability.tracing import (
    TRACE_CANARY,
    TRACE_DEFAULT_USED,
    TRACE_ERROR,
    TRACE_RETRIED,
    TRACE_SLO_MISS,
    TRACE_STRAGGLER,
    TraceContext,
    TraceRecord,
    TraceRegistry,
    Tracer,
    flag_names,
    format_trace_id,
)

__all__ = [
    "JsonFormatter",
    "configure_logging",
    "get_logger",
    "PROMETHEUS_CONTENT_TYPE",
    "parse_exposition",
    "render_prometheus",
    "validate",
    "TRACE_CANARY",
    "TRACE_DEFAULT_USED",
    "TRACE_ERROR",
    "TRACE_RETRIED",
    "TRACE_SLO_MISS",
    "TRACE_STRAGGLER",
    "TraceContext",
    "TraceRecord",
    "TraceRegistry",
    "Tracer",
    "flag_names",
    "format_trace_id",
]
